"""Table 1: workload characteristics (origins, input sizes, LoC, device
LoC, data structures, parallel constructs)."""

from conftest import run_once

from repro.eval import format_table1, table1_rows


def test_table1(benchmark, scale):
    rows = run_once(benchmark, lambda: table1_rows(scale))
    print()
    print(format_table1(scale))

    by_name = {r.benchmark: r for r in rows}
    assert len(rows) == 9
    # paper-matching metadata
    assert by_name["BFS"].origin == "Galois"
    assert by_name["BTree"].origin == "Rodinia"
    assert by_name["FaceDetect"].origin == "OpenCV"
    assert by_name["ClothPhysics"].parallel_construct == "parallel reduce hetero"
    assert all(
        r.parallel_construct == "parallel for hetero"
        for r in rows
        if r.benchmark != "ClothPhysics"
    )
    assert by_name["BarnesHut"].data_structure == "tree"
    assert by_name["SkipList"].data_structure == "linked-list"
    # ClothPhysics is the largest workload in the paper; ours too
    assert by_name["ClothPhysics"].device_loc >= 30
    assert all(r.device_loc <= r.loc for r in rows)
