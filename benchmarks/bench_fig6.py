"""Figure 6: percent of IR operations that are control-flow and memory
related.  Paper shape: many workloads exceed 25% control+memory (more than
one in four IR instructions); Raytracer is among the least irregular."""

from conftest import run_once

from repro.eval import figure6_mixes, format_figure6


def test_fig6(benchmark, scale):
    mixes = run_once(benchmark, figure6_mixes)
    print()
    print(format_figure6())

    assert len(mixes) == 9
    irregularity = {name: mix.irregularity_pct for name, mix in mixes.items()}
    # "more than 25%" for the irregular majority
    above = [name for name, pct in irregularity.items() if pct > 25.0]
    assert len(above) >= 7, irregularity
    # Raytracer among the three least control+memory heavy (paper: the
    # least irregular workload, hence the best GPU performer)
    ranked = sorted(irregularity, key=irregularity.get)
    assert "Raytracer" in ranked[:3], ranked
    # sanity: categories sum to 100%
    for mix in mixes.values():
        total = mix.control_pct + mix.memory_pct + mix.remaining_pct
        assert abs(total - 100.0) < 1e-6
