"""Ablations for the two novel compiler optimizations (DESIGN.md's design
choices), measured mechanically rather than end-to-end:

* **PTROPT** (section 4.1) must reduce the number of *dynamic* pointer
  translations executed by kernels — the paper's motivation is exactly the
  per-iteration translation arithmetic of Figure 4;
* **L3OPT** (section 4.2) must reduce same-cache-line contention events in
  the un-banked L3 on a kernel with the Figure 5 access pattern (every
  work-item scanning the same array in the same order).
"""

import warnings

from conftest import run_once

from repro.ir.types import F32, I32
from repro.passes import OptConfig
from repro.runtime import ConcordRuntime, compile_source, ultrabook

FIGURE4_SRC = """
class CopyBody {
public:
  int** a;
  int** b;
  int n;
  void operator()(int i) {
    // exactly the paper's Figure 4: local pointer copies, then a loop
    // that loads a[j] and stores it into b[j] without dereferencing it
    int** aa = a;
    int** bb = b;
    for (int j = 0; j < n; j++) {
      bb[j] = aa[j];
    }
  }
};
"""

FIGURE5_SRC = """
class ScanBody {
public:
  float* a;
  float* out;
  int n;
  void operator()(int i) {
    float acc = 0.0f;
    for (int j = 0; j < n; j++) {
      float v = a[j];
      acc += v * 0.5f + v * v - sqrtf(v + 1.0f);
    }
    out[i] = acc;
  }
};
"""


def _run_config(source, body_class, config, setup):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        prog = compile_source(source, config)
        rt = ConcordRuntime(prog, ultrabook())
        body, n_items = setup(rt)
        report = rt.parallel_for_hetero(n_items, body)
    return report.report


def test_ptropt_reduces_dynamic_translations(benchmark):
    """The Figure 4 kernel: pointers loaded and stored in a loop.  Lazy
    per-dereference translation executes O(n) translations per item;
    PTROPT's dual representation leaves O(1)."""

    def setup(rt):
        from repro.ir.types import I64, ptr

        n = 64
        items = 32
        a = rt.new_array(ptr(I64), n)
        b = rt.new_array(ptr(I64), n)
        for j in range(n):
            a[j] = 0x1000 + 8 * j
        body = rt.new("CopyBody")
        body.a = a
        body.b = b
        body.n = n
        return body, items

    def measure():
        baseline = _run_config(FIGURE4_SRC, "CopyBody", OptConfig.gpu(), setup)
        optimized = _run_config(
            FIGURE4_SRC, "CopyBody", OptConfig.gpu_ptropt(), setup
        )
        return baseline, optimized

    baseline, optimized = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        f"dynamic translations: GPU={baseline.translations} "
        f"GPU+PTROPT={optimized.translations}"
    )
    assert optimized.translations < baseline.translations / 4
    assert optimized.seconds <= baseline.seconds


def test_l3opt_staggers_access_order(benchmark):
    """The Figure 5 kernel: all work-items scan one array in the same
    order.  L3OPT must (a) transform the loop, (b) spread the cache lines
    touched at each dynamic position across the cores (the stagger), and
    (c) not hurt performance — the paper itself reports "no obvious
    performance improvement ... by applying this optimization alone"; the
    contention reduction shows at input scales where the stagger spans
    many cache lines (unit-tested at the timing-model level in
    tests/test_devices.py with synthetic traces).
    """

    def setup(rt):
        n = 64
        items = 2560
        a = rt.new_array(F32, n)
        a.fill_from(float(j % 17) for j in range(n))
        out = rt.new_array(F32, items)
        body = rt.new("ScanBody")
        body.a = a
        body.out = out
        body.n = n
        return body, items

    def line_spread(config):
        """Mean number of distinct cache lines touched per dynamic access
        position — 1.0 when every work-item walks the array in lockstep,
        higher once L3OPT staggers the order."""
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore")
            prog = compile_source(FIGURE5_SRC, config)
            rt = ConcordRuntime(prog, ultrabook())
            body, items = setup(rt)
            kinfo = prog.kernel_for("ScanBody")
            applied = kinfo.gpu_kernel.attributes.get("l3opt_applied", 0)
            report = rt.parallel_for_hetero(items, body)
        return applied, report

    def measure():
        return line_spread(OptConfig.gpu()), line_spread(OptConfig.gpu_l3opt())

    (base_applied, baseline), (opt_applied, optimized) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print()
    print(
        f"l3opt applied: baseline={base_applied} optimized={opt_applied}; "
        f"seconds: GPU={baseline.seconds:.3e} GPU+L3OPT={optimized.seconds:.3e}"
    )
    assert base_applied == 0
    assert opt_applied >= 1
    # roughly performance-neutral, as the paper reports for the
    # optimization applied alone.  At micro scale the stagger costs show
    # (three extra ops per iteration, and i/W mixing inside warp-boundary
    # threads costs some coalescing); at paper scale the contention savings
    # pay them back.
    assert optimized.seconds <= baseline.seconds * 1.25
