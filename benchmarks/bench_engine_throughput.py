"""Throughput of the lane-execution engines against each other.

Covers the reference interpreter, the threaded-code engine and the
columnar vector engine (``docs/VECTOR.md``).

Two measurements, printed as tables (numbers are recorded per-PR in
CHANGES.md):

* **Kernel throughput** — dynamic IR instructions per second achieved by
  each engine running BFS, Raytracer and SkipList end-to-end (build + all
  launches + validation) on the Ultrabook model.
* **Figure 7 sweep wall-clock** — the full nine-workload ultrabook speedup
  sweep (the paper's headline figure), end to end, per engine.

Each measurement is the best of ``REPRO_BENCH_REPEATS`` runs (the standard
``timeit`` convention: the minimum is the least noise-contaminated sample
on a shared machine; higher samples measure scheduler interference, not
the code).

Run as a script (not collected by the tier-1 suite)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
    REPRO_BENCH_SCALE=0.4 REPRO_BENCH_REPEATS=3 \
        PYTHONPATH=src python benchmarks/bench_engine_throughput.py
"""

from __future__ import annotations

import os
import time
import warnings

KERNEL_WORKLOADS = ("BFS", "Raytracer", "SkipList")
ENGINES = ("reference", "compiled", "vector")


def _run_workload(name: str, engine: str, scale: float, repeats: int):
    """Execute one workload end-to-end; returns (best seconds, dyn instrs)."""
    from repro.passes import OptConfig
    from repro.runtime.system import ultrabook
    from repro.workloads import all_workloads

    best = float("inf")
    instructions = 0
    for _ in range(repeats):
        workload = all_workloads()[name]()
        start = time.perf_counter()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            outcome = workload.execute(
                OptConfig.gpu_all(), ultrabook(), scale=scale, engine=engine
            )
        best = min(best, time.perf_counter() - start)
        instructions = sum(r.report.instructions for r in outcome.reports)
    return best, instructions


def _run_figure7(engine: str, scale: float, repeats: int) -> float:
    from repro.eval.runner import clear_cache, measure_all
    from repro.runtime.system import ultrabook

    best = float("inf")
    for _ in range(repeats):
        clear_cache()
        start = time.perf_counter()
        # measure_all threads the engine through every workload execution.
        measure_all(ultrabook(), scale=scale, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def main() -> None:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))
    repeats = max(1, int(os.environ.get("REPRO_BENCH_REPEATS", "3")))
    print(f"engine throughput @ scale={scale}, best of {repeats}\n")

    print(f"{'workload':<12} {'engine':<10} {'wall s':>8} {'dyn instr':>12} {'instr/s':>12}")
    kernel_rates: dict[str, dict[str, float]] = {}
    for name in KERNEL_WORKLOADS:
        kernel_rates[name] = {}
        for engine in ENGINES:
            seconds, instructions = _run_workload(name, engine, scale, repeats)
            rate = instructions / seconds if seconds > 0 else 0.0
            kernel_rates[name][engine] = rate
            print(
                f"{name:<12} {engine:<10} {seconds:>8.2f} "
                f"{instructions:>12,} {rate:>12,.0f}"
            )
        ratio = kernel_rates[name]["compiled"] / kernel_rates[name]["reference"]
        vratio = kernel_rates[name]["vector"] / kernel_rates[name]["compiled"]
        print(
            f"{name:<12} {'speedup':<10} {ratio:>8.2f}x compiled/reference, "
            f"{vratio:.2f}x vector/compiled\n"
        )

    print("Figure 7 ultrabook sweep (nine workloads, all configs):")
    sweep: dict[str, float] = {}
    for engine in ENGINES:
        sweep[engine] = _run_figure7(engine, scale, repeats)
        print(f"  {engine:<10} {sweep[engine]:>8.2f} s")
    print(
        f"  end-to-end speedup: "
        f"{sweep['reference'] / sweep['compiled']:.2f}x compiled/reference, "
        f"{sweep['compiled'] / sweep['vector']:.2f}x vector/compiled"
    )


if __name__ == "__main__":
    main()
