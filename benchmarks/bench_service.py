"""Compile-service benchmarks: warm-vs-cold request latency and stage
cache behavior under the synthetic many-client load.

Library performance of this reproduction itself (wall-clock, like
``bench_kernels.py``), not simulated time.  The load generator is the
same one ``python -m repro serve --selftest`` and the service-smoke CI
job run; here pytest-benchmark tracks the cold and warm request paths
separately so regressions in either show up as distinct series.
"""

import tempfile
import threading

import pytest

from repro.service import (
    ServiceClient,
    generate_sources,
    run_load,
    serve,
    validate_report,
)


@pytest.fixture()
def daemon():
    with tempfile.TemporaryDirectory() as store_dir:
        server, service = serve(store_dir, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield host, port, service
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


def test_cold_compile_request(benchmark, daemon):
    """Every request a distinct program: frontend + pipeline + closure."""
    host, port, _service = daemon
    client = ServiceClient(host, port)
    sources = iter(generate_sources(512))

    def cold():
        reply = client.compile(source=next(sources), config="GPU+ALL")
        assert reply["ok"] and reply["stages"]["closure"] == "miss"

    benchmark.pedantic(cold, rounds=10, iterations=1)


def test_warm_compile_request(benchmark, daemon):
    """Every request the same program: answered from the caches."""
    host, port, _service = daemon
    client = ServiceClient(host, port)
    source = generate_sources(1)[0]
    assert client.compile(source=source, config="GPU+ALL")["ok"]  # prime

    def warm():
        reply = client.compile(source=source, config="GPU+ALL")
        assert reply["ok"] and reply["stages"] == {
            "frontend": "hit",
            "pipeline": "hit",
            "closure": "hit",
        }

    benchmark.pedantic(warm, rounds=30, iterations=1)


def test_many_client_load(daemon):
    """The full two-phase load: warm hits present, warm p50 at least 5x
    better than cold — the service's acceptance bar."""
    host, port, _service = daemon
    report = run_load(
        lambda: ServiceClient(host, port), clients=4, sources=6
    )
    assert validate_report(report) == []
    assert report["p50_speedup"] >= 5.0, (
        f"warm p50 only {report['p50_speedup']:.1f}x better than cold"
    )
