"""Section 5.4: overhead of the software SVM implementation.

Concord's pointer-based Raytracer vs a hand-flattened OpenCL-1.2-style
comparator (scene graph flattened to arrays with integer offsets), across
image sizes.  Paper: negligible overhead for small images, only ~6% at the
largest size.
"""

from conftest import run_once

from repro.eval import format_svm_overhead, measure_svm_overhead


def test_svm_overhead(benchmark, scale):
    scales = tuple(scale * f for f in (0.5, 1.0, 1.6, 2.4))
    points = run_once(benchmark, lambda: measure_svm_overhead(scales=scales))
    print()
    print(format_svm_overhead(points))

    # Overhead stays small at every size (paper: <= ~6% at the largest;
    # ours runs a few points higher because the devirtualized compare
    # chains execute on the simulated EU at full instruction cost).
    for point in points:
        assert point.overhead_pct < 16.0, (
            point.width, point.height, point.overhead_pct,
        )
    # ... and is bounded at the largest image in particular.
    largest = max(points, key=lambda p: p.width * p.height)
    assert largest.overhead_pct <= 12.0, largest.overhead_pct
