"""Figure 10: energy efficiency relative to multicore CPU on the desktop.

Paper shape targets: average savings ~1.69x even though average speedup is
~1x; BFS/Raytracer/SkipList/BTree save the most (2.94/3.52/2.27/2.43x);
FaceDetect is the worst; BarnesHut still saves energy (~1.48x) despite
being 47% slower — the paper's headline performance/energy discrepancy.
"""

from conftest import run_once

from repro.eval import figure9, figure10


def test_fig10_desktop_energy(benchmark, scale):
    fig = run_once(benchmark, lambda: figure10(scale))
    print()
    print(fig.render())

    savings = dict(zip(fig.labels, fig.series["GPU+ALL"]))
    averages = fig.averages()

    # Average well above 1 despite parity performance (paper 1.69x).
    assert 1.2 <= averages["GPU+ALL"] <= 2.6, averages
    # Raytracer among the biggest savers (paper 3.52x).
    ranked = sorted(savings, key=savings.get, reverse=True)
    assert "Raytracer" in ranked[:2], savings
    # FaceDetect among the worst for energy (paper: < 1x).
    worst = sorted(savings, key=savings.get)
    assert "FaceDetect" in worst[:3], savings

    # The BarnesHut discrepancy: slower on the GPU yet MORE energy
    # efficient (paper: 47% slower, 48% more efficient).
    perf = figure9(scale)
    bh_speedup = dict(zip(perf.labels, perf.series["GPU+ALL"]))["BarnesHut"]
    assert bh_speedup < 1.0
    assert savings["BarnesHut"] > 1.0
