"""Shared configuration for the benchmark harness.

Each module regenerates one table or figure from the paper's evaluation.
``REPRO_BENCH_SCALE`` (default 0.4) scales the workload inputs: figures are
ratio-based, so their shape is stable across scales, while wall-clock cost
grows steeply (the simulator interprets every work-item).

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))


@pytest.fixture(scope="session")
def scale() -> float:
    return BENCH_SCALE


def run_once(benchmark, fn):
    """Time one full regeneration (figures are deterministic; re-running
    them only re-reads the in-process measurement cache)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
