"""Shared configuration for the benchmark harness.

Each module regenerates one table or figure from the paper's evaluation.
``REPRO_BENCH_SCALE`` (default 0.4) scales the workload inputs: figures are
ratio-based, so their shape is stable across scales, while wall-clock cost
grows steeply (the simulator interprets every work-item).

Run with::

    pytest benchmarks/ --benchmark-only -s

Set ``REPRO_PROFILE_DIR=<dir>`` to additionally emit one observability
profile document per workload (``<dir>/<workload>.profile.json``, schema
``repro.obs.profile/v1``) at the end of the session.  Profiling runs the
workloads separately under an observer, so the benchmark timings
themselves stay observability-free.
"""

import json
import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))
PROFILE_DIR = os.environ.get("REPRO_PROFILE_DIR", "")


@pytest.fixture(scope="session")
def scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session", autouse=True)
def emit_profiles():
    """When ``REPRO_PROFILE_DIR`` is set, write per-workload profile
    documents after the benchmark session (no-op otherwise)."""
    yield
    if not PROFILE_DIR:
        return
    from repro.eval.runner import WORKLOAD_ORDER
    from repro.obs import profile_workload, validate_profile

    os.makedirs(PROFILE_DIR, exist_ok=True)
    for name in WORKLOAD_ORDER:
        doc = profile_workload(name, scale=BENCH_SCALE)
        validate_profile(doc)
        path = os.path.join(PROFILE_DIR, f"{name}.profile.json")
        with open(path, "w") as handle:
            json.dump(doc, handle, indent=2)


def run_once(benchmark, fn):
    """Time one full regeneration (figures are deterministic; re-running
    them only re-reads the in-process measurement cache)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
