"""Figure 8: energy efficiency relative to multicore CPU on the Ultrabook.

Paper shape targets: savings up to 6.04x (Raytracer), average ~2.04x,
FaceDetect the worst workload for GPU energy.
"""

from conftest import run_once

from repro.eval import figure8


def test_fig8_ultrabook_energy(benchmark, scale):
    fig = run_once(benchmark, lambda: figure8(scale))
    print()
    print(fig.render())

    savings = dict(zip(fig.labels, fig.series["GPU+ALL"]))
    averages = fig.averages()

    # Raytracer saves the most energy (paper: 6.04x).
    assert max(savings, key=savings.get) == "Raytracer"
    assert savings["Raytracer"] > 3.0
    # Average near the paper's 2.04x.
    assert 1.4 <= averages["GPU+ALL"] <= 3.0, averages
    # FaceDetect is among the worst for GPU energy (paper: the only < 1x).
    ranked = sorted(savings, key=savings.get)
    assert "FaceDetect" in ranked[:3], savings
    # Combined optimizations save energy over the baseline (paper: 1.07x).
    assert averages["GPU+ALL"] >= averages["GPU"]
