"""Figure 7: runtime performance relative to multicore CPU on the
Ultrabook (i7-4650U + HD Graphics 5000), four GPU configurations.

Paper shape targets: every workload at or above ~1x, Raytracer the clear
winner (paper: 9.88x), average ~2.5x, PTROPT helping Raytracer and
FaceDetect the most.
"""

from conftest import run_once

from repro.eval import figure7, geomean


def test_fig7_ultrabook_speedup(benchmark, scale):
    fig = run_once(benchmark, lambda: figure7(scale))
    print()
    print(fig.render())

    averages = fig.averages()
    speedups = dict(zip(fig.labels, fig.series["GPU+ALL"]))

    # Raytracer is the top performer, well clear of the pack.
    assert max(speedups, key=speedups.get) == "Raytracer"
    assert speedups["Raytracer"] > 2.0 * geomean(
        v for k, v in speedups.items() if k != "Raytracer"
    ) * 0.7
    # Average in the paper's ballpark (2.5x): allow a generous band.
    assert 1.5 <= averages["GPU+ALL"] <= 4.5, averages
    # All workloads benefit on the Ultrabook (paper: 1.11x minimum).
    assert min(speedups.values()) >= 1.0, speedups
    # PTROPT is a consistent improvement on average (paper: 1.06x).
    assert averages["GPU+PTROPT"] >= averages["GPU"] * 1.01
    # FaceDetect and Raytracer are among the biggest PTROPT beneficiaries
    # (paper: 1.13x and 1.21x respectively on the Ultrabook).
    gains = {
        name: with_ptropt / baseline
        for name, baseline, with_ptropt in zip(
            fig.labels, fig.series["GPU"], fig.series["GPU+PTROPT"]
        )
    }
    ranked = sorted(gains, key=gains.get, reverse=True)
    assert "FaceDetect" in ranked[:3] or "Raytracer" in ranked[:3], gains
