"""Library performance benchmarks (wall-clock of this reproduction itself,
not simulated time): frontend+pipeline compile cost per workload and
simulation throughput of the two device paths.

These are ordinary pytest-benchmark measurements with multiple rounds —
useful for tracking regressions in the compiler and simulator.
"""

import warnings

import pytest

from repro.passes import OptConfig
from repro.runtime import ConcordRuntime, compile_source, ultrabook
from repro.workloads import all_workloads

WORKLOADS = all_workloads()


@pytest.mark.parametrize("name", ["BFS", "Raytracer", "FaceDetect"])
def test_compile_time(benchmark, name):
    """Full pipeline: parse -> sema -> lower -> optimize -> device-lower
    -> OpenCL emission, uncached."""
    cls = WORKLOADS[name]

    def compile_uncached():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return compile_source(cls.source, OptConfig.gpu_all())

    program = benchmark(compile_uncached)
    assert program.kernels


def test_gpu_simulation_throughput(benchmark):
    """Simulated-GPU work-items per second of the interpreter+timing
    stack, on the BTree search kernel."""
    cls = WORKLOADS["BTree"]
    workload = cls()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        rt = cls.make_runtime(OptConfig.gpu_all(), ultrabook())
        state = workload.build(rt, 0.3)

    def launch():
        return workload.run(rt, state, on_cpu=False)

    reports = benchmark.pedantic(launch, rounds=3, iterations=1)
    assert reports[0].device == "gpu"


def test_cpu_simulation_throughput(benchmark):
    cls = WORKLOADS["BTree"]
    workload = cls()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        rt = cls.make_runtime(OptConfig.gpu_all(), ultrabook())
        state = workload.build(rt, 0.3)

    def launch():
        return workload.run(rt, state, on_cpu=True)

    reports = benchmark.pedantic(launch, rounds=3, iterations=1)
    assert reports[0].device == "cpu"


def test_svm_allocator_throughput(benchmark):
    from repro.svm import SharedAllocator, SharedRegion

    def churn():
        region = SharedRegion(1 << 20)
        alloc = SharedAllocator(region)
        addresses = [alloc.malloc(64) for _ in range(1000)]
        for address in addresses[::2]:
            alloc.free(address)
        for _ in range(500):
            addresses.append(alloc.malloc(48))
        return alloc

    alloc = benchmark(churn)
    assert alloc.live_bytes > 0
