"""Sensitivity ablation for the analytic device models.

The reproduction's claims are *shape* claims (orderings and crossovers),
so they must not hinge on the exact calibrated constants.  This benchmark
perturbs the most influential GPU-model constants by +/-25% and checks the
key orderings survive:

* Raytracer stays the best GPU workload, BarnesHut/FaceDetect stay at the
  bottom (both systems);
* BarnesHut stays below parity on the desktop;
* PTROPT keeps helping.

If a future model change makes a conclusion constant-sensitive, this
bench is the tripwire.
"""

import dataclasses
import warnings

import pytest
from conftest import run_once

from repro.passes import OptConfig
from repro.runtime.system import System, desktop, ultrabook
from repro.workloads import all_workloads

PROBE_WORKLOADS = ("Raytracer", "BarnesHut", "FaceDetect", "BTree")


def perturbed_system(base: System, **gpu_overrides) -> System:
    return System(
        name=base.name,
        cpu=base.cpu,
        gpu=dataclasses.replace(base.gpu, **gpu_overrides),
        tdp_watts=base.tdp_watts,
    )


def measure(system: System, scale: float):
    workloads = all_workloads()
    speedups = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for name in PROBE_WORKLOADS:
            workload = workloads[name]()
            gpu = workload.execute(
                OptConfig.gpu_all(), system, scale=scale, validate=False
            )
            cpu = workload.execute(
                OptConfig.gpu_all(), system, on_cpu=True, scale=scale, validate=False
            )
            speedups[name] = cpu.seconds / gpu.seconds
    return speedups


def check_orderings(speedups, system_name):
    assert max(speedups, key=speedups.get) == "Raytracer", (system_name, speedups)
    worst_two = sorted(speedups, key=speedups.get)[:2]
    assert "BarnesHut" in worst_two or "FaceDetect" in worst_two, (
        system_name,
        speedups,
    )


@pytest.mark.parametrize(
    "knob, factor",
    [
        ("issue_cycles_per_slot", 0.75),
        ("issue_cycles_per_slot", 1.25),
        ("l3_hit_cycles", 0.75),
        ("l3_hit_cycles", 1.25),
        ("contention_penalty_cycles", 1.5),
    ],
)
def test_orderings_survive_gpu_perturbation(benchmark, scale, knob, factor):
    base = ultrabook()
    value = getattr(base.gpu, knob) * factor
    system = perturbed_system(base, **{knob: value})

    speedups = run_once(benchmark, lambda: measure(system, min(scale, 0.3)))
    print()
    print(f"{knob} x{factor}: " + "  ".join(f"{k}={v:.2f}" for k, v in speedups.items()))
    check_orderings(speedups, base.name)


def test_desktop_barneshut_crossover_robust(benchmark, scale):
    """BarnesHut below parity on the desktop under the calibrated model AND
    with the memory system 25% faster (the crossover is not a knife edge)."""

    def run():
        results = {}
        for label, system in (
            ("calibrated", desktop()),
            (
                "fast-l3",
                perturbed_system(
                    desktop(), l3_hit_cycles=desktop().gpu.l3_hit_cycles * 0.75
                ),
            ),
        ):
            workload = all_workloads()["BarnesHut"]()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                gpu = workload.execute(
                    OptConfig.gpu_all(), system, scale=min(scale, 0.3), validate=False
                )
                cpu = workload.execute(
                    OptConfig.gpu_all(), system, on_cpu=True,
                    scale=min(scale, 0.3), validate=False,
                )
            results[label] = cpu.seconds / gpu.seconds
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"BarnesHut desktop speedup: {results}")
    assert results["calibrated"] < 1.0
    assert results["fast-l3"] < 1.1  # still at/below parity with faster L3
