"""Figure 9: runtime performance relative to multicore CPU on the desktop
(i7-4770 + HD Graphics 4600).

Paper shape targets: GPU execution is on average no faster than the
quad-core CPU (~1% benefit); BarnesHut is distinctly slower on the GPU
(paper: 0.53x, i.e. 47% slower); PTROPT averages ~1.09x.
"""

from conftest import run_once

from repro.eval import figure9, geomean


def test_fig9_desktop_speedup(benchmark, scale):
    fig = run_once(benchmark, lambda: figure9(scale))
    print()
    print(fig.render())

    speedups = dict(zip(fig.labels, fig.series["GPU+ALL"]))
    averages = fig.averages()

    # The desktop CPU catches up: average near parity (paper ~1.01x).
    assert 0.8 <= averages["GPU+ALL"] <= 1.8, averages
    # BarnesHut runs slower on the GPU (paper 0.53x).
    assert speedups["BarnesHut"] < 1.0, speedups
    # BarnesHut is among the worst workloads for desktop GPU performance
    # (the strict minimum at full scale; ClothPhysics can dip below it at
    # reduced benchmark scales).
    worst_two = sorted(speedups, key=speedups.get)[:2]
    assert "BarnesHut" in worst_two, speedups
    # Raytracer still the best (least irregular).
    assert max(speedups, key=speedups.get) == "Raytracer"
    # PTROPT helps on average (paper 1.09x).
    ptropt_gain = averages["GPU+PTROPT"] / averages["GPU"]
    assert ptropt_gain >= 1.02, ptropt_gain
