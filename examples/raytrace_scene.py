#!/usr/bin/env python
"""Domain example: render a scene with the virtual-function raytracer.

The scene graph is classic object-oriented C++: a Shape base class with
virtual intersect/normal methods, Sphere and Plane subclasses, all living
in shared virtual memory.  On the GPU the virtual calls run as the inline
compare sequences the compiler generated (paper section 3.2).

Renders the image under all four optimization configurations, reports the
timing ladder, and writes the framebuffer out as a PPM file.
"""

import sys

from repro.passes import OptConfig
from repro.runtime.system import ultrabook
from repro.workloads.raytracer import RaytracerWorkload


def main(path: str = "raytrace.ppm") -> None:
    results = {}
    for config in OptConfig.all_configs():
        workload = RaytracerWorkload()
        rt = workload.make_runtime(config, ultrabook())
        state = workload.build(rt, scale=1.0)
        reports = workload.run(rt, state)
        workload.validate(rt, state)
        results[config.label] = (sum(r.seconds for r in reports), state)
    baseline = results["GPU"][0]
    print(f"{'config':12s} {'time':>12s} {'vs GPU':>8s}")
    for label, (seconds, _) in results.items():
        print(f"{label:12s} {seconds * 1e6:10.2f}us {baseline / seconds:7.2f}x")

    _, state = results["GPU+ALL"]
    pixels = state.framebuffer.to_list()
    with open(path, "w") as out:
        out.write(f"P3\n{state.width} {state.height}\n255\n")
        for index in range(state.width * state.height):
            r, g, b = pixels[index * 3 : index * 3 + 3]
            out.write(
                f"{_to_byte(r)} {_to_byte(g)} {_to_byte(b)}\n"
            )
    print(f"wrote {state.width}x{state.height} image to {path}")


def _to_byte(value: float) -> int:
    return max(0, min(255, int(value * 255)))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "raytrace.ppm")
