#!/usr/bin/env python
"""Domain example: soft-body cloth with parallel_reduce_hetero.

A pinned cloth sheet falls under gravity; every step offloads the force
computation as a *reduction* (the Body's join accumulates total kinetic
energy, paper section 3.3: private copies, local-memory tree reduction,
sequential join fallback).  Prints an energy trace and a tiny ASCII side
view of the sheet sagging.
"""

from repro.passes import OptConfig
from repro.runtime.system import ultrabook
from repro.workloads.clothphysics import ClothPhysicsWorkload


def main() -> None:
    workload = ClothPhysicsWorkload()
    rt = workload.make_runtime(OptConfig.gpu_all(), ultrabook())
    state = workload.build(rt, scale=1.0)
    state.steps = 8
    print(f"cloth: {state.width}x{state.height} nodes, {state.steps} steps")

    reports = workload.run(rt, state)
    workload.validate(rt, state)
    print("step  kinetic energy")
    for step, kinetic in enumerate(state.kinetic_per_step):
        bar = "#" * min(60, int(kinetic * 4))
        print(f"{step:4d}  {kinetic:12.4f} {bar}")

    total_s = sum(r.seconds for r in reports)
    print(f"simulated on GPU in {total_s * 1e3:.3f} ms (model time)")

    # side view: sample the middle column's vertical drop
    print("side view (middle column, y positions):")
    column = state.width // 2
    for row in range(0, state.height, max(1, state.height // 8)):
        node = state.nodes[row * state.width + column]
        offset = int(max(0.0, -node.y) * 400)
        print("  " + " " * offset + "o")


if __name__ == "__main__":
    main()
