#!/usr/bin/env python
"""Domain example: shortest paths on a road network.

Builds a synthetic road network (the scaled stand-in for the paper's
Western-USA graph), runs the Bellman-Ford SSSP workload on the GPU, then
extracts and prints an actual route — demonstrating that the kernel's
results live in ordinary shared memory the host can traverse directly
(that is the point of shared virtual memory).
"""

from repro.passes import OptConfig
from repro.runtime.system import ultrabook
from repro.workloads.sssp import SsspWorkload


def main() -> None:
    workload = SsspWorkload()
    rt = workload.make_runtime(OptConfig.gpu_all(), ultrabook())
    state = workload.build(rt, scale=1.0)
    graph = state.svm_graph.graph
    print(f"road network: {graph.num_nodes} junctions, {graph.num_edges} road segments")

    reports = workload.run(rt, state)
    rounds = len(reports)
    total_s = sum(r.seconds for r in reports)
    total_j = sum(r.energy_joules for r in reports)
    print(f"Bellman-Ford converged in {rounds} relaxation rounds on the GPU")
    print(f"total: {total_s * 1e3:.3f} ms, {total_j * 1e3:.3f} mJ")
    workload.validate(rt, state)
    print("validated against Dijkstra reference")

    # Route extraction straight out of shared memory.
    dist = state.dist.to_list()
    reachable = [n for n, d in enumerate(dist) if d < (1 << 29)]
    far = max(reachable, key=lambda n: dist[n])
    print(f"farthest reachable junction: {far} at distance {dist[far]}")
    route = [far]
    current = far
    while current != 0:
        step = next(
            t
            for t, w in graph.neighbours(current)
            if dist[t] + _weight(graph, t, current) == dist[current]
        )
        route.append(step)
        current = step
    route.reverse()
    shown = " -> ".join(map(str, route[:12]))
    suffix = f" ... ({len(route)} hops)" if len(route) > 12 else ""
    print(f"route from 0: {shown}{suffix}")


def _weight(graph, a: int, b: int) -> int:
    for target, weight in graph.neighbours(a):
        if target == b:
            return weight
    raise KeyError((a, b))


if __name__ == "__main__":
    main()
