#!/usr/bin/env python
"""Quickstart: the paper's Figure 1 program, end to end.

Compiles a Concord C++ body class that converts an array of Node objects
into a linked list in parallel, shows the generated OpenCL (right-hand
side of Figure 1), runs it on the simulated integrated GPU *and* on the
multicore CPU, verifies both produce the same list, then lets the
runtime's scheduler place the construct itself (``policy="auto"``), and
finally re-runs the GPU construct on the columnar vector engine
(``engine="vector"``) to show it produces the identical modeled numbers.
"""

from repro.runtime import ConcordRuntime, OptConfig, compile_source, ultrabook

SOURCE = """
class Node {
public:
  Node* next;
  float value;
};

class LoopBody {
  Node* nodes;
public:
  LoopBody(Node* arr) : nodes(arr) {}
  void operator()(int i) {           // executed in parallel
    nodes[i].next = &(nodes[i + 1]);
  }
};
"""

N = 256


def main() -> None:
    # Static compilation: frontend -> IR -> optimization pipeline ->
    # device lowering (SVM pointer translation) + OpenCL emission.
    program = compile_source(SOURCE, OptConfig.gpu_all())
    kernel = program.kernel_for("LoopBody")

    print("=== generated OpenCL (cf. paper Figure 1, right) ===")
    print(kernel.opencl_source)

    # Runtime: shared virtual memory + both devices of the Ultrabook.
    rt = ConcordRuntime(program, ultrabook())
    nodes = rt.new_array("Node", N + 1)
    for i in range(N + 1):
        nodes[i].value = float(i)
    body = rt.new("LoopBody", nodes)  # runs the C++ constructor

    gpu = rt.parallel_for_hetero(N, body)            # offloaded
    print(f"GPU: {gpu.seconds * 1e6:8.2f} us  {gpu.energy_joules * 1e6:8.2f} uJ")

    # Walk the pointer-linked list the GPU just built.
    count = 0
    node = nodes[0]
    while node.next != 0 and count <= N:
        node = rt.view("Node", node.next)
        count += 1
    assert count == N, count
    print(f"linked list verified: {count} links")

    # Same body, same shared memory — now on the CPU (on_CPU=true).
    cpu = rt.parallel_for_hetero(N, body, on_cpu=True)
    print(f"CPU: {cpu.seconds * 1e6:8.2f} us  {cpu.energy_joules * 1e6:8.2f} uJ")
    print(
        f"speedup {cpu.seconds / gpu.seconds:.2f}x, "
        f"energy savings {cpu.energy_joules / gpu.energy_joules:.2f}x"
    )

    # Or let the scheduler decide: both devices are now measured for this
    # kernel, so the auto policy places the construct on the faster one
    # (see docs/RUNTIME.md for the cpu/gpu/auto/hybrid policies).
    auto = rt.parallel_for_hetero(N, body, policy="auto")
    print(
        f"auto policy placed the construct on the {auto.device}: "
        f"{auto.seconds * 1e6:8.2f} us"
    )

    # The same program can execute its GPU lanes through the columnar
    # vector engine (all lanes at once over NumPy arrays, mask-based
    # divergence — see docs/VECTOR.md).  Results and modeled time are
    # bit-identical to the threaded-code engine; only the simulation's
    # own wall-clock speed changes.
    vrt = ConcordRuntime(program, ultrabook(), engine="vector")
    vnodes = vrt.new_array("Node", N + 1)
    for i in range(N + 1):
        vnodes[i].value = float(i)
    vbody = vrt.new("LoopBody", vnodes)
    vec = vrt.parallel_for_hetero(N, vbody)
    assert vec.seconds == gpu.seconds, (vec.seconds, gpu.seconds)
    print(
        f"vector engine: {vec.seconds * 1e6:8.2f} us "
        "(same modeled time, columnar execution)"
    )


if __name__ == "__main__":
    main()
