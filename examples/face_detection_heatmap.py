#!/usr/bin/env python
"""Domain example: the FaceDetect cascade as an ASCII heatmap.

Runs the 22-stage Haar cascade over the synthetic image on the GPU and
renders how deep each window survived — the spatial view of the divergence
that makes FaceDetect the paper's worst GPU workload.  Also prints the
stage histogram and the divergence cost the device model measured.
"""

from repro.passes import OptConfig
from repro.runtime.system import ultrabook
from repro.workloads.facedetect import NUM_STAGES, FaceDetectWorkload

GLYPHS = " .:-=+*#%@"


def main() -> None:
    workload = FaceDetectWorkload()
    rt = workload.make_runtime(OptConfig.gpu_all(), ultrabook())
    state = workload.build(rt, scale=1.0)
    reports = workload.run(rt, state)
    workload.validate(rt, state)

    hits = state.hits.to_list()
    print(f"cascade depth per window ({state.width}x{state.height} windows):")
    for row in range(state.height):
        line = []
        for col in range(state.width):
            depth = hits[row * state.width + col]
            line.append(GLYPHS[min(len(GLYPHS) - 1, depth * len(GLYPHS) // NUM_STAGES)])
        print("  " + "".join(line))

    histogram = [0] * (NUM_STAGES + 1)
    for depth in hits:
        histogram[depth] += 1
    print("\nstage histogram (depth: windows):")
    for depth, count in enumerate(histogram):
        if count:
            print(f"  {depth:3d}: {'#' * min(60, count)} {count}")

    report = reports[0].report
    waste = 100.0 * report.divergence_waste / max(1.0, report.issue_slots)
    print(
        f"\nGPU run: {report.seconds * 1e6:.1f} us (model), "
        f"{waste:.0f}% of issue slots spent on divergence — "
        "the paper's 'highly dynamic behaviour ... not well-suited for GPUs'"
    )


if __name__ == "__main__":
    main()
