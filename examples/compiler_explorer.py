#!/usr/bin/env python
"""Compiler explorer: watch a kernel move through the pipeline.

Shows, for a small pointer-chasing kernel, the IR after each stage the
paper describes: frontend output (CLANG -O0 style), the standard
optimization pipeline, SVM lowering without PTROPT (translation at every
dereference), with PTROPT (dual representation), with L3OPT (staggered
inner loop), the emitted OpenCL C, and finally the kernel executing
under the scheduler's ``auto`` placement policy.
"""

from repro import ir
from repro.ir import format_function
from repro.minicpp import Sema, UnitLowerer, parse
from repro.passes import OptConfig, kernel_pipeline, standard_pipeline
from repro.runtime import compile_source
from repro.runtime.compiler import _make_kernel_wrapper

SOURCE = """
class Cell {
public:
  Cell* next;
  float weight;
};

class WalkBody {
public:
  Cell** heads;
  float* out;
  int limit;
  void operator()(int i) {
    Cell* cell = heads[i];
    float total = 0.0f;
    int steps = 0;
    while (cell != 0 && steps < limit) {
      total += cell->weight;
      cell = cell->next;
      steps++;
    }
    out[i] = total;
  }
};
"""


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    # -- frontend only (alloca form, like clang -O0)
    sema = Sema(parse(SOURCE))
    module = UnitLowerer(sema, ir.Module("explorer")).lower_unit()
    operator_fn = next(
        f for name, f in module.functions.items() if "call_op" in name
    )
    banner("1. frontend output (pre-SSA, alloca form)")
    print(format_function(operator_fn))

    # -- standard pipeline (mem2reg, folding, CSE, DCE, LICM)
    kernel = _make_kernel_wrapper(
        module, sema.lookup_class("WalkBody"), operator_fn
    )
    for function in list(module.functions.values()):
        if function.blocks:
            standard_pipeline(module, function, OptConfig.gpu())
    banner("2. after the standard pipeline (SSA, inlined, promoted)")
    print(format_function(kernel))

    # -- device lowering under the measured configurations
    for config in (OptConfig.gpu(), OptConfig.gpu_ptropt(), OptConfig.gpu_all()):
        program = compile_source(SOURCE, config)
        kinfo = program.kernel_for("WalkBody")
        translations = sum(
            1
            for instr in kinfo.gpu_kernel.instructions()
            if instr.op == "call"
            and instr.callee is not None
            and instr.callee.name.startswith("svm.to_")
        )
        banner(
            f"3. device kernel under {config.label} "
            f"({translations} static pointer translations)"
        )
        print(format_function(kinfo.gpu_kernel))

    program = compile_source(SOURCE, OptConfig.gpu_all())
    banner("4. emitted OpenCL C")
    print(program.kernel_for("WalkBody").opencl_source)

    # -- run it: the scheduler's auto policy places the construct on the
    # device its throughput history says is faster (docs/RUNTIME.md).
    from repro.ir.types import F32, I64, ptr
    from repro.runtime import ConcordRuntime, ultrabook
    from repro.svm import address_of

    banner("5. executed under the auto scheduling policy")
    rt = ConcordRuntime(program, ultrabook(), policy="auto")
    n, chain = 64, 4
    cells = rt.new_array("Cell", n * chain)
    for i in range(n):
        for j in range(chain):
            cell = cells[i * chain + j]
            cell.weight = float(j + 1)
            cell.next = (
                address_of(cells[i * chain + j + 1]) if j < chain - 1 else 0
            )
    heads = rt.new_array(ptr(I64), n)
    for i in range(n):
        heads[i] = address_of(cells[i * chain])
    out = rt.new_array(F32, n)
    body = rt.new("WalkBody")
    body.heads = heads
    body.out = out
    body.limit = chain
    report = rt.parallel_for_hetero(n, body, policy="auto")
    expected = float(sum(range(1, chain + 1)))
    assert all(out[i] == expected for i in range(n))
    print(
        f"auto policy ran {n} pointer walks on the {report.device} "
        f"({report.seconds * 1e6:.2f} us modeled); every chain summed to "
        f"{expected}"
    )


if __name__ == "__main__":
    main()
