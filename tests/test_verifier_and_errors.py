"""Error-path tests: the IR verifier catches malformed IR, the parser
rejects bad syntax with positions, sema rejects bad programs, and the pass
manager records statistics."""

import pytest

from repro.ir import (
    BOOL,
    Constant,
    Function,
    FunctionType,
    I32,
    IRBuilder,
    VOID,
    VerificationError,
    add_phi_incoming,
    verify_function,
)
from repro.minicpp import ParseError, Sema, SemaError, parse
from repro.passes import PassManager
from repro.passes.pipeline import PassStats


class TestVerifier:
    def test_missing_terminator(self):
        fn = Function("f", FunctionType(VOID, ()), [])
        block = fn.new_block("entry")
        b = IRBuilder(block)
        b.add(Constant(I32, 1), Constant(I32, 2))
        with pytest.raises(VerificationError, match="no terminator"):
            verify_function(fn)

    def test_branch_to_removed_block(self):
        fn = Function("f", FunctionType(VOID, ()), [])
        entry = fn.new_block("entry")
        target = fn.new_block("target")
        b = IRBuilder(entry)
        b.br(target)
        b.position_at_end(target)
        b.ret()
        fn.remove_block(target)
        with pytest.raises(VerificationError, match="removed block"):
            verify_function(fn)

    def test_phi_incoming_mismatch(self):
        fn = Function("f", FunctionType(I32, ()), [])
        entry = fn.new_block("entry")
        join = fn.new_block("join")
        other = fn.new_block("other")
        b = IRBuilder(entry)
        b.br(join)
        b.position_at_end(join)
        phi = b.phi(I32, "x")
        b.ret(phi)
        b.position_at_end(other)
        b.ret(Constant(I32, 0))
        # phi lists 'other' which is not a predecessor
        add_phi_incoming(phi, Constant(I32, 1), other)
        with pytest.raises(VerificationError, match="incoming"):
            verify_function(fn)

    def test_use_before_def_in_block(self):
        fn = Function("f", FunctionType(I32, ()), [])
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        first = b.add(Constant(I32, 1), Constant(I32, 2), "first")
        second = b.add(first, Constant(I32, 3), "second")
        b.ret(second)
        # swap so a use precedes its definition
        entry.instructions[0], entry.instructions[1] = (
            entry.instructions[1],
            entry.instructions[0],
        )
        with pytest.raises(VerificationError, match="use before def"):
            verify_function(fn)

    def test_def_does_not_dominate_use(self):
        fn = Function("f", FunctionType(I32, (BOOL,)), ["c"])
        entry = fn.new_block("entry")
        left = fn.new_block("left")
        right = fn.new_block("right")
        b = IRBuilder(entry)
        b.condbr(fn.args[0], left, right)
        b.position_at_end(left)
        value = b.add(Constant(I32, 1), Constant(I32, 2), "v")
        b.ret(value)
        b.position_at_end(right)
        b.ret(value)  # not dominated by 'left'
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(fn)

    def test_load_from_non_pointer(self):
        fn = Function("f", FunctionType(I32, (I32,)), ["x"])
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        from repro.ir import Instruction

        bad = Instruction("load", I32, [fn.args[0]])
        entry.append(bad)
        b.ret(bad)
        with pytest.raises(VerificationError, match="non-pointer"):
            verify_function(fn)


class TestParserErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "class A { public: int x; }",  # missing ;
            "int f( { return 1; }",  # bad params
            "class B { public: void m() { if } };",  # bad statement
            "int g() { return 1 + ; }",  # bad expression
            "template<> class C { };",  # empty template header
        ],
    )
    def test_syntax_errors_raise(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_error_carries_location(self):
        try:
            parse("class A {\n  public:\n  int x\n};")
        except ParseError as exc:
            assert "line" in str(exc)
        else:
            pytest.fail("expected ParseError")


class TestSemaErrors:
    def test_unknown_base_class(self):
        with pytest.raises(SemaError, match="unknown base"):
            Sema(parse("class D : public Missing { public: int x; };"))

    def test_duplicate_class(self):
        with pytest.raises(SemaError, match="duplicate"):
            Sema(parse("class A { public: int x; };\nclass A { public: int y; };"))

    def test_recursive_value_embedding(self):
        with pytest.raises(SemaError):
            Sema(parse("class A { public: A inner; };"))

    def test_template_arity_mismatch(self):
        sema = Sema(parse("template<typename T> class Box { public: T v; };"))
        from repro.ir.types import F32, I32

        with pytest.raises(SemaError, match="expects"):
            sema.instantiate_class_template("Box", [I32, F32])


class TestPassManager:
    def test_records_stats(self):
        fn = Function("f", FunctionType(I32, ()), [])
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        dead = b.add(Constant(I32, 1), Constant(I32, 2), "dead")
        b.ret(Constant(I32, 0))
        from repro.passes import dead_code_elimination

        manager = PassManager(verify=True)
        changed = manager.run(fn, [dead_code_elimination], max_iterations=3)
        assert changed
        stats = manager.stats["dead_code_elimination"]
        assert stats.runs >= 1
        assert stats.changed >= 1
        assert stats.seconds >= 0.0

    def test_stops_when_stable(self):
        fn = Function("f", FunctionType(I32, ()), [])
        entry = fn.new_block("entry")
        IRBuilder(entry).ret(Constant(I32, 0))
        from repro.passes import dead_code_elimination

        manager = PassManager()
        assert not manager.run(fn, [dead_code_elimination], max_iterations=5)
        assert manager.stats["dead_code_elimination"].runs == 1
