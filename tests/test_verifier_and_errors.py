"""Error-path tests: the IR verifier catches malformed IR, the parser
rejects bad syntax with positions, sema rejects bad programs, and the pass
manager records statistics."""

import pytest

from repro.ir import (
    BOOL,
    Constant,
    Function,
    FunctionType,
    I32,
    IRBuilder,
    VOID,
    VerificationError,
    add_phi_incoming,
    verify_function,
)
from repro.minicpp import ParseError, Sema, SemaError, parse
from repro.passes import PassManager
from repro.passes.pipeline import PassStats


class TestVerifier:
    def test_missing_terminator(self):
        fn = Function("f", FunctionType(VOID, ()), [])
        block = fn.new_block("entry")
        b = IRBuilder(block)
        b.add(Constant(I32, 1), Constant(I32, 2))
        with pytest.raises(VerificationError, match="no terminator"):
            verify_function(fn)

    def test_branch_to_removed_block(self):
        fn = Function("f", FunctionType(VOID, ()), [])
        entry = fn.new_block("entry")
        target = fn.new_block("target")
        b = IRBuilder(entry)
        b.br(target)
        b.position_at_end(target)
        b.ret()
        fn.remove_block(target)
        with pytest.raises(VerificationError, match="removed block"):
            verify_function(fn)

    def test_phi_incoming_mismatch(self):
        fn = Function("f", FunctionType(I32, ()), [])
        entry = fn.new_block("entry")
        join = fn.new_block("join")
        other = fn.new_block("other")
        b = IRBuilder(entry)
        b.br(join)
        b.position_at_end(join)
        phi = b.phi(I32, "x")
        b.ret(phi)
        b.position_at_end(other)
        b.ret(Constant(I32, 0))
        # phi lists 'other' which is not a predecessor
        add_phi_incoming(phi, Constant(I32, 1), other)
        with pytest.raises(VerificationError, match="incoming"):
            verify_function(fn)

    def test_use_before_def_in_block(self):
        fn = Function("f", FunctionType(I32, ()), [])
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        first = b.add(Constant(I32, 1), Constant(I32, 2), "first")
        second = b.add(first, Constant(I32, 3), "second")
        b.ret(second)
        # swap so a use precedes its definition
        entry.instructions[0], entry.instructions[1] = (
            entry.instructions[1],
            entry.instructions[0],
        )
        with pytest.raises(VerificationError, match="use before def"):
            verify_function(fn)

    def test_def_does_not_dominate_use(self):
        fn = Function("f", FunctionType(I32, (BOOL,)), ["c"])
        entry = fn.new_block("entry")
        left = fn.new_block("left")
        right = fn.new_block("right")
        b = IRBuilder(entry)
        b.condbr(fn.args[0], left, right)
        b.position_at_end(left)
        value = b.add(Constant(I32, 1), Constant(I32, 2), "v")
        b.ret(value)
        b.position_at_end(right)
        b.ret(value)  # not dominated by 'left'
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(fn)

    def test_load_from_non_pointer(self):
        fn = Function("f", FunctionType(I32, (I32,)), ["x"])
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        from repro.ir import Instruction

        bad = Instruction("load", I32, [fn.args[0]])
        entry.append(bad)
        b.ret(bad)
        with pytest.raises(VerificationError, match="non-pointer"):
            verify_function(fn)


class TestParserErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "class A { public: int x; }",  # missing ;
            "int f( { return 1; }",  # bad params
            "class B { public: void m() { if } };",  # bad statement
            "int g() { return 1 + ; }",  # bad expression
            "template<> class C { };",  # empty template header
        ],
    )
    def test_syntax_errors_raise(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_error_carries_location(self):
        try:
            parse("class A {\n  public:\n  int x\n};")
        except ParseError as exc:
            assert "line" in str(exc)
        else:
            pytest.fail("expected ParseError")


class TestSemaErrors:
    def test_unknown_base_class(self):
        with pytest.raises(SemaError, match="unknown base"):
            Sema(parse("class D : public Missing { public: int x; };"))

    def test_duplicate_class(self):
        with pytest.raises(SemaError, match="duplicate"):
            Sema(parse("class A { public: int x; };\nclass A { public: int y; };"))

    def test_recursive_value_embedding(self):
        with pytest.raises(SemaError):
            Sema(parse("class A { public: A inner; };"))

    def test_template_arity_mismatch(self):
        sema = Sema(parse("template<typename T> class Box { public: T v; };"))
        from repro.ir.types import F32, I32

        with pytest.raises(SemaError, match="expects"):
            sema.instantiate_class_template("Box", [I32, F32])


class TestPassManager:
    def test_records_stats(self):
        fn = Function("f", FunctionType(I32, ()), [])
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        dead = b.add(Constant(I32, 1), Constant(I32, 2), "dead")
        b.ret(Constant(I32, 0))
        from repro.passes import dead_code_elimination

        manager = PassManager(verify=True)
        changed = manager.run(fn, [dead_code_elimination], max_iterations=3)
        assert changed
        stats = manager.stats["dead_code_elimination"]
        assert stats.runs >= 1
        assert stats.changed >= 1
        assert stats.seconds >= 0.0

    def test_stops_when_stable(self):
        fn = Function("f", FunctionType(I32, ()), [])
        entry = fn.new_block("entry")
        IRBuilder(entry).ret(Constant(I32, 0))
        from repro.passes import dead_code_elimination

        manager = PassManager()
        assert not manager.run(fn, [dead_code_elimination], max_iterations=5)
        assert manager.stats["dead_code_elimination"].runs == 1


class TestVerifierGapsFoundByFuzzing:
    """Checks added after the differential fuzzer produced IR that the
    verifier accepted but the engines disagreed on (or crashed over)."""

    def _void_fn(self):
        fn = Function("f", FunctionType(VOID, ()), [])
        return fn, fn.new_block("entry")

    def test_empty_phi_rejected(self):
        fn, entry = self._void_fn()
        merge = fn.new_block("merge")
        b = IRBuilder(entry)
        b.br(merge)
        b.position_at_end(merge)
        b.phi(I32, "ghost")  # no incoming values at all
        b.ret()
        with pytest.raises(VerificationError, match="no incoming"):
            verify_function(fn)

    def test_duplicate_phi_incoming_rejected(self):
        fn, entry = self._void_fn()
        merge = fn.new_block("merge")
        b = IRBuilder(entry)
        b.br(merge)
        b.position_at_end(merge)
        phi = b.phi(I32, "p")
        add_phi_incoming(phi, Constant(I32, 1), entry)
        add_phi_incoming(phi, Constant(I32, 2), entry)  # same pred twice
        b.ret()
        with pytest.raises(VerificationError, match="more than once"):
            verify_function(fn)

    def test_store_size_mismatch_rejected(self):
        from repro.ir import I64

        fn, entry = self._void_fn()
        b = IRBuilder(entry)
        slot = b.alloca(I32, "slot")
        b.store(Constant(I64, 7), slot)  # 8B store through i32* pointer
        b.ret()
        with pytest.raises(VerificationError, match="store of"):
            verify_function(fn)

    def test_condbr_on_non_integer_rejected(self):
        from repro.ir.types import F32

        fn, entry = self._void_fn()
        then = fn.new_block("then")
        other = fn.new_block("other")
        b = IRBuilder(entry)
        b.condbr(Constant(F32, 1.0), then, other)
        for block in (then, other):
            b.position_at_end(block)
            b.ret()
        with pytest.raises(VerificationError, match="non-integer"):
            verify_function(fn)

    def test_ret_without_value_in_non_void_rejected(self):
        fn = Function("f", FunctionType(I32, ()), [])
        entry = fn.new_block("entry")
        instr = IRBuilder(entry).ret()  # void ret, but fn returns i32
        assert instr.op == "ret"
        with pytest.raises(VerificationError, match="ret without value"):
            verify_function(fn)


class TestRemoveUnreachableBlocks:
    """Constant-folding a condbr can orphan whole subgraphs whose blocks
    still feed phi edges in reachable merge blocks; the fuzzer reduced this
    to a one-iteration loop under a constant if.  ``simplify_cfg`` (and
    constfold itself) must drop the dead blocks AND their phi entries."""

    def _diamond_with_dead_side(self):
        fn = Function("f", FunctionType(I32, ()), [])
        entry = fn.new_block("entry")
        then = fn.new_block("then")
        other = fn.new_block("other")
        merge = fn.new_block("merge")
        b = IRBuilder(entry)
        b.condbr(Constant(BOOL, 1), then, other)
        b.position_at_end(then)
        b.br(merge)
        b.position_at_end(other)
        b.br(merge)
        b.position_at_end(merge)
        phi = b.phi(I32, "p")
        add_phi_incoming(phi, Constant(I32, 1), then)
        add_phi_incoming(phi, Constant(I32, 2), other)
        b.ret(phi)
        return fn, other, phi

    def test_dead_block_and_phi_edge_removed(self):
        from repro.passes.simplifycfg import remove_unreachable_blocks

        fn, other, phi = self._diamond_with_dead_side()
        # Make `other` unreachable the way constfold does: rewrite the
        # entry condbr into an unconditional branch.
        entry = fn.entry
        term = entry.terminator
        entry.remove(term)
        IRBuilder(entry).br(fn.blocks[1])
        assert remove_unreachable_blocks(fn)
        assert other not in fn.blocks
        assert phi.phi_blocks == [fn.blocks[1]]
        assert len(phi.operands) == 1
        verify_function(fn)

    def test_constfold_drops_orphaned_subgraph(self):
        from repro.passes import constant_fold

        fn, other, phi = self._diamond_with_dead_side()
        constant_fold(fn)
        assert other not in fn.blocks
        verify_function(fn)

    def test_noop_on_fully_reachable_cfg(self):
        from repro.ir import format_function
        from repro.passes.simplifycfg import remove_unreachable_blocks

        fn, _, _ = self._diamond_with_dead_side()
        before = format_function(fn)
        assert not remove_unreachable_blocks(fn)
        assert format_function(fn) == before


class TestL3OptEarlyExitGuard:
    """The BTree differential exposed l3opt staggering a search loop with
    an early ``break``: iteration order is observable there, so any loop
    with a second exit must be rejected."""

    def _staggerable_loop(self, early_exit: bool):
        """for (j = 0; j < 64; j++) { t = g[j]; if (early_exit && t == 9) break; }"""
        from repro.ir import Module
        from repro.ir.values import GlobalVariable

        module = Module("m")
        gvar = module.add_global(GlobalVariable("g", I32))
        fn = Function("k", FunctionType(VOID, (I32,)), ["i"])
        module.add_function(fn)
        entry = fn.new_block("entry")
        header = fn.new_block("header")
        body = fn.new_block("body")
        latch = fn.new_block("latch")
        done = fn.new_block("done")
        b = IRBuilder(entry)
        b.br(header)
        b.position_at_end(header)
        j = b.phi(I32, "j")
        cmp = b.icmp("slt", j, Constant(I32, 64))
        b.condbr(cmp, body, done)
        b.position_at_end(body)
        loaded = b.load(gvar, "t")
        if early_exit:
            hit = b.icmp("eq", loaded, Constant(I32, 9))
            b.condbr(hit, done, latch)
        else:
            b.br(latch)
        b.position_at_end(latch)
        step = b.add(j, Constant(I32, 1), "j.next")
        b.br(header)
        add_phi_incoming(j, Constant(I32, 0), entry)
        add_phi_incoming(j, step, latch)
        b.position_at_end(done)
        b.ret()
        verify_function(fn)
        return fn

    def test_single_exit_loop_is_staggered(self):
        from repro.passes.l3opt import reduce_cacheline_contention

        fn = self._staggerable_loop(early_exit=False)
        assert reduce_cacheline_contention(fn)
        assert fn.attributes.get("l3opt_applied") == 1
        verify_function(fn)

    def test_early_exit_loop_is_rejected(self):
        from repro.passes.l3opt import reduce_cacheline_contention

        fn = self._staggerable_loop(early_exit=True)
        assert not reduce_cacheline_contention(fn)
        assert not fn.attributes.get("l3opt_applied")
