"""Unit tests for the software shared-virtual-memory subsystem."""

import pytest

from repro.ir.types import F32, I32, I64, StructType, ptr
from repro.svm import (
    MemoryFault,
    OutOfSharedMemory,
    PhysicalMemory,
    SharedAllocator,
    SharedRegion,
    StructView,
    SvmHeap,
)


class TestPhysicalMemory:
    def test_int_roundtrip(self):
        mem = PhysicalMemory(64)
        mem.write_int(0, 4, -123, signed=True)
        assert mem.read_int(0, 4, signed=True) == -123
        mem.write_int(8, 8, 2**63 - 1, signed=False)
        assert mem.read_int(8, 8, signed=False) == 2**63 - 1

    def test_float_roundtrip(self):
        mem = PhysicalMemory(64)
        mem.write_float(0, 4, 3.25)
        assert mem.read_float(0, 4) == 3.25
        mem.write_float(8, 8, -1e300)
        assert mem.read_float(8, 8) == -1e300

    def test_out_of_range_faults(self):
        mem = PhysicalMemory(16)
        with pytest.raises(MemoryFault):
            mem.read_int(15, 4, signed=True)
        with pytest.raises(MemoryFault):
            mem.write_int(-1, 1, 0, signed=False)


class TestSharedRegion:
    def test_svm_const_definition(self):
        region = SharedRegion(1 << 16, cpu_base=0x1000, gpu_base=0x9000)
        assert region.svm_const == 0x8000
        assert region.cpu_to_gpu(0x1010) == 0x9010
        assert region.gpu_to_cpu(0x9010) == 0x1010

    def test_cpu_and_gpu_views_alias_same_bytes(self):
        region = SharedRegion(1 << 16)
        cpu_addr = region.cpu_base + 128
        region.write_int(cpu_addr, 4, 0xDEAD, signed=False)
        gpu_addr = region.cpu_to_gpu(cpu_addr)
        phys = region.gpu_to_physical(gpu_addr, 4)
        assert region.physical.read_int(phys, 4, signed=False) == 0xDEAD

    def test_untranslated_cpu_pointer_faults_on_gpu(self):
        """The load-bearing property: dereferencing a CPU virtual address
        on the GPU must fault, so the SVM translation pass is mandatory."""
        region = SharedRegion(1 << 16)
        cpu_addr = region.cpu_base + 64
        with pytest.raises(MemoryFault):
            region.gpu_to_physical(cpu_addr, 4)

    def test_gpu_surface_bounds(self):
        region = SharedRegion(1 << 16)
        with pytest.raises(MemoryFault):
            region.gpu_to_physical(region.gpu_base + (1 << 16), 1)
        # last valid byte
        assert region.gpu_to_physical(region.gpu_base + (1 << 16) - 1, 1) >= 0

    def test_surface_binding_table(self):
        region = SharedRegion(1 << 16, binding_table_index=3)
        assert region.surface.binding_table_index == 3
        assert region.surface.pinned


class TestSharedAllocator:
    def test_malloc_returns_cpu_addresses(self):
        region = SharedRegion(1 << 16)
        alloc = SharedAllocator(region)
        a = alloc.malloc(100)
        assert region.contains_cpu(a, 100)

    def test_alignment(self):
        region = SharedRegion(1 << 16)
        alloc = SharedAllocator(region)
        for request in (1, 3, 17, 100):
            addr = alloc.malloc(request, align=16)
            assert addr % 16 == 0

    def test_free_and_reuse(self):
        region = SharedRegion(1 << 16)
        alloc = SharedAllocator(region)
        a = alloc.malloc(256)
        alloc.free(a)
        b = alloc.malloc(256)
        assert b == a  # first fit reuses the hole

    def test_coalescing(self):
        region = SharedRegion(1 << 12)
        alloc = SharedAllocator(region)
        blocks = [alloc.malloc(512) for _ in range(4)]
        for block in blocks:
            alloc.free(block)
        # after coalescing a near-region-size block is allocatable again
        big = alloc.malloc(2048)
        assert region.contains_cpu(big, 2048)

    def test_exhaustion_raises(self):
        region = SharedRegion(1 << 12)
        alloc = SharedAllocator(region)
        with pytest.raises(OutOfSharedMemory):
            alloc.malloc(1 << 13)

    def test_double_free_raises(self):
        region = SharedRegion(1 << 12)
        alloc = SharedAllocator(region)
        a = alloc.malloc(64)
        alloc.free(a)
        with pytest.raises(ValueError):
            alloc.free(a)

    def test_usage_accounting(self):
        region = SharedRegion(1 << 14)
        alloc = SharedAllocator(region)
        a = alloc.malloc(100)
        b = alloc.malloc(200)
        assert alloc.live_bytes == 300
        alloc.free(a)
        assert alloc.live_bytes == 200
        assert alloc.peak_usage == 300
        alloc.free(b)
        assert alloc.live_bytes == 0


class TestViews:
    def _heap(self):
        region = SharedRegion(1 << 16)
        return SvmHeap(region, SharedAllocator(region))

    def test_struct_view_fields(self):
        heap = self._heap()
        node = StructType("Node")
        node.finalize([("next", ptr(node)), ("value", F32)])
        a = heap.new_struct(node)
        b = heap.new_struct(node)
        a.value = 1.5
        a.next = b
        assert a.value == 1.5
        assert a.next == b.addr
        linked = a.deref("next")
        assert isinstance(linked, StructView)
        assert linked.addr == b.addr

    def test_null_deref_returns_none(self):
        heap = self._heap()
        node = StructType("N2")
        node.finalize([("next", ptr(node))])
        a = heap.new_struct(node)
        assert a.deref("next") is None

    def test_unknown_field_raises(self):
        heap = self._heap()
        s = StructType("S1")
        s.finalize([("x", I32)])
        view = heap.new_struct(s)
        with pytest.raises(AttributeError):
            _ = view.nothere

    def test_array_view(self):
        heap = self._heap()
        arr = heap.new_array(I32, 10)
        arr.fill_from(range(10))
        assert arr.to_list() == list(range(10))
        arr[3] = -5
        assert arr[3] == -5
        with pytest.raises(IndexError):
            _ = arr[10]

    def test_array_of_structs(self):
        heap = self._heap()
        s = StructType("Pt")
        s.finalize([("x", F32), ("y", F32)])
        pts = heap.new_array(s, 4)
        pts[2].x = 7.0
        assert pts[2].x == 7.0
        assert pts.element_address(2) == pts.addr + 2 * s.size()

    def test_zero_initialized(self):
        heap = self._heap()
        s = StructType("Z")
        s.finalize([("a", I64), ("b", F32)])
        view = heap.new_struct(s)
        assert view.a == 0 and view.b == 0.0
