"""Tests for the CLI compiler driver and the device-allocation extension
(the restriction the paper plans to lift as future work)."""

import warnings

import pytest

from repro.__main__ import main as cli_main
from repro.passes import OptConfig
from repro.runtime import ConcordRuntime, ConcordWarning, compile_source, ultrabook

ALLOC_SRC = """
class Node {
public:
  Node* next;
  int tag;
};
class BuilderBody {
public:
  Node** heads;
  int chain_length;
  void operator()(int i) {
    Node* head = 0;
    for (int k = 0; k < chain_length; k++) {
      Node* fresh = new Node();
      fresh->tag = i * 100 + k;
      fresh->next = head;
      head = fresh;
    }
    heads[i] = head;
  }
};
"""


class TestDeviceAllocExtension:
    def test_flagged_without_extension(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            prog = compile_source(ALLOC_SRC, OptConfig.gpu_all())
        assert prog.kernel_for("BuilderBody").cpu_only
        assert any(issubclass(w.category, ConcordWarning) for w in caught)

    def test_runs_on_gpu_with_extension(self):
        config = OptConfig(ptropt=True, l3opt=True, device_alloc=True)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            prog = compile_source(ALLOC_SRC, config)
        assert not prog.kernel_for("BuilderBody").cpu_only
        assert not any(issubclass(w.category, ConcordWarning) for w in caught)

        rt = ConcordRuntime(prog, ultrabook())
        from repro.ir.types import I64, ptr

        n, chain = 6, 4
        heads = rt.new_array(ptr(I64), n)
        body = rt.new("BuilderBody")
        body.heads = heads
        body.chain_length = chain
        report = rt.parallel_for_hetero(n, body)
        assert report.device == "gpu"

        # host walks the device-allocated linked lists through SVM
        for i in range(n):
            node_addr = heads[i]
            tags = []
            while node_addr:
                node = rt.view("Node", node_addr)
                tags.append(node.tag)
                node_addr = node.next
            assert tags == [i * 100 + k for k in reversed(range(chain))]

        # the bump cursor reflects what kernels allocated
        assert rt.device_heap().used_bytes >= n * chain * 16

    def test_device_heap_exhaustion(self):
        from repro.svm import SharedRegion
        from repro.svm.allocator import DeviceBumpAllocator, OutOfSharedMemory

        region = SharedRegion(1 << 12)
        heap = DeviceBumpAllocator(region, region.cpu_base, 256)
        heap.calloc(100)
        with pytest.raises(OutOfSharedMemory):
            heap.calloc(200)
        heap.reset()
        assert heap.used_bytes == 0
        heap.calloc(200)  # fits again after reset


class TestCli:
    @pytest.fixture()
    def source_file(self, tmp_path):
        path = tmp_path / "kernel.cpp"
        path.write_text(
            """
            class Body {
            public:
              int* data;
              void operator()(int i) { data[i] = i * 2; }
            };
            """
        )
        return str(path)

    def test_compile_emit_opencl(self, source_file, capsys):
        assert cli_main(["compile", source_file, "--emit", "opencl"]) == 0
        out = capsys.readouterr().out
        assert "__kernel void" in out

    def test_compile_emit_ir(self, source_file, capsys):
        assert cli_main(["compile", source_file, "--emit", "ir"]) == 0
        out = capsys.readouterr().out
        assert "func @kernel.Body" in out

    def test_compile_emit_stats(self, source_file, capsys):
        assert cli_main(["compile", source_file, "--emit", "stats"]) == 0
        out = capsys.readouterr().out
        assert "irregularity" in out

    def test_compile_list_kernels(self, source_file, capsys):
        assert cli_main(["compile", source_file, "--emit", "kernels"]) == 0
        out = capsys.readouterr().out
        assert "Body: for" in out

    def test_run(self, source_file, capsys, tmp_path):
        # Body with no pointer fields can't run meaningfully, but a body
        # writing through a null pointer would fault; use a self-contained
        # kernel instead.
        path = tmp_path / "pure.cpp"
        path.write_text(
            """
            class Pure {
            public:
              int sink;
              void operator()(int i) {
                int x = i * i;
                sink = x;
              }
            };
            """
        )
        assert cli_main(["run", str(path), "--body", "Pure", "--n", "4"]) == 0
        out = capsys.readouterr().out
        assert "device=gpu" in out

    def test_no_kernels_error(self, tmp_path, capsys):
        path = tmp_path / "nothing.cpp"
        path.write_text("class Plain { public: int x; };")
        assert cli_main(["compile", str(path)]) == 1
