"""Restriction checking with CPU fallback (section 2.1) and hierarchical
reductions (section 3.3)."""

import warnings

import pytest

from repro.runtime import (
    ConcordRuntime,
    ConcordWarning,
    OptConfig,
    compile_source,
    ultrabook,
)


class TestRestrictions:
    def test_device_allocation_falls_back_to_cpu(self):
        src = """
        class Node { public: Node* next; };
        class AllocBody {
        public:
          Node** slots;
          void operator()(int i) {
            slots[i] = new Node();
          }
        };
        """
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            prog = compile_source(src, OptConfig.gpu())
        assert any(issubclass(w.category, ConcordWarning) for w in caught)
        kinfo = prog.kernel_for("AllocBody")
        assert kinfo.cpu_only
        assert any(v.kind == "gpu-allocation" for v in kinfo.violations)

    def test_flagged_kernel_runs_on_cpu_despite_gpu_request(self):
        src = """
        class Node { public: Node* next; int tag; };
        class AllocBody {
        public:
          Node** slots;
          void operator()(int i) {
            Node* n = new Node();
            n->tag = i;
            slots[i] = n;
          }
        };
        """
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            prog = compile_source(src, OptConfig.gpu())
        rt = ConcordRuntime(prog, ultrabook())
        from repro.ir.types import I64, ptr

        slots = rt.new_array(ptr(I64), 8)
        body = rt.new("AllocBody")
        body.slots = slots
        report = rt.parallel_for_hetero(8, body)  # asked for GPU
        assert report.device == "cpu"
        assert report.fallback_reason == "restriction fallback"
        for i in range(8):
            node = rt.view("Node", slots[i])
            assert node.tag == i

    def test_tail_recursion_is_allowed(self):
        src = """
        class CountBody {
        public:
          int* out;
          int walk(int n, int acc) {
            if (n == 0) return acc;
            return walk(n - 1, acc + n);
          }
          void operator()(int i) { out[i] = walk(i, 0); }
        };
        """
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            prog = compile_source(src, OptConfig.gpu())
        assert not any(issubclass(w.category, ConcordWarning) for w in caught)
        kinfo = prog.kernel_for("CountBody")
        assert not kinfo.cpu_only
        rt = ConcordRuntime(prog, ultrabook())
        from repro.ir.types import I32

        out = rt.new_array(I32, 10)
        body = rt.new("CountBody")
        body.out = out
        rep = rt.parallel_for_hetero(10, body)
        assert rep.device == "gpu"
        assert out.to_list() == [sum(range(i + 1)) for i in range(10)]

    def test_general_recursion_flagged(self):
        src = """
        class FibBody {
        public:
          int* out;
          int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
          }
          void operator()(int i) { out[i] = fib(i); }
        };
        """
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            prog = compile_source(src, OptConfig.gpu())
        kinfo = prog.kernel_for("FibBody")
        assert kinfo.cpu_only
        assert any(v.kind == "recursion" for v in kinfo.violations)
        assert any(issubclass(w.category, ConcordWarning) for w in caught)
        # ... and still computes correctly on the CPU fallback
        rt = ConcordRuntime(prog, ultrabook())
        from repro.ir.types import I32

        out = rt.new_array(I32, 10)
        body = rt.new("FibBody")
        body.out = out
        rep = rt.parallel_for_hetero(10, body)
        assert rep.device == "cpu"
        fibs = [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]
        assert out.to_list() == fibs


REDUCE_SRC = """
class SumBody {
public:
  float* data;
  float sum;
  void operator()(int i) {
    sum += data[i];
  }
  void join(SumBody& other) {
    sum += other.sum;
  }
};
"""


class TestReduction:
    @pytest.fixture()
    def runtime(self):
        prog = compile_source(REDUCE_SRC, OptConfig.gpu_all())
        return ConcordRuntime(prog, ultrabook())

    def _setup(self, rt, n):
        from repro.ir.types import F32

        data = rt.new_array(F32, n)
        values = [float((i * 7) % 13) for i in range(n)]
        data.fill_from(values)
        body = rt.new("SumBody")
        body.data = data
        body.sum = 0.0
        return body, sum(values)

    @pytest.mark.parametrize("n", [1, 5, 16, 33, 100])
    def test_gpu_reduce_matches_reference(self, runtime, n):
        body, expected = self._setup(runtime, n)
        report = runtime.parallel_reduce_hetero(n, body)
        assert report.device == "gpu"
        assert body.sum == pytest.approx(expected, rel=1e-5)

    def test_cpu_reduce_matches_reference(self, runtime):
        body, expected = self._setup(runtime, 64)
        report = runtime.parallel_reduce_hetero(64, body, on_cpu=True)
        assert report.device == "cpu"
        assert body.sum == pytest.approx(expected, rel=1e-5)

    def test_reduce_requires_join(self, runtime):
        src = """
        class NoJoin {
        public:
          int* out;
          void operator()(int i) { out[i] = i; }
        };
        """
        prog = compile_source(src, OptConfig.gpu())
        rt = ConcordRuntime(prog, ultrabook())
        body = rt.new("NoJoin")
        with pytest.raises(TypeError):
            rt.parallel_reduce_hetero(4, body)

    def test_jit_cached_across_launches(self, runtime):
        body, _ = self._setup(runtime, 32)
        first = runtime.parallel_reduce_hetero(32, body)
        body.sum = 0.0
        second = runtime.parallel_reduce_hetero(32, body)
        assert first.jit_seconds > 0.0
        assert second.jit_seconds == 0.0
