"""Unit tests for the scalar IR interpreter: semantics, SVM address
spaces, traces, atomics, and fault behaviour."""

import pytest

from repro.exec import ExecutionError, Interpreter
from repro.ir import (
    Constant,
    F32,
    Function,
    FunctionType,
    I32,
    I64,
    IRBuilder,
    VOID,
    ptr,
)
from repro.ir.intrinsics import (
    ATOMIC_ADD_I32,
    ATOMIC_CAS_I32,
    ATOMIC_MIN_I32,
    MATH_INTRINSICS,
    SVM_TO_GPU,
)
from repro.svm import MemoryFault, SharedAllocator, SharedRegion


@pytest.fixture()
def region():
    return SharedRegion(1 << 16)


def make_fn(ret=I32, params=(), names=()):
    return Function("f", FunctionType(ret, tuple(params)), list(names))


class TestArithmeticSemantics:
    def test_wrapping_add(self, region):
        fn = make_fn()
        b = IRBuilder(fn.new_block("entry"))
        big = Constant(I32, 2**31 - 1)
        b.ret(b.add(big, b.i32(1)))
        assert Interpreter(region).call_function(fn, []) == -(2**31)

    def test_signed_division_truncates_toward_zero(self, region):
        fn = make_fn()
        b = IRBuilder(fn.new_block("entry"))
        b.ret(b.binop("sdiv", b.i32(-7), b.i32(2)))
        assert Interpreter(region).call_function(fn, []) == -3  # not -4

    def test_signed_remainder(self, region):
        fn = make_fn()
        b = IRBuilder(fn.new_block("entry"))
        b.ret(b.binop("srem", b.i32(-7), b.i32(2)))
        assert Interpreter(region).call_function(fn, []) == -1

    def test_division_by_zero_raises(self, region):
        fn = make_fn()
        b = IRBuilder(fn.new_block("entry"))
        b.ret(b.binop("sdiv", b.i32(1), b.i32(0)))
        with pytest.raises(ExecutionError):
            Interpreter(region).call_function(fn, [])

    def test_unsigned_shift(self, region):
        fn = make_fn()
        b = IRBuilder(fn.new_block("entry"))
        neg = Constant(I32, -1)
        b.ret(b.binop("lshr", neg, b.i32(28)))
        assert Interpreter(region).call_function(fn, []) == 15

    def test_f32_rounding(self, region):
        fn = make_fn(ret=F32)
        b = IRBuilder(fn.new_block("entry"))
        b.ret(b.binop("fadd", Constant(F32, 0.1), Constant(F32, 0.2)))
        import struct

        f32 = lambda x: struct.unpack("f", struct.pack("f", x))[0]
        got = Interpreter(region).call_function(fn, [])
        assert got == f32(f32(0.1) + f32(0.2))

    def test_math_intrinsic(self, region):
        fn = make_fn(ret=F32)
        b = IRBuilder(fn.new_block("entry"))
        call = b.call(MATH_INTRINSICS["math.sqrt.f32"], [Constant(F32, 16.0)])
        b.ret(call)
        assert Interpreter(region).call_function(fn, []) == 4.0


class TestMemoryAndSvm:
    def _store_load_fn(self, value_type):
        fn = make_fn(ret=value_type, params=(ptr(value_type), value_type),
                     names=("p", "v"))
        b = IRBuilder(fn.new_block("entry"))
        b.store(fn.args[1], fn.args[0])
        b.ret(b.load(fn.args[0]))
        return fn

    def test_cpu_store_load_roundtrip(self, region):
        fn = self._store_load_fn(I32)
        addr = region.cpu_base + 128
        got = Interpreter(region, "cpu").call_function(fn, [addr, -42])
        assert got == -42

    def test_gpu_rejects_cpu_addresses(self, region):
        """The load-bearing SVM property: GPU execution faults on
        untranslated CPU virtual addresses."""
        fn = self._store_load_fn(I32)
        cpu_addr = region.cpu_base + 128
        with pytest.raises(MemoryFault):
            Interpreter(region, "gpu").call_function(fn, [cpu_addr, 1])

    def test_gpu_accepts_translated_addresses(self, region):
        fn = self._store_load_fn(I32)
        cpu_addr = region.cpu_base + 128
        gpu_addr = region.cpu_to_gpu(cpu_addr)
        got = Interpreter(region, "gpu").call_function(fn, [gpu_addr, 7])
        assert got == 7
        # the same physical byte is visible through the CPU view
        assert region.read_int(cpu_addr, 4, signed=True) == 7

    def test_svm_translate_intrinsic(self, region):
        fn = make_fn(ret=I32, params=(ptr(I32),), names=("p",))
        b = IRBuilder(fn.new_block("entry"))
        translated = b.call(SVM_TO_GPU, [fn.args[0]])
        b.ret(b.load(translated))
        cpu_addr = region.cpu_base + 64
        region.write_int(cpu_addr, 4, 99, signed=True)
        interp = Interpreter(region, "gpu")
        assert interp.call_function(fn, [cpu_addr]) == 99
        assert interp.trace.translations == 1

    def test_private_memory_needs_no_translation(self, region):
        fn = make_fn()
        b = IRBuilder(fn.new_block("entry"))
        slot = b.alloca(I32)
        b.store(b.i32(5), slot)
        b.ret(b.load(slot))
        # works on the GPU with no SVM translation (private memory)
        assert Interpreter(region, "gpu").call_function(fn, []) == 5

    def test_trace_records_memory_events(self, region):
        fn = self._store_load_fn(I64)
        interp = Interpreter(region, "cpu")
        interp.call_function(fn, [region.cpu_base + 256, 12345])
        events = interp.trace.mem_events
        assert len(events) == 2
        assert events[0].is_store and not events[1].is_store
        assert events[0].address == region.cpu_base + 256
        assert events[0].size == 8


class TestAtomics:
    def _atomic_fn(self, intrinsic, extra=1):
        params = [ptr(I32)] + [I32] * extra
        fn = make_fn(ret=I32, params=params,
                     names=["p"] + [f"v{i}" for i in range(extra)])
        b = IRBuilder(fn.new_block("entry"))
        b.ret(b.call(intrinsic, list(fn.args)))
        return fn

    def test_atomic_add_returns_old(self, region):
        fn = self._atomic_fn(ATOMIC_ADD_I32)
        addr = region.cpu_base + 512
        region.write_int(addr, 4, 10, signed=True)
        old = Interpreter(region, "cpu").call_function(fn, [addr, 5])
        assert old == 10
        assert region.read_int(addr, 4, signed=True) == 15

    def test_atomic_min(self, region):
        fn = self._atomic_fn(ATOMIC_MIN_I32)
        addr = region.cpu_base + 512
        region.write_int(addr, 4, 10, signed=True)
        Interpreter(region, "cpu").call_function(fn, [addr, 3])
        assert region.read_int(addr, 4, signed=True) == 3
        Interpreter(region, "cpu").call_function(fn, [addr, 100])
        assert region.read_int(addr, 4, signed=True) == 3

    def test_atomic_cas(self, region):
        fn = self._atomic_fn(ATOMIC_CAS_I32, extra=2)
        addr = region.cpu_base + 512
        region.write_int(addr, 4, 7, signed=True)
        old = Interpreter(region, "cpu").call_function(fn, [addr, 7, 9])
        assert old == 7
        assert region.read_int(addr, 4, signed=True) == 9
        old = Interpreter(region, "cpu").call_function(fn, [addr, 7, 11])
        assert old == 9  # compare failed, no write
        assert region.read_int(addr, 4, signed=True) == 9


class TestControlAndTraces:
    def test_branch_stats_recorded(self, region):
        fn = make_fn(ret=I32, params=(I32,), names=("n",))
        entry = fn.new_block("entry")
        header = fn.new_block("header")
        body = fn.new_block("body")
        done = fn.new_block("done")
        b = IRBuilder(entry)
        b.br(header)
        b.position_at_end(header)
        from repro.ir import add_phi_incoming

        phi = b.phi(I32, "i")
        cond = b.icmp("slt", phi, fn.args[0])
        branch = b.condbr(cond, body, done)
        b.position_at_end(body)
        nxt = b.add(phi, b.i32(1))
        b.br(header)
        b.position_at_end(done)
        b.ret(phi)
        add_phi_incoming(phi, b.i32(0), entry)
        add_phi_incoming(phi, nxt, body)
        interp = Interpreter(region, "cpu")
        assert interp.call_function(fn, [10]) == 10
        taken, total = interp.trace.branch_stats[branch.uid]
        assert total == 11 and taken == 10

    def test_step_limit(self, region):
        fn = make_fn(ret=VOID)
        entry = fn.new_block("entry")
        loop = fn.new_block("loop")
        b = IRBuilder(entry)
        b.br(loop)
        b.position_at_end(loop)
        b.br(loop)  # infinite
        interp = Interpreter(region, "cpu", max_steps=1000)
        with pytest.raises(ExecutionError):
            interp.call_function(fn, [])

    def test_call_depth_limit(self, region):
        fn = make_fn(ret=I32)
        b = IRBuilder(fn.new_block("entry"))
        call = b.call(fn, [])
        b.ret(call)
        with pytest.raises(ExecutionError):
            Interpreter(region, "cpu").call_function(fn, [])

    def test_wrong_arity_raises(self, region):
        fn = make_fn(ret=I32, params=(I32,), names=("x",))
        b = IRBuilder(fn.new_block("entry"))
        b.ret(fn.args[0])
        with pytest.raises(ExecutionError):
            Interpreter(region, "cpu").call_function(fn, [1, 2])
