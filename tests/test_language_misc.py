"""Execution tests for the long tail of language constructs: do-while,
break/continue, local arrays in kernels (private memory), nested loops,
casts, sizeof, bit manipulation."""

import pytest

from repro.ir.types import F32, I32, U32
from repro.runtime import ConcordRuntime, OptConfig, compile_source, ultrabook


def run_body(source, body_class, n, setup, on_cpu=False, config=None):
    prog = compile_source(source, config or OptConfig.gpu_all())
    rt = ConcordRuntime(prog, ultrabook())
    body, check = setup(rt)
    report = rt.parallel_for_hetero(n, body, on_cpu=on_cpu)
    return report, check()


class TestControlFlowTail:
    def test_do_while(self):
        source = """
        class B {
        public:
          int* out;
          void operator()(int i) {
            int x = i;
            int steps = 0;
            do { x /= 2; steps++; } while (x > 0);
            out[i] = steps;
          }
        };
        """

        def setup(rt):
            out = rt.new_array(I32, 10)
            body = rt.new("B")
            body.out = out
            return body, lambda: out.to_list()

        _, got = run_body(source, "B", 10, setup)
        expected = []
        for i in range(10):
            x, steps = i, 0
            while True:
                x //= 2
                steps += 1
                if x <= 0:
                    break
            expected.append(steps)
        assert got == expected

    def test_break_and_continue(self):
        source = """
        class B {
        public:
          int* out;
          void operator()(int i) {
            int acc = 0;
            for (int j = 0; j < 100; j++) {
              if (j % 3 == 0) continue;
              if (j > i) break;
              acc += j;
            }
            out[i] = acc;
          }
        };
        """

        def setup(rt):
            out = rt.new_array(I32, 12)
            body = rt.new("B")
            body.out = out
            return body, lambda: out.to_list()

        _, got = run_body(source, "B", 12, setup)
        expected = []
        for i in range(12):
            acc = 0
            for j in range(100):
                if j % 3 == 0:
                    continue
                if j > i:
                    break
                acc += j
            expected.append(acc)
        assert got == expected

    def test_nested_loops_with_break(self):
        source = """
        class B {
        public:
          int* out;
          void operator()(int i) {
            int found = -1;
            for (int a = 0; a < 10 && found < 0; a++) {
              for (int b = 0; b < 10; b++) {
                if (a * 10 + b == i * 7) { found = a * 100 + b; break; }
              }
            }
            out[i] = found;
          }
        };
        """

        def setup(rt):
            out = rt.new_array(I32, 8)
            body = rt.new("B")
            body.out = out
            return body, lambda: out.to_list()

        _, got = run_body(source, "B", 8, setup)
        expected = []
        for i in range(8):
            target = i * 7
            found = -1
            for a in range(10):
                if found >= 0:
                    break
                for b in range(10):
                    if a * 10 + b == target:
                        found = a * 100 + b
                        break
            expected.append(found)
        assert got == expected


class TestPrivateArrays:
    def test_local_array_histogram_on_gpu(self):
        """A fixed-size local array lives in private memory: usable on the
        GPU with no SVM translation and no restriction warning."""
        source = """
        class B {
        public:
          int* data;
          int* out;
          int n;
          void operator()(int i) {
            int counts[4];
            for (int k = 0; k < 4; k++) counts[k] = 0;
            for (int j = 0; j < n; j++) {
              counts[(data[j] + i) % 4] += 1;
            }
            out[i] = counts[0] * 1000 + counts[1] * 100 + counts[2] * 10 + counts[3];
          }
        };
        """
        values = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]

        def setup(rt):
            data = rt.new_array(I32, len(values))
            data.fill_from(values)
            out = rt.new_array(I32, 4)
            body = rt.new("B")
            body.data = data
            body.out = out
            body.n = len(values)
            return body, lambda: out.to_list()

        report, got = run_body(source, "B", 4, setup)
        assert report.device == "gpu"
        expected = []
        for i in range(4):
            counts = [0] * 4
            for v in values:
                counts[(v + i) % 4] += 1
            expected.append(
                counts[0] * 1000 + counts[1] * 100 + counts[2] * 10 + counts[3]
            )
        assert got == expected


class TestCastsAndSizes:
    def test_numeric_casts(self):
        source = """
        class B {
        public:
          float* out;
          void operator()(int i) {
            float f = (float)i / 4.0f;
            int trunc_back = (int)(f * 3.0f);
            out[i] = (float)trunc_back + f;
          }
        };
        """

        def setup(rt):
            out = rt.new_array(F32, 9)
            body = rt.new("B")
            body.out = out
            return body, lambda: out.to_list()

        _, got = run_body(source, "B", 9, setup)
        import struct

        def f32(x):
            return struct.unpack("f", struct.pack("f", x))[0]

        expected = []
        for i in range(9):
            f = f32(float(i) / 4.0)
            trunc_back = int(f32(f * 3.0))
            expected.append(f32(float(trunc_back) + f))
        assert got == pytest.approx(expected)

    def test_static_cast_and_sizeof(self):
        source = """
        class Pod { public: int a; long b; char c; };
        class B {
        public:
          int* out;
          void operator()(int i) {
            out[i] = (int)sizeof(Pod) + static_cast<int>(3.9f) + i;
          }
        };
        """

        def setup(rt):
            out = rt.new_array(I32, 3)
            body = rt.new("B")
            body.out = out
            return body, lambda: out.to_list()

        _, got = run_body(source, "B", 3, setup)
        # Pod: int(4) pad(4) long(8) char(1) pad -> 24
        assert got == [24 + 3 + i for i in range(3)]

    def test_unsigned_arithmetic(self):
        source = """
        class B {
        public:
          unsigned int* out;
          void operator()(int i) {
            unsigned int x = 0;
            x = x - 1;               // wraps to UINT_MAX
            x = x >> (31 - i);       // logical shift
            out[i] = x;
          }
        };
        """

        def setup(rt):
            out = rt.new_array(U32, 4)
            body = rt.new("B")
            body.out = out
            return body, lambda: out.to_list()

        _, got = run_body(source, "B", 4, setup)
        assert got == [(2**32 - 1) >> (31 - i) for i in range(4)]

    def test_bit_tricks(self):
        source = """
        class B {
        public:
          int* out;
          void operator()(int i) {
            int v = i * 37 + 11;
            int count = 0;
            while (v != 0) { v = v & (v - 1); count++; }  // popcount
            out[i] = count;
          }
        };
        """

        def setup(rt):
            out = rt.new_array(I32, 16)
            body = rt.new("B")
            body.out = out
            return body, lambda: out.to_list()

        _, got = run_body(source, "B", 16, setup)
        assert got == [bin(i * 37 + 11).count("1") for i in range(16)]
