"""The threaded-code engine is bit-identical to the reference interpreter.

For all nine paper workloads, on both devices, the compiled engine must
produce exactly the same results (validated + identical shared-memory
bytes), the same execution traces (instructions, block counts, branch
stats, memory events, flop/int-op/translation/call counters), and hence
the same timing-model outputs — the figures cannot move.

Also covers the engine-adjacent satellites: the compile-once/launch-many
cache counters, cap threading from runtime into traces, cap-respecting
``ExecTrace.merge``, and private-memory pooling.
"""

import warnings

import pytest

from repro.exec import (
    DEFAULT_MEM_EVENT_CAP,
    ExecTrace,
    MemEvent,
    MemEventColumns,
    PrivateMemoryPool,
    iter_mem_events,
)
from repro.runtime.system import ultrabook
from repro.workloads import all_workloads

WORKLOADS = all_workloads()
NINE = (
    "BarnesHut",
    "BFS",
    "BTree",
    "ClothPhysics",
    "ConnectedComponent",
    "FaceDetect",
    "Raytracer",
    "SkipList",
    "SSSP",
)
SCALE = 0.2


def _run(name: str, engine: str, on_cpu: bool):
    workload = WORKLOADS[name]()
    rt = workload.make_runtime(
        system=ultrabook(), engine=engine, keep_traces=True
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        state = workload.build(rt, SCALE)
        reports = workload.run(rt, state, on_cpu=on_cpu)
        workload.validate(rt, state)
    return rt, reports


def _events(trace) -> list:
    return [
        (e.instr_uid, e.seq, e.address, e.size, e.is_store)
        for e in trace.mem_events
    ]


def _assert_trace_equal(ref: ExecTrace, got: ExecTrace, where: str) -> None:
    assert got.instructions == ref.instructions, where
    assert got.block_counts == ref.block_counts, where
    assert {k: list(v) for k, v in got.branch_stats.items()} == {
        k: list(v) for k, v in ref.branch_stats.items()
    }, where
    assert got.flops == ref.flops, where
    assert got.int_ops == ref.int_ops, where
    assert got.translations == ref.translations, where
    assert got.calls == ref.calls, where
    assert got.mem_event_cap == ref.mem_event_cap, where
    assert got.mem_events_dropped == ref.mem_events_dropped, where
    assert _events(got) == _events(ref), where


@pytest.mark.parametrize("on_cpu", [False, True], ids=["gpu", "cpu"])
@pytest.mark.parametrize("name", NINE)
def test_engines_bit_identical(name, on_cpu):
    ref_rt, ref_reports = _run(name, "reference", on_cpu)
    com_rt, com_reports = _run(name, "compiled", on_cpu)

    # Same final shared-memory state: every store landed identically.
    assert bytes(com_rt.region.physical.data) == bytes(ref_rt.region.physical.data)

    # Same traces, launch by launch.
    assert len(com_rt.trace_log) == len(ref_rt.trace_log)
    for index, (ref, got) in enumerate(zip(ref_rt.trace_log, com_rt.trace_log)):
        _assert_trace_equal(ref, got, f"{name} trace {index}")

    # Timing is a pure function of the traces, so the modeled numbers —
    # and therefore every figure — are unchanged.
    assert len(com_reports) == len(ref_reports)
    for ref, got in zip(ref_reports, com_reports):
        assert got.device == ref.device
        assert got.n == ref.n
        assert got.jit_seconds == ref.jit_seconds
        assert got.report.seconds == ref.report.seconds
        assert got.report.cycles == ref.report.cycles
        assert got.report.instructions == ref.report.instructions
        assert got.report.energy_joules == ref.report.energy_joules
        assert got.report.mem_transactions == ref.report.mem_transactions
        assert got.report.translations == ref.report.translations


class TestCompileOnce:
    """gpu_function_t analogue: at most one compilation per kernel per
    runtime, however many work-items are launched."""

    def test_compilation_happens_once_per_runtime(self):
        workload = WORKLOADS["BFS"]()
        rt = workload.make_runtime(engine="compiled")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            state = workload.build(rt, SCALE)
            workload.run(rt, state, on_cpu=False)
        first = rt.code_cache.compilations
        assert first > 0
        hits_before = rt.code_cache.hits
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            state = workload.build(rt, SCALE)
            workload.run(rt, state, on_cpu=False)
        assert rt.code_cache.compilations == first  # no recompilation
        assert rt.code_cache.hits > hits_before  # launches replayed the cache

    def test_reference_engine_selectable(self):
        workload = WORKLOADS["BFS"]()
        rt = workload.make_runtime(engine="reference")
        assert rt.engine == "reference"
        assert rt.code_cache.compilations == 0
        with pytest.raises(ValueError):
            workload.make_runtime(engine="typo")


class TestCapThreading:
    """One authoritative cap, threaded runtime -> trace."""

    def test_defaults_agree(self):
        workload = WORKLOADS["BFS"]()
        rt = workload.make_runtime()
        assert rt.mem_event_cap == DEFAULT_MEM_EVENT_CAP
        assert ExecTrace().mem_event_cap == DEFAULT_MEM_EVENT_CAP
        assert rt._new_trace().mem_event_cap == DEFAULT_MEM_EVENT_CAP

    def test_runtime_cap_reaches_traces(self):
        workload = WORKLOADS["BFS"]()
        rt = workload.make_runtime()
        rt.mem_event_cap = 777
        assert rt._new_trace().mem_event_cap == 777


class TestMergeRespectsCap:
    def test_merge_appends_events_up_to_cap(self):
        a = ExecTrace(mem_event_cap=3)
        b = ExecTrace()
        for i in range(5):
            b.record_mem(MemEvent(1, i, 0x1000 + 4 * i, 4, False))
        a.merge(b)
        assert len(a.mem_events) == 3
        assert a.mem_events_dropped == 2
        assert [e.seq for e in a.mem_events] == [0, 1, 2]

    def test_merge_from_columnar(self):
        a = ExecTrace()
        b = ExecTrace(mem_events=MemEventColumns())
        b.record_mem(MemEvent(7, 0, 0x2000, 8, True))
        a.merge(b)
        assert _events_list(a) == [(7, 0, 0x2000, 8, True)]


def _events_list(trace):
    return [
        (e.instr_uid, e.seq, e.address, e.size, e.is_store)
        for e in trace.mem_events
    ]


class TestColumnarBuffer:
    def test_iteration_matches_list_representation(self):
        cols = MemEventColumns()
        cols.append_raw(3, 0, 0x100, 4, True)
        cols.append_raw(3, 1, 0x104, 4, False)
        assert len(cols) == 2
        assert [
            (e.instr_uid, e.seq, e.address, e.size, e.is_store) for e in cols
        ] == [(3, 0, 0x100, 4, True), (3, 1, 0x104, 4, False)]
        trace = ExecTrace(mem_events=cols)
        assert list(iter_mem_events(trace)) == [(3, 0, 0x100, 4), (3, 1, 0x104, 4)]


class TestCounterEquivalence:
    """The observability counters are a pure function of execution, so the
    two engines must publish identical totals for everything the traces
    and timing models derive (instructions, flops, memory events, cache
    hits...).  Only the code-cache and pool counters may differ — the
    reference interpreter never compiles and pools differently."""

    ENGINE_INDEPENDENT = ("engine.", "mem_events.", "gpu.", "cpu.")

    @pytest.mark.parametrize("name", NINE)
    def test_counters_identical_across_engines(self, name):
        from repro.obs import Observer

        totals = {}
        for engine in ("reference", "compiled"):
            observer = Observer()
            workload = WORKLOADS[name]()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                workload.execute(
                    None,
                    ultrabook(),
                    scale=0.1,
                    engine=engine,
                    observer=observer,
                )
            totals[engine] = {
                key: value
                for key, value in observer.counters.as_dict().items()
                if key.startswith(self.ENGINE_INDEPENDENT)
            }
        assert totals["reference"] == totals["compiled"], name
        assert totals["compiled"]["engine.instructions"] > 0
        assert totals["compiled"]["mem_events.kept"] > 0


class TestPrivateMemoryPool:
    def test_recycled_buffer_is_rezeroed(self):
        pool = PrivateMemoryPool(64)
        buf = pool.acquire()
        buf[10:14] = b"\xff\xff\xff\xff"
        pool.release(buf, dirty=14)
        again = pool.acquire()
        assert again is buf  # recycled, not reallocated
        assert bytes(again) == bytes(64)  # indistinguishable from fresh

    def test_foreign_buffer_rejected(self):
        pool = PrivateMemoryPool(64)
        pool.release(bytearray(32), dirty=0)
        assert pool.acquire() is not None  # fresh, wrong-size one discarded
