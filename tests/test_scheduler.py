"""Tests for the pluggable scheduler layer (repro.sched): policy
dispatch, hybrid/auto bit-identity against the paper-faithful gpu
policy, chunk-dispatch edge cases, report merging, throughput history,
and the hybrid performance bar."""

import random
import warnings

import pytest

from repro.fuzz import generate_source_program, source_sched_divergences
from repro.gpu.timing import DeviceReport
from repro.passes import OptConfig
from repro.runtime import ConcordRuntime, compile_source, ultrabook
from repro.runtime.runtime import ExecutionReport
from repro.sched import POLICIES, Scheduler, parallel_report
from repro.sched.policies import MIN_SPLIT_ITEMS
from repro.workloads import all_workloads

WORKLOADS = all_workloads()

SOURCE = """
class Incr {
public:
  int* data;
  void operator()(int i) { data[i] = data[i] + i; }
};

class SumBody {
public:
  int* data;
  int sum;
  void operator()(int i) { sum += data[i]; }
  void join(SumBody& other) { sum += other.sum; }
};
"""


def _runtime(policy="gpu", observer=None):
    return ConcordRuntime(
        compile_source(SOURCE, OptConfig.gpu_all()),
        ultrabook(),
        observer=observer,
        policy=policy,
    )


def _run_incr(rt, n, **kwargs):
    data = rt.new_array(_i32(), max(1, n))
    for i in range(n):
        data[i] = 10 * i
    body = rt.new("Incr")
    body.data = data
    report = rt.parallel_for_hetero(n, body, **kwargs)
    return data, report


class TestPolicyDispatch:
    def test_registry_has_the_four_policies(self):
        assert {"cpu", "gpu", "auto", "hybrid"} <= set(POLICIES)

    def test_unknown_policy_at_construction_raises(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            _runtime(policy="sometimes")

    def test_unknown_policy_per_call_raises(self):
        rt = _runtime()
        body = rt.new("Incr")
        body.data = rt.new_array(_i32(), 4)
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            rt.parallel_for_hetero(4, body, policy="nope")

    def test_cpu_policy_equals_on_cpu_flag(self):
        rt1 = _runtime()
        data1, r1 = _run_incr(rt1, 64, on_cpu=True)
        rt2 = _runtime(policy="cpu")
        data2, r2 = _run_incr(rt2, 64)
        assert r1.device == r2.device == "cpu"
        assert r1.seconds == r2.seconds
        assert data1.to_list() == data2.to_list()

    def test_per_call_policy_overrides_runtime_policy(self):
        rt = _runtime(policy="cpu")
        _, report = _run_incr(rt, 32, policy="gpu")
        assert report.device == "gpu"

    def test_hybrid_reports_hybrid_device(self):
        rt = _runtime(policy="hybrid")
        _, report = _run_incr(rt, 256)
        assert report.device == "hybrid"
        assert report.n == 256
        assert report.seconds > 0

    def test_counters_record_dispatch(self):
        from repro.obs import Observer

        observer = Observer()
        rt = _runtime(policy="hybrid", observer=observer)
        _run_incr(rt, 256)
        counters = observer.counters
        assert counters.get("sched.constructs") == 1
        assert counters.get("sched.policy.hybrid") == 1
        assert counters.get("sched.chunks.gpu") >= 1
        assert (
            counters.get("sched.items.gpu", 0)
            + counters.get("sched.items.cpu", 0)
            == 256
        )


def _i32():
    from repro.ir.types import I32

    return I32


class TestEdgeCases:
    @pytest.mark.parametrize("policy", ["gpu", "cpu", "auto", "hybrid"])
    def test_empty_index_space(self, policy):
        rt = _runtime(policy=policy)
        data, report = _run_incr(rt, 0)
        assert report.n == 0
        assert data.to_list() == [0]  # untouched

    @pytest.mark.parametrize("policy", ["auto", "hybrid"])
    def test_single_item(self, policy):
        rt = _runtime(policy=policy)
        data, report = _run_incr(rt, 1)
        assert data.to_list() == [0]
        assert report.seconds > 0

    def test_below_split_threshold_degrades(self):
        from repro.obs import Observer

        observer = Observer()
        rt = _runtime(policy="hybrid", observer=observer)
        n = MIN_SPLIT_ITEMS - 1
        data, report = _run_incr(rt, n)
        assert data.to_list() == [11 * i for i in range(n)]
        assert observer.counters.get("sched.degraded") == 1
        # degraded constructs run whole on a single device
        assert report.device in ("cpu", "gpu")

    def test_smaller_than_one_chunk(self):
        rt = _runtime(policy="hybrid")
        data, _ = _run_incr(rt, 7)
        assert data.to_list() == [11 * i for i in range(7)]

    def test_hybrid_reduce_matches_gpu(self):
        def reduce_once(policy):
            rt = _runtime(policy=policy)
            data = rt.new_array(_i32(), 200)
            for i in range(200):
                data[i] = i
            body = rt.new("SumBody")
            body.data = data
            body.sum = 0
            rt.parallel_reduce_hetero(200, body)
            return body.sum

        assert reduce_once("hybrid") == reduce_once("gpu") == sum(range(200))


class TestHistory:
    def test_record_and_throughput(self):
        rt = _runtime()
        sched = rt.scheduler
        assert sched.throughput("K", "gpu") is None
        sched.record("K", "gpu", 100, 2.0)
        sched.record("K", "gpu", 100, 2.0)
        assert sched.throughput("K", "gpu") == pytest.approx(50.0)
        # zero-cost / zero-item observations are ignored
        sched.record("K", "cpu", 0, 1.0)
        sched.record("K", "cpu", 10, 0.0)
        assert sched.throughput("K", "cpu") is None

    def test_gpu_share(self):
        rt = _runtime()
        sched = rt.scheduler
        assert sched.gpu_share("K") == 0.5
        sched.record("K", "gpu", 300, 1.0)
        sched.record("K", "cpu", 100, 1.0)
        assert sched.gpu_share("K") == pytest.approx(0.75)

    def test_seed_from_profile(self):
        from repro.obs import Observer, build_profile

        observer = Observer()
        workload = WORKLOADS["BFS"]()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            workload.execute(
                None, ultrabook(), scale=0.1, validate=False, observer=observer
            )
        doc = build_profile(observer)
        workload2 = WORKLOADS["BFS"]()
        rt = workload2.make_runtime(OptConfig.gpu_all(), ultrabook())
        seeded = rt.scheduler.seed_from_profile(doc)
        assert seeded > 0
        key = next(
            rt.scheduler.key_of(k) for k in rt.program.kernels.values()
        )
        assert rt.scheduler.throughput(key, "gpu") is not None


class TestReportMerging:
    def _random_report(self, rng):
        return ExecutionReport(
            device=rng.choice(["cpu", "gpu"]),
            n=rng.randrange(1, 1000),
            report=DeviceReport(
                device="gpu",
                seconds=rng.uniform(0.0, 1.0),
                energy_joules=rng.uniform(0.0, 1.0),
                cycles=rng.randrange(0, 10**6),
                instructions=rng.randrange(0, 10**6),
            ),
            jit_seconds=rng.uniform(0.0, 0.01),
        )

    def test_addition_is_associative(self):
        rng = random.Random(7)
        for _ in range(50):
            a, b, c = (self._random_report(rng) for _ in range(3))
            left = (a + b) + c
            right = a + (b + c)
            assert left.n == right.n
            assert left.device == right.device
            assert left.seconds == pytest.approx(right.seconds)
            assert left.energy_joules == pytest.approx(right.energy_joules)
            assert left.jit_seconds == pytest.approx(right.jit_seconds)

    def test_mixed_devices_merge_to_hybrid(self):
        rng = random.Random(11)
        a = self._random_report(rng)
        b = self._random_report(rng)
        a.device, b.device = "cpu", "gpu"
        assert (a + b).device == "hybrid"
        b.device = "cpu"
        assert (a + b).device == "cpu"

    def test_sum_with_zero_identity(self):
        rng = random.Random(13)
        reports = [self._random_report(rng) for _ in range(4)]
        total = sum(reports)  # starts from 0 -> exercises __radd__
        assert total.n == sum(r.n for r in reports)

    def test_fallback_reason_keeps_first_nonempty(self):
        rng = random.Random(17)
        a, b = self._random_report(rng), self._random_report(rng)
        b.fallback_reason = "restriction fallback"
        assert (a + b).fallback_reason == "restriction fallback"
        a.fallback_reason = "first"
        assert (a + b).fallback_reason == "first"

    def test_parallel_report_max_seconds_sum_energy(self):
        a = DeviceReport(device="gpu", seconds=2.0, energy_joules=1.0, cycles=20)
        b = DeviceReport(device="cpu", seconds=3.0, energy_joules=0.5, cycles=5)
        merged = parallel_report([a, b])
        assert merged.device == "hybrid"
        assert merged.seconds == 3.0
        assert merged.cycles == 20
        assert merged.energy_joules == pytest.approx(1.5)
        empty = parallel_report([None, None])
        assert empty.seconds == 0.0


def _region_bytes(name, policy, scale):
    cls = WORKLOADS[name]
    workload = cls()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        rt = cls.make_runtime(OptConfig.gpu_all(), ultrabook(), policy=policy)
        state = workload.build(rt, scale)
        reports = workload.run(rt, state, on_cpu=False)
    return bytes(rt.region.physical.data), sum(r.seconds for r in reports)


class TestHybridBitIdentity:
    """Hybrid executes chunks sequentially in global index order, so the
    final shared-region bytes must match a pure-GPU run exactly; auto
    places whole constructs, which preserves bytes as well."""

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_hybrid_and_auto_match_gpu(self, name):
        scale = 0.1
        gpu_bytes, _ = _region_bytes(name, "gpu", scale)
        hybrid_bytes, _ = _region_bytes(name, "hybrid", scale)
        auto_bytes, _ = _region_bytes(name, "auto", scale)
        assert hybrid_bytes == gpu_bytes
        assert auto_bytes == gpu_bytes


class TestHybridPerformance:
    """The acceptance bar: hybrid no slower than the best single device
    on BFS and Raytracer at smoke scale."""

    @pytest.mark.parametrize("name", ["BFS", "Raytracer"])
    def test_hybrid_not_slower_than_best_single(self, name):
        scale = 0.2
        _, gpu_seconds = _region_bytes(name, "gpu", scale)
        _, cpu_seconds = _region_bytes(name, "cpu", scale)
        _, hybrid_seconds = _region_bytes(name, "hybrid", scale)
        best = min(gpu_seconds, cpu_seconds)
        assert hybrid_seconds <= best * (1.0 + 1e-9)


class TestFuzzOracleHook:
    def test_sched_oracle_clean_on_generated_programs(self):
        for seed in range(3):
            rng = random.Random(seed)
            program = generate_source_program(rng, seed=seed)
            assert source_sched_divergences(program) == []

    def test_sched_target_registered(self):
        from repro.fuzz import TARGETS, FuzzDriver

        assert "sched" in TARGETS
        report = FuzzDriver(seed=1, iterations=3, target="sched").run()
        assert report.ok
