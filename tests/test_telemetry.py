"""Tests for the streaming telemetry pipeline (repro.obs.telemetry), the
flight recorder (repro.obs.flight), declared-set runtime validation
(ConcordRuntime(declared_check=...)), and the ledger regression watch
(repro.obs.watch): ring drop accounting, stream-vs-registry equivalence
on the nine workloads under both engines, trap-site resolution down to
the source line, and trend-gate behavior on synthetic histories."""

import json
import warnings

import pytest

from repro.ir.types import I32
from repro.obs import (
    AggregatorSink,
    FlightRecorder,
    JsonLinesSink,
    MetricsTextSink,
    Observer,
    Telemetry,
    TelemetrySchemaError,
    build_watch_report,
    flight_guard,
    render_watch_report,
    validate_event,
    validate_events,
    validate_flight_bundle,
    validate_watch_report,
)
from repro.obs.telemetry import EventRing
from repro.obs.watch import WatchSchemaError, analyze_series
from repro.passes import OptConfig
from repro.runtime import ConcordRuntime, compile_source, ultrabook
from repro.runtime.graph import DeclaredSetViolation
from repro.workloads import all_workloads

WORKLOADS = all_workloads()

INCR_SRC = """
class Incr {
public:
  int* data;
  void operator()(int i) { data[i] = data[i] + i; }
};
"""

TRAP_SRC = """
class Node {
public:
  int value;
  Node *next;
};

class Deref {
public:
  Node *head;
  void operator()(int i) {
    head->value = i;
  }
};
"""


class ListSink:
    """Test sink: keeps every event verbatim."""

    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


def _compile(source):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return compile_source(source, OptConfig.gpu_all())


def _incr_runtime(**kwargs):
    rt = ConcordRuntime(_compile(INCR_SRC), ultrabook(), **kwargs)
    arr = rt.new_array(I32, 16)
    body = rt.new("Incr")
    body.data = arr
    return rt, arr, body


# -- the ring ---------------------------------------------------------------


class TestEventRing:
    def test_bounded_with_drop_accounting(self):
        """Satellite regression test: overflowing the ring evicts oldest
        events and surfaces every eviction in ``obs.events_dropped``."""
        observer = Observer()
        telemetry = Telemetry(ring_capacity=4)
        observer.attach_telemetry(telemetry)
        for i in range(10):
            telemetry.emit("sched", f"e{i}")
        ring = telemetry.ring
        assert len(ring) == 4
        assert ring.dropped == 6
        assert observer.counters.get("obs.events_dropped") == 6
        assert [e["name"] for e in ring.snapshot()] == ["e6", "e7", "e8", "e9"]

    def test_eviction_does_not_recurse_into_the_stream(self):
        """The drop counter is written directly into the registry dict:
        no counter *event* may be emitted for it, or an overflowing ring
        would emit itself into further overflow forever."""
        observer = Observer()
        sink = ListSink()
        telemetry = Telemetry(sinks=[sink], ring_capacity=2)
        observer.attach_telemetry(telemetry)
        for i in range(50):
            telemetry.emit("sched", f"e{i}")
        assert observer.counters.get("obs.events_dropped") == 48
        assert all(e["name"] != "obs.events_dropped" for e in sink.events)
        assert len(sink.events) == 50  # sinks are lossless

    def test_counter_adds_land_in_ring_and_registry(self):
        observer = Observer()
        telemetry = Telemetry(ring_capacity=3)
        observer.attach_telemetry(telemetry)
        for _ in range(5):
            observer.counters.add("x.hits", 2)
        assert observer.counters.get("x.hits") == 10
        events = telemetry.ring.snapshot()
        assert len(events) == 3
        assert all(e["kind"] == "counter" and e["delta"] == 2 for e in events)
        assert observer.counters.get("obs.events_dropped") == 2

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            EventRing(0)

    def test_detach_restores_silence(self):
        observer = Observer()
        telemetry = Telemetry()
        observer.attach_telemetry(telemetry)
        observer.counters.add("a")
        observer.detach_telemetry()
        observer.counters.add("a")
        assert observer.counters.get("a") == 2
        counter_events = [
            e for e in telemetry.ring.snapshot() if e["kind"] == "counter"
        ]
        assert len(counter_events) == 1
        assert observer.telemetry is None
        assert observer.counters._sink is None


# -- the pipeline and sinks -------------------------------------------------


class TestTelemetryPipeline:
    def test_event_shape_and_monotone_seq(self):
        telemetry = Telemetry()
        a = telemetry.emit("span_open", "compile", category="compiler")
        b = telemetry.emit("span_close", "compile", category="compiler",
                           wall_seconds=0.5)
        assert a["seq"] == 0 and b["seq"] == 1
        assert a["kind"] == "span_open" and a["name"] == "compile"
        assert b["wall_seconds"] == 0.5
        assert b["t"] >= a["t"] >= 0.0
        validate_events([a, b])

    def test_span_edges_stream_through_observer(self):
        observer = Observer()
        sink = ListSink()
        observer.attach_telemetry(Telemetry(sinks=[sink]))
        with observer.span("outer", "test"):
            with observer.span("inner", "test"):
                pass
        kinds = [(e["kind"], e["name"]) for e in sink.events
                 if e["kind"].startswith("span")]
        assert kinds == [
            ("span_open", "outer"),
            ("span_open", "inner"),
            ("span_close", "inner"),
            ("span_close", "outer"),
        ]
        closes = [e for e in sink.events if e["kind"] == "span_close"]
        assert all(e["wall_seconds"] >= 0.0 for e in closes)

    def test_jsonlines_sink_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonLinesSink(path)
        telemetry = Telemetry(sinks=[sink])
        telemetry.emit("launch", "k", device="gpu", n=8, seconds=1e-3)
        telemetry.emit("counter", "engine.instructions", delta=42)
        telemetry.close()
        lines = path.read_text().splitlines()
        assert sink.events_written == 2 and len(lines) == 2
        events = [json.loads(line) for line in lines]
        validate_events(events)
        assert events[0]["device"] == "gpu"
        assert events[1]["delta"] == 42

    def test_metrics_text_sink_snapshot(self, tmp_path):
        path = tmp_path / "metrics.prom"
        sink = MetricsTextSink(path)
        telemetry = Telemetry(sinks=[sink])
        telemetry.emit("counter", "gpu.l3.hits", delta=3)
        telemetry.emit("counter", "gpu.l3.hits", delta=4)
        telemetry.emit("launch", "k", device="gpu", n=8, seconds=1e-3)
        telemetry.flush()
        text = path.read_text()
        assert "repro_gpu_l3_hits 7" in text
        assert "repro_events_launch 1" in text
        assert "# TYPE repro_gpu_l3_hits counter" in text
        # a second flush replaces, never appends
        telemetry.emit("counter", "gpu.l3.hits", delta=1)
        telemetry.close()
        assert "repro_gpu_l3_hits 8" in path.read_text()

    def test_aggregator_rollups(self):
        agg = AggregatorSink()
        telemetry = Telemetry(sinks=[agg])
        telemetry.emit("span_open", "launch")
        telemetry.emit("span_close", "launch", wall_seconds=0.25)
        telemetry.emit("launch", "k", device="gpu", n=8, seconds=2.0)
        telemetry.emit("launch", "k", device="gpu", n=8, seconds=1.0)
        telemetry.emit("counter", "c", delta=5)
        doc = agg.as_dict()
        assert doc["events_seen"] == 5
        assert doc["spans"]["launch"] == {"count": 1, "wall_seconds": 0.25}
        assert doc["launches"]["k@gpu"] == {
            "count": 2, "items": 16, "sim_seconds": 3.0,
        }
        assert doc["counter_totals"] == {"c": 5}

    def test_validate_event_rejects_malformed(self):
        with pytest.raises(TelemetrySchemaError):
            validate_event({"seq": 0, "t": 0.0, "kind": "nope", "name": "x"})
        with pytest.raises(TelemetrySchemaError):
            validate_event({"seq": 0, "t": 0.0, "kind": "counter", "name": "x"})
        with pytest.raises(TelemetrySchemaError):
            validate_event({"t": 0.0, "kind": "sched", "name": "x"})
        with pytest.raises(TelemetrySchemaError):
            validate_events([
                {"seq": 1, "t": 0.0, "kind": "sched", "name": "a"},
                {"seq": 1, "t": 0.0, "kind": "sched", "name": "b"},
            ])
        # gaps are fine: a ring snapshot is a suffix of the stream
        validate_events([
            {"seq": 3, "t": 0.0, "kind": "sched", "name": "a"},
            {"seq": 9, "t": 0.1, "kind": "sched", "name": "b"},
        ])


# -- stream/registry equivalence on the real workloads ----------------------


def _stream_matches_registry(name, engine, **execute_kwargs):
    observer = Observer()
    agg = AggregatorSink()
    observer.attach_telemetry(Telemetry(sinks=[agg]))
    workload = WORKLOADS[name]()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        workload.execute(
            None, ultrabook(), scale=0.05, observer=observer,
            engine=engine, **execute_kwargs,
        )
    counters = observer.counters.as_dict()
    # ring-eviction bookkeeping is *about* the stream, never in it
    counters.pop("obs.events_dropped", None)
    assert agg.counter_totals == counters
    assert agg.kinds.get("launch", 0) == len(observer.constructs)
    return observer, agg


class TestStreamMatchesRegistry:
    """Satellite property test: replaying the counter events alone must
    reconstruct the registry exactly — same names, same totals — for
    every workload, on both engines, through the task graph."""

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_compiled_graph_and_declared_check(self, name):
        # graph=True + declared_check="trap" doubles as the nine-workload
        # declared-set cleanliness check: conservative futures validate
        # against the whole region and must never fire.
        _stream_matches_registry(
            name, "compiled", graph=True, declared_check="trap"
        )

    @pytest.mark.parametrize("name", ["BFS", "ClothPhysics", "SkipList"])
    def test_vector_engine(self, name):
        _stream_matches_registry(name, "vector")

    def test_hybrid_chunks_emit_sched_events(self):
        observer = Observer()
        sink = ListSink()
        agg = AggregatorSink()
        observer.attach_telemetry(Telemetry(sinks=[sink, agg]))
        workload = WORKLOADS["BFS"]()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            workload.execute(
                None, ultrabook(), scale=0.05, observer=observer,
                policy="hybrid",
            )
        chunks = [e for e in sink.events
                  if e["kind"] == "sched" and e.get("decision") == "chunk"]
        assert chunks, "hybrid split dispatched no chunk events"
        # at smoke scale the split may place every chunk on one device;
        # the contract here is that each dispatch is visible and typed
        assert {c["device"] for c in chunks} <= {"cpu", "gpu"}
        assert all(c["items"] > 0 and c["lo"] >= 0 for c in chunks)
        counters = observer.counters.as_dict()
        counters.pop("obs.events_dropped", None)
        assert agg.counter_totals == counters


class TestTelemetryDoesNotPerturb:
    """Zero-overhead-by-default extends to the stream: neither an
    observer alone nor an attached pipeline may change any simulated
    number (the PR 2 contract, re-asserted one layer up)."""

    @pytest.mark.parametrize("name", ["BFS", "ClothPhysics"])
    def test_same_simulated_seconds(self, name):
        def attached():
            observer = Observer()
            observer.attach_telemetry(Telemetry(sinks=[AggregatorSink()]))
            return observer

        results = []
        for make in (lambda: None, Observer, attached):
            workload = WORKLOADS[name]()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                outcome = workload.execute(
                    None, ultrabook(), scale=0.1, observer=make()
                )
            results.append((outcome.seconds, outcome.energy_joules))
        assert results[0] == results[1] == results[2]

    def test_detached_registry_has_no_sink(self):
        rt, _, _ = _incr_runtime()
        assert rt.obs is None  # no observer: nothing to stream from


# -- flight recorder --------------------------------------------------------


class TestFlightRecorder:
    def _trap(self, rt, body):
        from repro.exec import ExecutionError
        from repro.svm import MemoryFault

        with pytest.raises((MemoryFault, ExecutionError)) as info:
            rt.parallel_for_hetero(4, body)
        return info.value

    def test_bundle_pinpoints_kernel_and_source_line(self, tmp_path):
        observer = Observer()
        observer.attach_telemetry(Telemetry())
        rt = ConcordRuntime(_compile(TRAP_SRC), ultrabook(), observer=observer)
        body = rt.new("Deref")  # head stays null: the store must fault
        exc = self._trap(rt, body)
        recorder = FlightRecorder(tmp_path, observer=observer)
        path = recorder.record(exc, runtime=rt, context={"test": "trap"})
        doc = json.loads(open(path).read())
        validate_flight_bundle(doc)
        assert doc["reason"] == "trap"
        trap = doc["trap"]
        assert trap["kernel"] == "kernel.Deref.gpu"
        assert trap["device"] == "gpu"
        assert trap["global_id"] == 0
        assert trap["source_line"] == "head->value = i;"
        assert trap["line"] is not None
        assert doc["events"], "ring snapshot missing from bundle"
        validate_events(doc["events"])
        assert doc["events"][-1]["kind"] == "trap"
        assert doc["counters"]
        assert doc["context"] == {"test": "trap"}

    def test_reference_engine_trap_annotates_too(self, tmp_path):
        observer = Observer()
        observer.attach_telemetry(Telemetry())
        rt = ConcordRuntime(
            _compile(TRAP_SRC), ultrabook(),
            engine="reference", observer=observer,
        )
        exc = self._trap(rt, rt.new("Deref"))
        path = FlightRecorder(tmp_path, observer=observer).record(exc)
        doc = json.loads(open(path).read())
        validate_flight_bundle(doc)
        assert doc["trap"]["kernel"] == "kernel.Deref.gpu"
        assert doc["trap"]["source_line"] == "head->value = i;"

    def test_flight_guard_stamps_bundle_path(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        with pytest.raises(RuntimeError) as info:
            with flight_guard(recorder, context={"step": 1}):
                raise RuntimeError("boom")
        doc = json.loads(open(info.value.flight_bundle).read())
        validate_flight_bundle(doc)
        assert doc["reason"] == "exception"
        assert doc["exception"]["type"] == "RuntimeError"
        assert doc["context"] == {"step": 1}
        # a None recorder guards nothing and records nothing
        with pytest.raises(RuntimeError):
            with flight_guard(None):
                raise RuntimeError("unrecorded")

    def test_bundles_number_sequentially(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        first = recorder.record(reason="manual")
        second = recorder.record(reason="manual")
        assert first.endswith("flight-000.json")
        assert second.endswith("flight-001.json")
        # a fresh recorder over the same directory does not clobber
        third = FlightRecorder(tmp_path).record(reason="manual")
        assert third.endswith("flight-002.json")

    def test_record_without_observer(self, tmp_path):
        path = FlightRecorder(tmp_path).record(ValueError("plain"))
        doc = json.loads(open(path).read())
        validate_flight_bundle(doc)
        assert doc["reason"] == "exception"
        assert doc["events"] == [] and doc["counters"] == {}


# -- declared-set runtime validation ----------------------------------------


class TestDeclaredCheck:
    def test_trap_on_access_outside_declaration(self):
        observer = Observer()
        agg = AggregatorSink()
        observer.attach_telemetry(Telemetry(sinks=[agg]))
        rt, arr, body = _incr_runtime(
            observer=observer, declared_check="trap"
        )
        half = (arr.addr, 8 * I32.size())
        future = rt.submit(16, body, reads=[half], writes=[half])
        with pytest.raises(DeclaredSetViolation) as info:
            future.result()
        assert info.value.trap_kernel == "kernel.Incr.gpu"
        assert info.value.trap_violations
        assert observer.counters.get("graph.declared_violations") > 0
        assert agg.kinds.get("violation", 0) > 0

    def test_warn_mode_reports_and_continues(self):
        rt, arr, body = _incr_runtime(declared_check="warn")
        half = (arr.addr, 8 * I32.size())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = rt.submit(16, body, reads=[half], writes=[half]).result()
        messages = [str(w.message) for w in caught]
        assert any("outside its declared sets" in m for m in messages)
        assert report is not None
        assert arr[3] == 3  # the construct still ran to completion

    def test_exact_declaration_is_clean(self):
        rt, arr, body = _incr_runtime(declared_check="trap")
        rt.submit(16, body, reads=[arr], writes=[arr]).result()
        assert [arr[i] for i in range(16)] == list(range(16))

    def test_conservative_submission_is_clean(self):
        # omitted sets mean whole-region access: trivially satisfied
        rt, arr, body = _incr_runtime(declared_check="trap")
        rt.submit(16, body).result()
        assert arr[7] == 7

    def test_off_mode_never_validates(self):
        rt, arr, body = _incr_runtime(declared_check="off")
        half = (arr.addr, 8 * I32.size())
        rt.submit(16, body, reads=[half], writes=[half]).result()
        assert arr[15] == 15

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            _incr_runtime(declared_check="loud")

    def test_fuzz_generated_program_with_narrowed_declaration(self):
        """Satellite fuzz case: a generated source program submitted with
        a deliberately wrong (too narrow) declared set must fire the
        validator — the graph oracle's DAG plans rely on declarations
        being honest, and this is the mechanism that makes lies
        detectable."""
        import random

        from repro.fuzz import generate_source_program

        program = generate_source_program(
            random.Random(7), seed=7, force={"construct": "for"}
        )
        compiled = _compile(program.source)
        rt = ConcordRuntime(compiled, ultrabook(), declared_check="trap")
        data = rt.new_array(I32, program.n)
        data.fill_from(program.data)
        aux = rt.new_array(I32, program.aux_len)
        aux.fill_from(program.aux)

        def make_body():
            body = rt.new(program.class_name)
            body.data = data
            body.aux = aux
            body.s0 = program.s0
            body.s1 = program.s1
            extras = []
            if program.uses_floats:
                from repro.ir.types import F32

                fdata = rt.new_array(F32, program.n)
                fdata.fill_from(program.fdata)
                body.fdata = fdata
                extras.append(fdata)
            if program.uses_virtual:
                obj = rt.new(program.virtual_class)
                obj.salt = program.salt
                body.obj = obj
                extras.append(obj)
            return body, extras

        # the honest declaration passes cleanly ...
        honest, extras = make_body()
        spans = [data, aux] + extras
        rt.submit(
            program.n, honest, reads=list(spans), writes=spans + [honest]
        ).result()
        # ... but shrinking every span to one byte puts any real array
        # access outside the declaration
        body, _ = make_body()
        with pytest.raises(DeclaredSetViolation):
            rt.submit(
                program.n,
                body,
                reads=[(data.addr, 1), (aux.addr, 1)],
                writes=[(data.addr, 1), (aux.addr, 1)],
            ).result()


# -- the regression watch ---------------------------------------------------


def _write_history(directory, series):
    """``series``: {(workload, config): [v0, v1, ...]} -> BENCH_<n>.json
    files; all lists must share a length."""
    length = len(next(iter(series.values())))
    for n in range(length):
        rows = [
            {"workload": w, "config": c, "norm_instr_per_s": values[n]}
            for (w, c), values in series.items()
        ]
        (directory / f"BENCH_{n}.json").write_text(
            json.dumps({"results": rows})
        )


class TestWatch:
    def test_slow_multi_pr_drift_is_caught(self, tmp_path):
        # two consecutive ~9% losses pass any single-step 15% gate but
        # cost 17% overall — the trend gate must fire
        _write_history(tmp_path, {("W", "GPU"): [100.0, 100.0, 100.0, 91.0, 83.0]})
        doc = build_watch_report(str(tmp_path), threshold=0.15)
        validate_watch_report(doc)
        series = doc["series"][0]
        assert series["regressed"]
        assert series["drift"] == pytest.approx(-0.17)
        assert not doc["verdict"]["ok"]
        assert doc["verdict"]["regressed"][0]["workload"] == "W"

    def test_change_point_names_the_entry_to_bisect_from(self, tmp_path):
        _write_history(
            tmp_path, {("W", "GPU"): [100.0, 100.0, 100.0, 70.0, 70.0, 70.0]}
        )
        doc = build_watch_report(str(tmp_path), threshold=0.15)
        series = doc["series"][0]
        assert series["regressed"]
        # the best window is BENCH_0..2; its end is the change point
        assert series["best_entry"] == 2

    def test_historical_noise_does_not_poison_the_baseline(self, tmp_path):
        # one anomalously *fast* old entry must not set an unreachable
        # best, and one slow old entry must not fire the gate
        _write_history(
            tmp_path,
            {
                ("Fast", "GPU"): [100.0, 300.0, 100.0, 100.0, 100.0],
                ("Slow", "GPU"): [100.0, 30.0, 100.0, 100.0, 100.0],
            },
        )
        doc = build_watch_report(str(tmp_path), threshold=0.15)
        for series in doc["series"]:
            assert not series["regressed"], series
        assert doc["verdict"]["ok"]

    def test_fresh_regression_is_judged_raw(self, tmp_path):
        # the newest point is the entry under judgment: no median may
        # soften it (this is what bench --check gates on)
        _write_history(tmp_path, {("W", "GPU"): [100.0, 100.0, 100.0, 60.0]})
        doc = build_watch_report(str(tmp_path), threshold=0.15)
        assert doc["series"][0]["drift"] == pytest.approx(-0.40)
        assert not doc["verdict"]["ok"]

    def test_graph_rows_carry_no_trend_signal(self, tmp_path):
        _write_history(
            tmp_path,
            {("W", "GPU"): [100.0, 100.0], ("W", "GRAPH"): [0.0, 0.0]},
        )
        doc = build_watch_report(str(tmp_path))
        assert [s["config"] for s in doc["series"]] == ["GPU"]

    def test_empty_directory_is_ok(self, tmp_path):
        doc = build_watch_report(str(tmp_path))
        validate_watch_report(doc)
        assert doc["verdict"]["ok"] and doc["verdict"]["series"] == 0

    def test_short_history_never_self_regresses(self):
        assert not analyze_series([(0, 100.0)])["regressed"]
        assert analyze_series([(0, 100.0)])["drift"] == 0.0

    def test_render_names_verdict(self, tmp_path):
        _write_history(tmp_path, {("W", "GPU"): [100.0, 50.0]})
        doc = build_watch_report(str(tmp_path), threshold=0.15)
        text = render_watch_report(doc)
        assert "verdict: REGRESSED" in text
        assert "<< regressed since BENCH_0" in text

    def test_validator_rejects_malformed(self):
        with pytest.raises(WatchSchemaError):
            validate_watch_report({"schema": "nope"})

    def test_committed_ledger_history_is_healthy(self):
        """The repo's own BENCH_* history must pass its own gate — this
        is exactly what CI's `repro watch --check` runs."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        doc = build_watch_report(str(root))
        validate_watch_report(doc)
        assert doc["verdict"]["entries"] >= 1
        assert doc["verdict"]["ok"], render_watch_report(doc)


# -- fuzz campaign integration ----------------------------------------------


class TestFuzzFlight:
    def test_divergence_writes_flight_bundle(self, tmp_path, monkeypatch):
        from repro.fuzz.driver import FuzzDriver

        observer = Observer()
        observer.attach_telemetry(Telemetry())
        recorder = FlightRecorder(tmp_path / "flight", observer=observer)
        driver = FuzzDriver(
            seed=1, iterations=1, target="engines",
            corpus_dir=tmp_path / "corpus", observer=observer,
            reduce=False, flight_recorder=recorder,
        )

        class FakeProgram:
            def to_dict(self):
                return {"fake": True}

        monkeypatch.setattr(
            driver, "run_iteration",
            lambda i: (["outputs differ"], "source", FakeProgram(),
                       "engines", None),
        )
        report = driver.run()
        assert not report.ok
        assert len(report.flight_bundles) == 1
        doc = json.loads(open(report.flight_bundles[0]).read())
        validate_flight_bundle(doc)
        assert doc["reason"] == "fuzz_divergence"
        assert doc["context"]["target"] == "engines"
        assert doc["context"]["reproducer"] == str(report.corpus_files[0])

    def test_clean_campaign_writes_no_bundles(self, tmp_path):
        from repro.fuzz.driver import FuzzDriver

        recorder = FlightRecorder(tmp_path)
        driver = FuzzDriver(
            seed=0, iterations=2, target="engines",
            reduce=False, flight_recorder=recorder,
        )
        report = driver.run()
        assert report.ok
        assert report.flight_bundles == []
        assert recorder.bundles == []


# -- command line -----------------------------------------------------------


class TestTelemetryCLI:
    def test_run_flight_record_on_trap(self, tmp_path, capsys):
        from repro.__main__ import main

        source = tmp_path / "trapper.cpp"
        source.write_text(TRAP_SRC)
        flight = tmp_path / "flight"
        code = main([
            "run", str(source), "--body", "Deref", "--n", "4",
            "--flight-record", str(flight),
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "flight bundle:" in err
        bundles = sorted(flight.glob("flight-*.json"))
        assert len(bundles) == 1
        doc = json.loads(bundles[0].read_text())
        validate_flight_bundle(doc)
        assert doc["trap"]["source_line"] == "head->value = i;"
        assert doc["context"]["command"] == "run"

    def test_run_declared_check_flag_rejects_bad_value(self, tmp_path):
        from repro.__main__ import main

        source = tmp_path / "incr.cpp"
        source.write_text(INCR_SRC)
        with pytest.raises(SystemExit):
            main([
                "run", str(source), "--body", "Incr",
                "--declared-check", "loud",
            ])

    def test_profile_streams_events(self, tmp_path, capsys):
        from repro.__main__ import main

        events = tmp_path / "events.jsonl"
        out = tmp_path / "profile.json"
        code = main([
            "profile", "bfs", "--scale", "0.05",
            "--events", str(events), "--output", str(out),
        ])
        assert code == 0
        streamed = [json.loads(line) for line in events.read_text().splitlines()]
        assert streamed, "no events streamed"
        validate_events(streamed)
        kinds = {e["kind"] for e in streamed}
        assert {"span_open", "span_close", "counter", "launch"} <= kinds

    def test_watch_cli_text_and_check(self, tmp_path, capsys):
        from repro.__main__ import main

        _write_history(tmp_path, {("W", "GPU"): [100.0, 100.0, 100.0, 50.0]})
        code = main(["watch", "--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0  # without --check a regression still exits 0
        assert "verdict: REGRESSED" in out
        assert main(["watch", "--dir", str(tmp_path), "--check"]) == 1

    def test_watch_cli_json_output(self, tmp_path, capsys):
        from repro.__main__ import main

        _write_history(tmp_path, {("W", "GPU"): [100.0, 101.0]})
        report = tmp_path / "watch.json"
        code = main([
            "watch", "--dir", str(tmp_path), "--format", "json",
            "--output", str(report), "--check",
        ])
        assert code == 0
        doc = json.loads(report.read_text())
        validate_watch_report(doc)
        assert doc["verdict"]["ok"]
