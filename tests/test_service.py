"""The compile service: artifact store, daemon, and load generator.

``docs/SERVICE.md`` promises three things this file holds the code to:
the store never trusts a damaged artifact (corruption and truncation
fall back to a recompile, counted under ``service.cache_corrupt``),
concurrent writers — including two separate processes — race benignly
on one store, and a warm daemon request for an identical
(source, options) pair skips the frontend, the pipeline and the closure
emission entirely (asserted via the ``service.*`` stage-hit counters).
"""

import json
import os
import subprocess
import sys
import tempfile
import threading
import warnings

import pytest

from repro.obs import Observer
from repro.obs.ledger import measure_compile, validate_ledger
from repro.obs.telemetry import AggregatorSink
from repro.obs.watch import build_series
from repro.runtime.compiler import (
    compile_cached,
    frontend_key,
    pipeline_key,
    program_key,
)
from repro.service import (
    ArtifactStore,
    ServiceClient,
    generate_sources,
    run_load,
    serve,
    validate_report,
)
from repro.workloads import all_workloads

SOURCE = """
class Counter {
public:
    int* data;
    void operator()(int i) { data[i] = data[i] + 7; }
};
"""


def _compile_into(store, source=SOURCE, observer=None):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return compile_cached(source, store=store, observer=observer)


def _artifact_paths(store):
    found = []
    for dirpath, _dirs, names in os.walk(store.root):
        found.extend(
            os.path.join(dirpath, n) for n in names if n.endswith(".art")
        )
    return sorted(found)


class TestArtifactStore:
    def test_roundtrip_counts_hits_and_misses(self):
        observer = Observer()
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root, counters=observer.counters)
            assert store.get("frontend", "ab" * 32) is None
            store.put("frontend", "ab" * 32, {"payload": 1})
            assert store.get("frontend", "ab" * 32) == {"payload": 1}
        counters = observer.counters.as_dict()
        assert counters["service.store_misses"] == 1
        assert counters["service.store_hits"] == 1
        assert counters["service.store_puts"] == 1
        assert store.stats()["hits"] == 1

    def test_rejects_non_hex_keys(self):
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root)
            with pytest.raises(ValueError):
                store.get("frontend", "../../etc/passwd")
            with pytest.raises(ValueError):
                store.put("frontend", "", {})

    @pytest.mark.parametrize(
        "damage",
        ["truncate_header", "truncate_payload", "flip_byte", "garbage"],
    )
    def test_corrupt_artifact_counts_and_recompiles(self, damage):
        """Every flavor of damage must read as a miss, bump
        ``service.cache_corrupt``, delete the file, and leave
        ``compile_cached`` to recompile and repopulate."""
        observer = Observer()
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root, counters=observer.counters)
            _program, stages = _compile_into(store)
            assert set(stages.values()) == {"miss"}
            [path] = [
                p for p in _artifact_paths(store) if os.sep + "closure" + os.sep in p
            ]
            blob = open(path, "rb").read()
            if damage == "truncate_header":
                blob = blob[:10]
            elif damage == "truncate_payload":
                blob = blob[: len(blob) // 2]
            elif damage == "flip_byte":
                middle = len(blob) // 2
                blob = blob[:middle] + bytes([blob[middle] ^ 0xFF]) + blob[middle + 1:]
            else:
                blob = b"not an artifact at all"
            with open(path, "wb") as handle:
                handle.write(blob)

            program, stages = _compile_into(store, observer=observer)
            # frontend + pipeline artifacts are intact, only the closure
            # was damaged: the staged path resumes from the deepest
            # healthy artifact.
            assert stages == {
                "frontend": "hit", "pipeline": "hit", "closure": "miss"
            }
            assert not os.path.exists(path) or open(path, "rb").read() != blob
            assert observer.counters.get("service.cache_corrupt") == 1
            assert program.kernels  # the recompile is a real program
            # ... and the store healed: fully warm on the next request.
            _again, stages = _compile_into(store)
            assert set(stages.values()) == {"hit"}

    def test_incompatible_pickle_is_corrupt_not_fatal(self):
        """A digest-valid artifact that does not unpickle (written by an
        incompatible code version) is discarded, not raised."""
        import hashlib
        import pickle

        from repro.service.store import STORE_MAGIC

        observer = Observer()
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root, counters=observer.counters)
            payload = pickle.dumps(object())[:-1]  # valid-ish, truncated opcode
            blob = STORE_MAGIC + hashlib.sha256(payload).digest() + payload
            path = store._path("frontend", "cd" * 32)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "wb") as handle:
                handle.write(blob)
            assert store.get("frontend", "cd" * 32) is None
            assert observer.counters.get("service.cache_corrupt") == 1
            assert not os.path.exists(path)

    def test_eviction_under_tiny_byte_budget(self):
        """A byte budget far below one artifact's size forces the store
        to evict oldest-first after every put — it may hold at most the
        newest artifact and must count every eviction."""
        observer = Observer()
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(
                root, byte_budget=1024, counters=observer.counters
            )
            _compile_into(store)  # 3 puts, each larger than the budget
            leftover = _artifact_paths(store)
            total = sum(os.path.getsize(p) for p in leftover)
            assert store.evictions >= 2
            assert observer.counters.get("service.store_evictions") >= 2
            assert len(leftover) <= 1
            # The next request recompiles (evicted != corrupt) ...
            _program, stages = _compile_into(store)
            assert "miss" in stages.values()
            assert observer.counters.get("service.cache_corrupt", 0) == 0

    def test_eviction_is_lru_by_access(self):
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root)
            store.put("frontend", "aa" * 32, b"x" * 100)
            store.put("frontend", "bb" * 32, b"y" * 100)
            # Touch the older artifact so the newer one becomes LRU.
            older, newer = store._path("frontend", "aa" * 32), store._path(
                "frontend", "bb" * 32
            )
            os.utime(older, (1, 1))
            os.utime(newer, (2, 2))
            assert store.get("frontend", "aa" * 32) is not None  # re-stamps mtime
            store.byte_budget = os.path.getsize(older) + 10
            store._evict_to_budget()
            assert os.path.exists(older)
            assert not os.path.exists(newer)

    def test_concurrent_writers_two_processes(self):
        """Two separate processes compiling the same source into one
        store must both succeed, leave exactly one healthy artifact per
        stage, and serve a fully warm third compile."""
        with tempfile.TemporaryDirectory() as root:
            script = (
                "import sys, warnings\n"
                "from repro.runtime.compiler import compile_cached\n"
                "from repro.service import ArtifactStore\n"
                "source = open(sys.argv[2]).read()\n"
                "with warnings.catch_warnings():\n"
                "    warnings.simplefilter('ignore')\n"
                "    program, stages = compile_cached(\n"
                "        source, store=ArtifactStore(sys.argv[1]))\n"
                "print(program.program_id)\n"
            )
            src_path = os.path.join(root, "input.cpp")
            with open(src_path, "w") as handle:
                handle.write(SOURCE)
            env = dict(os.environ)
            env["PYTHONPATH"] = (
                os.path.join(os.path.dirname(__file__), "..", "src")
                + os.pathsep
                + env.get("PYTHONPATH", "")
            )
            store_dir = os.path.join(root, "store")
            procs = [
                subprocess.Popen(
                    [sys.executable, "-c", script, store_dir, src_path],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    env=env,
                    text=True,
                )
                for _ in range(2)
            ]
            ids = []
            for proc in procs:
                out, err = proc.communicate(timeout=120)
                assert proc.returncode == 0, err
                ids.append(out.strip())
            # Content addressing: both processes computed the same id.
            assert len(set(ids)) == 1
            store = ArtifactStore(store_dir)
            # No torn/tmp files left behind by the racing writers.
            stray = [
                name
                for _dir, _sub, names in os.walk(store_dir)
                for name in names
                if not name.endswith(".art")
            ]
            assert stray == []
            program, stages = _compile_into(store)
            assert set(stages.values()) == {"hit"}
            assert program.program_id == ids[0]


class TestAggregatorPercentiles:
    def _close(self, sink, name, seconds):
        sink.emit({
            "kind": "span_close", "name": name, "wall_seconds": seconds
        })

    def test_percentiles_over_samples(self):
        sink = AggregatorSink(span_samples=100)
        for ms in range(1, 101):
            self._close(sink, "service_request", ms / 1000.0)
        got = sink.percentiles("service_request", (50, 99))
        assert got["p50"] == pytest.approx(0.051)
        assert got["p99"] == pytest.approx(0.1)

    def test_reservoir_is_bounded(self):
        sink = AggregatorSink(span_samples=8)
        for _ in range(100):
            self._close(sink, "service_request", 1.0)
        self._close(sink, "service_request", 9.0)
        assert len(sink._samples["service_request"]) == 8
        assert sink.percentiles("service_request")["p99"] == 9.0

    def test_off_by_default(self):
        sink = AggregatorSink()
        self._close(sink, "service_request", 1.0)
        assert sink.percentiles("service_request") == {}
        # The rollup still aggregates as before.
        assert sink.spans["service_request"] == [1, 1.0]


@pytest.fixture(scope="module")
def daemon():
    """One live daemon (ephemeral port, temp store) shared by the HTTP
    tests; requests hit it over real sockets."""
    with tempfile.TemporaryDirectory() as root:
        server, service = serve(root, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield ServiceClient(host, port), service
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


class TestDaemon:
    def test_health(self, daemon):
        client, _service = daemon
        assert client.health() == {"ok": True}

    def test_warm_compile_skips_every_stage(self, daemon):
        client, service = daemon
        source = SOURCE.replace("7", "11")
        cold = client.compile(source=source, config="GPU+ALL")
        assert cold["ok"], cold
        assert cold["stages"] == {
            "frontend": "miss", "pipeline": "miss", "closure": "miss"
        }
        warm = client.compile(source=source, config="GPU+ALL")
        assert warm["stages"] == {
            "frontend": "hit", "pipeline": "hit", "closure": "hit"
        }
        assert warm["program_id"] == cold["program_id"]
        counters = service.observer.counters.as_dict()
        for stage in ("frontend", "pipeline", "closure"):
            assert counters[f"service.{stage}_hits"] >= 1, stage
        # Different config = different pipeline artifacts: only the
        # frontend (same source) can hit.
        other = client.compile(source=source, config="GPU")
        assert other["stages"]["frontend"] == "hit"
        assert other["stages"]["pipeline"] == "miss"
        assert other["program_id"] != cold["program_id"]

    def test_compile_emits_opencl_on_request(self, daemon):
        client, _service = daemon
        reply = client.compile(source=SOURCE, emit="opencl")
        assert reply["ok"]
        [text] = list(reply["opencl"].values())
        assert "__kernel" in text

    def test_run_workload(self, daemon):
        client, _service = daemon
        reply = client.run(workload="BFS", scale=0.05)
        assert reply["ok"], reply
        assert reply["constructs"] > 0
        assert reply["seconds"] > 0
        assert len(reply["program_id"]) == 64

    SCALAR_SOURCE = """
class Accum {
public:
    int total;
    int step;
    void operator()(int i) { total = total + i * step; }
};
"""

    def test_run_single_kernel(self, daemon):
        client, _service = daemon
        reply = client.run(
            source=self.SCALAR_SOURCE, body="Accum", n=8,
            fields={"step": 2},
        )
        assert reply["ok"], reply
        assert reply["n"] == 8
        assert reply["device"] == "gpu"

    def test_bad_requests_do_not_kill_the_daemon(self, daemon):
        client, _service = daemon
        assert not client.compile(config="GPU+ALL")["ok"]  # no source
        assert not client.compile(source=SOURCE, config="NOPE")["ok"]
        assert not client.run(workload="NoSuchWorkload")["ok"]
        assert not client._request("POST", "/v1/compile", [1, 2, 3]).get(
            "ok", False
        )  # non-object body
        assert not client._request("GET", "/v1/nope").get("ok")
        assert client.health() == {"ok": True}
        stats = client.stats()
        # The malformed body and the 404 are rejected at the HTTP layer
        # before any handler runs; the other three count as errors.
        assert stats["counters"]["service.errors"] >= 3

    def test_stats_report_latency_and_store(self, daemon):
        client, _service = daemon
        client.compile(source=SOURCE)
        stats = client.stats()
        assert stats["ok"]
        assert stats["store"]["artifacts"] > 0
        assert "service_request.compile" in stats["latency"]
        p = stats["latency"]["service_request.compile"]
        assert 0 < p["p50"] <= p["p99"]
        assert stats["counters"]["service.requests"] >= 2

    def test_memory_cache_counts_as_all_stage_hits(self, daemon):
        client, service = daemon
        source = SOURCE.replace("7", "13")
        client.compile(source=source)
        before = service.observer.counters.get("service.memory_hits", 0)
        again = client.compile(source=source)
        assert again["stages"] == {
            "frontend": "hit", "pipeline": "hit", "closure": "hit"
        }
        assert service.observer.counters.get("service.memory_hits") == before + 1

    def test_concurrent_clients_agree(self, daemon):
        client, _service = daemon
        source = SOURCE.replace("7", "17")
        results = []
        lock = threading.Lock()

        def worker():
            reply = client.compile(source=source)
            with lock:
                results.append(reply)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r["ok"] for r in results)
        assert len({r["program_id"] for r in results}) == 1


class TestLoadGenerator:
    def test_sources_are_distinct(self):
        pool = generate_sources(5)
        assert len(set(pool)) == 5
        keys = {frontend_key(s) for s in pool}
        assert len(keys) == 5

    def test_run_load_against_live_daemon(self):
        with tempfile.TemporaryDirectory() as root:
            server, _service = serve(root, port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            host, port = server.server_address[:2]
            try:
                report = run_load(
                    lambda: ServiceClient(host, port), clients=2, sources=2
                )
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)
        assert validate_report(report) == []
        assert report["cold"]["requests"] == 4
        assert report["warm"]["requests"] == 4
        assert report["warm_hits"] > 0
        assert report["p50_speedup"] > 1.0
        assert json.dumps(report)  # the stats artifact must serialize

    def test_validate_report_flags_problems(self):
        good = {
            "clients": 2, "sources": 2, "warm_hits": 4,
            "cold": {"requests": 4, "errors": []},
            "warm": {"requests": 4, "errors": []},
        }
        assert validate_report(good) == []
        assert validate_report(
            {**good, "warm_hits": 0}
        ) == ["no warm closure-stage hits recorded (service.closure_hits == 0)"]
        assert validate_report(
            {**good, "warm": {"requests": 3, "errors": []}}
        )
        assert validate_report(
            {**good, "cold": {"requests": 4, "errors": ["boom"]}}
        )


class TestCompileLedger:
    def test_measure_compile_rows(self):
        registry = all_workloads()
        rows = measure_compile(
            ["BFS"], registry, calibration=1_000_000.0, repeats=1
        )
        [row] = rows
        assert row["workload"] == "BFS"
        assert row["cold_s"] > 0 and row["warm_s"] > 0
        assert row["speedup"] == pytest.approx(row["cold_s"] / row["warm_s"])
        assert row["warm_stages"] == {
            "frontend": "hit", "pipeline": "hit", "closure": "hit"
        }
        assert row["norm_cold"] > 0 and row["norm_warm"] > 0

    def test_ledger_schema_accepts_and_rejects_compile_section(self):
        bench_path = os.path.join(
            os.path.dirname(__file__), "..", "BENCH_2.json"
        )
        with open(bench_path) as handle:
            base = json.load(handle)
        base.pop("compile", None)
        row = {
            "workload": "BFS", "cold_s": 0.1, "warm_s": 0.01, "speedup": 10.0,
            "calibration_ops_per_s": 1.0, "norm_cold": 10.0, "norm_warm": 100.0,
        }
        validate_ledger({**base, "compile": [row]})
        validate_ledger(base)  # section is optional (pre-existing entries)
        from repro.obs.ledger import LedgerSchemaError

        with pytest.raises(LedgerSchemaError):
            validate_ledger({**base, "compile": [{**row, "cold_s": -1}]})
        with pytest.raises(LedgerSchemaError):
            validate_ledger({**base, "compile": [{**row, "workload": ""}]})
        with pytest.raises(LedgerSchemaError):
            validate_ledger({**base, "compile": {"not": "a list"}})

    def test_watch_trends_compile_series(self):
        def entry(n, norm_cold, norm_warm):
            return {
                "entry": n,
                "results": [],
                "compile": [{
                    "workload": "BFS",
                    "norm_cold": norm_cold,
                    "norm_warm": norm_warm,
                }],
            }

        series = build_series([entry(0, 10.0, 100.0), entry(1, 12.0, 110.0)])
        assert series[("BFS", "COMPILE:cold")] == [(0, 10.0), (1, 12.0)]
        assert series[("BFS", "COMPILE:warm")] == [(0, 100.0), (1, 110.0)]
        # Entries without the section (older ledgers) contribute nothing.
        assert build_series([{"entry": 0, "results": []}]) == {}
