"""Golden-output tests: lock the user-visible artifacts (Figure 1 OpenCL,
IR printing) against accidental regressions.

These assert structural content rather than byte-exact text, so harmless
renames don't break them while real codegen changes do.
"""

import re

from repro.ir import format_function, format_module
from repro.passes import OptConfig
from repro.runtime import compile_source

FIGURE1 = """
class Node {
public:
  Node* next;
  float value;
};

class LoopBody {
  Node* nodes;
public:
  LoopBody(Node* arr) : nodes(arr) {}
  void operator()(int i) {
    nodes[i].next = &(nodes[i+1]);
  }
};
"""


class TestFigure1OpenCl:
    def test_baseline_matches_paper_structure(self):
        """The GPU (lazy-translation) configuration must produce the exact
        structure of the paper's Figure 1 right-hand side."""
        prog = compile_source(FIGURE1, OptConfig.gpu())
        text = prog.kernel_for("LoopBody").opencl_source
        # the paper's typedef and macro
        assert "typedef unsigned long CpuPtr;" in text
        assert re.search(r"#define AS_GPU_PTR\(T, p\)", text)
        # kernel signature: gpu_base, cpu_base, then the body pointer
        assert re.search(
            r"__kernel void \w+\(__global char \*gpu_base, CpuPtr cpu_base, "
            r"CpuPtr body, int i\)",
            text,
        )
        # svm_const computed once
        assert text.count("svm_const =") == 1
        # lazy translation: one AS_GPU_PTR per dereference (three accesses:
        # load nodes, load nodes again or reuse, store next)
        assert text.count("AS_GPU_PTR(char,") >= 2
        # the stored value is the CPU representation (no translation of the
        # stored pointer)
        store_line = next(
            line for line in text.splitlines() if line.strip().startswith("*((CpuPtr")
        )
        assert "AS_GPU_PTR" not in store_line.split("=")[1]

    def test_ptropt_reduces_static_translations(self):
        base = compile_source(FIGURE1, OptConfig.gpu())
        opt = compile_source(FIGURE1, OptConfig.gpu_ptropt())
        count = lambda p: p.kernel_for("LoopBody").opencl_source.count("AS_GPU_PTR(char,")
        assert count(opt) < count(base)

    def test_node_struct_size_comment(self):
        prog = compile_source(FIGURE1, OptConfig.gpu())
        text = prog.kernel_for("LoopBody").opencl_source
        assert "/* struct Node: size 16 */" in text


class TestIrPrinter:
    def test_function_print_roundtrip_structure(self):
        prog = compile_source(FIGURE1, OptConfig.gpu())
        kernel = prog.kernel_for("LoopBody").gpu_kernel
        text = format_function(kernel)
        assert text.startswith("func @kernel.LoopBody.gpu(")
        assert "[kernel]" in text
        assert "entry:" in text
        assert text.rstrip().endswith("}")
        # every non-void instruction printed with a %name =
        assert "= call @svm.to_gpu(" in text
        assert "store " in text and "ret" in text

    def test_module_print_includes_globals_and_vtables(self):
        source = FIGURE1 + """
        class Base { public: int pad; virtual int f() { return 1; } };
        class Derived : public Base { public: virtual int f() { return 2; } };
        """
        prog = compile_source(source, OptConfig.gpu())
        text = format_module(prog.module)
        assert "global @__vtable.Base" in text
        assert "vtable Derived = [" in text

    def test_phi_printing(self):
        source = """
        class B {
        public:
          int* out;
          void operator()(int i) {
            int s = 0;
            for (int j = 0; j < i; j++) s += j;
            out[i] = s;
          }
        };
        """
        prog = compile_source(source, OptConfig.gpu())
        text = format_function(prog.kernel_for("B").gpu_kernel)
        assert re.search(r"phi i32 \[.*\], \[.*\]", text)
