"""Focused unit tests for the paper-specific passes: SVM lowering (§3.1),
PTROPT (§4.1), L3OPT (§4.2), LICM ("aggressive register promotion"), and
tail-recursion elimination (§2.1)."""

import pytest

from repro.ir import (
    Constant,
    Function,
    FunctionType,
    I32,
    IRBuilder,
    VOID,
    add_phi_incoming,
    ptr,
    verify_function,
)
from repro.ir.intrinsics import SVM_TO_GPU
from repro.passes import (
    OptConfig,
    dead_code_elimination,
    eliminate_tail_recursion,
    lower_svm_pointers,
    optimize_pointer_translations,
    reduce_cacheline_contention,
)
from repro.passes.licm import loop_invariant_code_motion
from repro.passes.tailrec import has_nontail_recursion
from repro.runtime import compile_source


def translation_count(fn):
    return sum(
        1
        for i in fn.instructions()
        if i.op == "call" and i.callee is SVM_TO_GPU
    )


class TestSvmLowering:
    def _deref_fn(self):
        """int f(int* p) { return *p; }"""
        fn = Function("f", FunctionType(I32, (ptr(I32),)), ["p"])
        b = IRBuilder(fn.new_block("entry"))
        b.ret(b.load(fn.args[0]))
        return fn

    def test_inserts_translation_before_load(self):
        fn = self._deref_fn()
        assert lower_svm_pointers(fn)
        instrs = list(fn.instructions())
        assert instrs[0].op == "call" and instrs[0].callee is SVM_TO_GPU
        assert instrs[1].op == "load"
        assert instrs[1].operands[0] is instrs[0]
        verify_function(fn)

    def test_idempotent(self):
        fn = self._deref_fn()
        lower_svm_pointers(fn)
        count = translation_count(fn)
        assert not lower_svm_pointers(fn)  # second run is a no-op
        assert translation_count(fn) == count

    def test_private_memory_not_translated(self):
        fn = Function("f", FunctionType(I32, ()), [])
        b = IRBuilder(fn.new_block("entry"))
        slot = b.alloca(I32, "local")
        b.store(Constant(I32, 7), slot)
        b.ret(b.load(slot))
        lower_svm_pointers(fn)
        assert translation_count(fn) == 0

    def test_store_value_not_translated(self):
        """Storing a pointer VALUE keeps its CPU representation; only the
        address operand is translated (the dual-representation invariant)."""
        pp = ptr(ptr(I32))
        fn = Function("f", FunctionType(VOID, (pp, ptr(I32))), ["slot", "v"])
        b = IRBuilder(fn.new_block("entry"))
        b.store(fn.args[1], fn.args[0])
        b.ret()
        lower_svm_pointers(fn)
        store = next(i for i in fn.instructions() if i.op == "store")
        assert store.operands[0] is fn.args[1]  # value untouched
        assert store.operands[1].op == "call"  # address translated


class TestPtropt:
    def test_duplicate_translations_unified(self):
        fn = Function("f", FunctionType(I32, (ptr(I32),)), ["p"])
        b = IRBuilder(fn.new_block("entry"))
        t1 = b.call(SVM_TO_GPU, [fn.args[0]], "t1")
        t2 = b.call(SVM_TO_GPU, [fn.args[0]], "t2")
        v1 = b.load(t1)
        v2 = b.load(t2)
        b.ret(b.add(v1, v2))
        assert optimize_pointer_translations(fn)
        dead_code_elimination(fn)
        assert translation_count(fn) == 1
        verify_function(fn)

    def test_translation_commutes_through_gep(self):
        """to_gpu(gep(p, i)) becomes gep(to_gpu(p), i), so a loop-invariant
        base is translated once."""
        fn = Function("f", FunctionType(I32, (ptr(I32), I32)), ["p", "i"])
        b = IRBuilder(fn.new_block("entry"))
        element = b.gep(fn.args[0], ptr(I32), indices=[(fn.args[1], 4)])
        translated = b.call(SVM_TO_GPU, [element], "t")
        b.ret(b.load(translated))
        assert optimize_pointer_translations(fn)
        # the translation's operand is now the base pointer, not the gep
        site = next(
            i for i in fn.instructions()
            if i.op == "call" and i.callee is SVM_TO_GPU
        )
        assert site.operands[0] is fn.args[0]
        verify_function(fn)

    def test_untranslated_when_never_dereferenced(self):
        """Figure 4's lazy case: a pointer only copied (loaded + stored)
        keeps its CPU representation end to end after PTROPT + DCE."""
        source = """
        class CopyBody {
        public:
          int** a;
          int** b;
          void operator()(int i) {
            b[i] = a[i];
          }
        };
        """
        prog = compile_source(source, OptConfig.gpu_ptropt())
        kernel = prog.kernel_for("CopyBody").gpu_kernel
        # translations exist for the a/b array accesses, but the copied
        # element value is never translated: no to_cpu round trips at all
        assert not any(
            i.op == "call" and i.callee is not None and i.callee.name == "svm.to_cpu"
            for i in kernel.instructions()
        )


class TestL3Opt:
    def _uniform_scan(self):
        """Kernel-shaped function: for(j=0;j<n;j++) acc += a[j]; plus the
        work-item id arg named 'i' (the uniformity analysis keys on it)."""
        fn = Function(
            "k", FunctionType(I32, (ptr(I32), I32, I32)), ["a", "n", "i"]
        )
        entry = fn.new_block("entry")
        header = fn.new_block("header")
        body = fn.new_block("body")
        done = fn.new_block("done")
        b = IRBuilder(entry)
        b.br(header)
        b.position_at_end(header)
        jphi = b.phi(I32, "j")
        acc = b.phi(I32, "acc")
        cond = b.icmp("slt", jphi, fn.args[1])
        b.condbr(cond, body, done)
        b.position_at_end(body)
        element = b.gep(fn.args[0], ptr(I32), indices=[(jphi, 4)])
        value = b.load(element)
        acc2 = b.add(acc, value, "acc2")
        j2 = b.add(jphi, Constant(I32, 1), "j2")
        b.br(header)
        b.position_at_end(done)
        b.ret(acc)
        add_phi_incoming(jphi, Constant(I32, 0), entry)
        add_phi_incoming(jphi, j2, body)
        add_phi_incoming(acc, Constant(I32, 0), entry)
        add_phi_incoming(acc, acc2, body)
        return fn

    def test_applies_to_uniform_reduction_loop(self):
        fn = self._uniform_scan()
        assert reduce_cacheline_contention(fn)
        verify_function(fn)
        assert fn.attributes.get("l3opt_applied") == 1
        ops = [i.op for i in fn.instructions()]
        # strength-reduced stagger: one division in the preheader, a
        # wrap-around select in the latch, no urem in the loop body
        assert ops.count("udiv") == 1
        assert ops.count("urem") == 1  # start % N, preheader only
        assert "select" in ops

    def test_skips_loops_with_shared_stores(self):
        fn = self._uniform_scan()
        # add a store to shared memory in the body -> not permutable
        body = fn.blocks[2]
        b = IRBuilder(None)
        b.block = body
        store_at = body.first_non_phi_index()
        from repro.ir import Instruction

        store = Instruction("store", VOID, [Constant(I32, 1), fn.args[0]])
        body.insert(store_at, store)
        assert not reduce_cacheline_contention(fn)

    def test_semantics_preserved(self):
        from repro.exec import Interpreter
        from repro.svm import SharedAllocator, SharedRegion

        region = SharedRegion(1 << 16)
        alloc = SharedAllocator(region)
        n = 13
        base = alloc.malloc(4 * n)
        for j in range(n):
            region.write_int(base + 4 * j, 4, j * 3 + 1, signed=True)
        expected = sum(j * 3 + 1 for j in range(n))

        plain = self._uniform_scan()
        staggered = self._uniform_scan()
        reduce_cacheline_contention(staggered)
        for gid in (0, 7, 41, 80):
            for fn in (plain, staggered):
                interp = Interpreter(region, "cpu", global_id=gid, num_cores=40)
                assert interp.call_function(fn, [base, n, gid]) == expected


class TestLicm:
    def test_hoists_invariant_load_from_storeless_loop(self):
        source = """
        class B {
        public:
          int* data;
          int n;
          int bias;
          void operator()(int i) {
            int acc = 0;
            for (int j = 0; j < n; j++) {
              acc += data[j] * bias;
            }
            data[i] = acc;
          }
        };
        """
        prog = compile_source(source, OptConfig.gpu())
        kernel = prog.kernel_for("B").gpu_kernel
        # the loads of this->data, this->n, this->bias must sit in the
        # entry block, not the loop
        entry_loads = sum(1 for i in kernel.blocks[0].instructions if i.op == "load")
        assert entry_loads >= 3

    def test_does_not_hoist_past_stores(self):
        fn = Function("f", FunctionType(I32, (ptr(I32), I32)), ["p", "n"])
        entry = fn.new_block("entry")
        header = fn.new_block("header")
        body = fn.new_block("body")
        done = fn.new_block("done")
        b = IRBuilder(entry)
        b.br(header)
        b.position_at_end(header)
        jphi = b.phi(I32, "j")
        cond = b.icmp("slt", jphi, fn.args[1])
        b.condbr(cond, body, done)
        b.position_at_end(body)
        loaded = b.load(fn.args[0], "reload")  # invariant address...
        b.store(b.add(loaded, Constant(I32, 1)), fn.args[0])  # ...but stored
        j2 = b.add(jphi, Constant(I32, 1), "j2")
        b.br(header)
        b.position_at_end(done)
        b.ret(b.load(fn.args[0]))
        add_phi_incoming(jphi, Constant(I32, 0), entry)
        add_phi_incoming(jphi, j2, body)
        loop_invariant_code_motion(fn)
        # the reload must still be inside the loop
        assert any(i.name == "reload" for i in body.instructions)


class TestTailRecursion:
    def _countdown(self):
        """int f(int n, int acc) { return n==0 ? acc : f(n-1, acc+n); }"""
        fn = Function("f", FunctionType(I32, (I32, I32)), ["n", "acc"])
        entry = fn.new_block("entry")
        base = fn.new_block("base")
        rec = fn.new_block("rec")
        b = IRBuilder(entry)
        cond = b.icmp("eq", fn.args[0], Constant(I32, 0))
        b.condbr(cond, base, rec)
        b.position_at_end(base)
        b.ret(fn.args[1])
        b.position_at_end(rec)
        n1 = b.binop("sub", fn.args[0], Constant(I32, 1), "n1")
        acc1 = b.add(fn.args[1], fn.args[0], "acc1")
        call = b.call(fn, [n1, acc1], "rec")
        b.ret(call)
        return fn

    def test_rewrites_to_loop(self):
        fn = self._countdown()
        assert has_nontail_recursion(fn)
        assert eliminate_tail_recursion(fn)
        verify_function(fn)
        assert not has_nontail_recursion(fn)

    def test_semantics(self):
        from repro.exec import Interpreter
        from repro.svm import SharedRegion

        fn = self._countdown()
        eliminate_tail_recursion(fn)
        region = SharedRegion(1 << 12)
        for n in (0, 1, 5, 100):
            got = Interpreter(region, "cpu").call_function(fn, [n, 0])
            assert got == sum(range(n + 1))

    def test_non_tail_call_untouched(self):
        """f(n) = n + f(n-1) is NOT a tail call; the pass must leave it."""
        fn = Function("f", FunctionType(I32, (I32,)), ["n"])
        entry = fn.new_block("entry")
        base = fn.new_block("base")
        rec = fn.new_block("rec")
        b = IRBuilder(entry)
        cond = b.icmp("eq", fn.args[0], Constant(I32, 0))
        b.condbr(cond, base, rec)
        b.position_at_end(base)
        b.ret(Constant(I32, 0))
        b.position_at_end(rec)
        n1 = b.binop("sub", fn.args[0], Constant(I32, 1), "n1")
        call = b.call(fn, [n1], "rec")
        result = b.add(fn.args[0], call, "sum")  # uses call -> not tail
        b.ret(result)
        assert not eliminate_tail_recursion(fn)
        assert has_nontail_recursion(fn)


class TestL3OptLegality:
    def test_rejects_argmin_loops(self):
        """Index selects (argmin) are order-dependent under ties; the
        stagger would change which index wins, so L3OPT must reject them."""
        source = """
        class ArgMin {
        public:
          float* a;
          int* out;
          int n;
          void operator()(int i) {
            float best = 1000000.0f;
            int best_j = -1;
            for (int j = 0; j < n; j++) {
              if (a[j] < best) { best = a[j]; best_j = j; }
            }
            out[i] = best_j;
          }
        };
        """
        prog = compile_source(source, OptConfig.gpu_l3opt())
        kernel = prog.kernel_for("ArgMin").gpu_kernel
        assert not kernel.attributes.get("l3opt_applied")

    def test_argmin_result_stable_with_ties(self):
        """End to end: duplicated minima must give the same index under
        every configuration."""
        from repro.ir.types import F32 as F32t, I32 as I32t
        from repro.runtime import ConcordRuntime, ultrabook

        source = """
        class ArgMin {
        public:
          float* a;
          int* out;
          int n;
          void operator()(int i) {
            float best = 1000000.0f;
            int best_j = -1;
            for (int j = 0; j < n; j++) {
              if (a[j] < best) { best = a[j]; best_j = j; }
            }
            out[i] = best_j;
          }
        };
        """
        values = [5.0, 1.0, 3.0, 1.0, 4.0, 1.0]  # three tied minima
        results = []
        for config in OptConfig.all_configs():
            rt = ConcordRuntime(compile_source(source, config), ultrabook())
            a = rt.new_array(F32t, len(values))
            a.fill_from(values)
            out = rt.new_array(I32t, 4)
            body = rt.new("ArgMin")
            body.a = a
            body.out = out
            body.n = len(values)
            rt.parallel_for_hetero(4, body)
            results.append(out.to_list())
        assert all(r == [1, 1, 1, 1] for r in results), results

    def test_still_accepts_plain_min(self):
        source = """
        class MinBody {
        public:
          float* a;
          float* out;
          int n;
          void operator()(int i) {
            float best = 1000000.0f;
            for (int j = 0; j < n; j++) {
              best = fminf(best, a[j]);
            }
            out[i] = best;
          }
        };
        """
        prog = compile_source(source, OptConfig.gpu_l3opt())
        kernel = prog.kernel_for("MinBody").gpu_kernel
        assert kernel.attributes.get("l3opt_applied")


class TestVirtualReferenceArgs:
    def test_virtual_method_with_reference_param(self):
        """Binding a class value to a virtual method's reference parameter
        must compile and dispatch correctly (this crashed the compiler
        before the reference-binding fix in _finish_virtual_call)."""
        from repro.ir.types import F32 as F32t
        from repro.runtime import ConcordRuntime, ultrabook

        source = """
        class Vec { public: float x; float y; };
        class Shape {
        public:
          float bias;
          virtual float project(Vec& v) { return v.x + bias; }
        };
        class Tilted : public Shape {
        public:
          virtual float project(Vec& v) { return v.x + v.y + bias; }
        };
        class Body {
        public:
          Shape** shapes;
          float* out;
          void operator()(int i) {
            Vec v;
            v.x = (float)i;
            v.y = 10.0f;
            out[i] = shapes[i]->project(v);
          }
        };
        """
        from repro.ir.types import I64, ptr

        prog = compile_source(source, OptConfig.gpu_all())
        rt = ConcordRuntime(prog, ultrabook())
        shapes = rt.new_array(ptr(I64), 4)
        for i in range(4):
            obj = rt.new("Shape" if i % 2 == 0 else "Tilted")
            obj.bias = 100.0
            shapes[i] = obj.addr
        out = rt.new_array(F32t, 4)
        body = rt.new("Body")
        body.shapes = shapes
        body.out = out
        rt.parallel_for_hetero(4, body)
        expected = [i + 100.0 if i % 2 == 0 else i + 10.0 + 100.0 for i in range(4)]
        assert out.to_list() == expected
