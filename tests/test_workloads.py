"""Integration tests: all nine workloads compile, run, and validate on
both devices and under every optimization configuration.

These are the heaviest tests in the suite; they use small scales.
"""

import warnings

import pytest

from repro.passes import OptConfig
from repro.runtime.system import desktop, ultrabook
from repro.workloads import all_workloads

WORKLOADS = all_workloads()
SMALL = 0.2


def _execute(name, config, on_cpu=False, system=None, scale=SMALL):
    workload = WORKLOADS[name]()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return workload.execute(
            config, system or ultrabook(), on_cpu=on_cpu, scale=scale
        )


class TestAllWorkloadsGpu:
    """GPU+ALL execution validates against the Python references."""

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_gpu_all_validates(self, name):
        outcome = _execute(name, OptConfig.gpu_all())
        assert outcome.device == "gpu"
        assert outcome.seconds > 0
        assert outcome.energy_joules > 0


class TestAllWorkloadsCpu:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_cpu_validates(self, name):
        outcome = _execute(name, OptConfig.gpu_all(), on_cpu=True)
        assert outcome.device == "cpu"
        assert outcome.seconds > 0


class TestConfigIndependence:
    """The optimizations must not change results, only cost."""

    @pytest.mark.parametrize(
        "name", ["BFS", "BTree", "SkipList", "Raytracer", "FaceDetect"]
    )
    def test_all_configs_same_results(self, name):
        for config in OptConfig.all_configs():
            _execute(name, config)  # validation inside execute


class TestDesktopSystem:
    @pytest.mark.parametrize("name", ["SSSP", "ConnectedComponent", "ClothPhysics"])
    def test_desktop_gpu(self, name):
        outcome = _execute(name, OptConfig.gpu_all(), system=desktop())
        assert outcome.device == "gpu"


class TestWorkloadMetadata:
    def test_table1_metadata_complete(self):
        for name, cls in WORKLOADS.items():
            assert cls.name == name
            assert cls.origin
            assert cls.data_structure
            assert cls.body_class
            assert cls.loc() > 10
            assert 0 < cls.device_loc() <= cls.loc()

    def test_nine_paper_workloads_plus_comparator(self):
        paper = {
            "BarnesHut", "BFS", "BTree", "ClothPhysics", "ConnectedComponent",
            "FaceDetect", "Raytracer", "SkipList", "SSSP",
        }
        assert paper <= set(WORKLOADS)
        assert "RaytracerFlat" in WORKLOADS  # section 5.4 comparator

    def test_cloth_uses_reduce(self):
        assert WORKLOADS["ClothPhysics"].parallel_construct == "parallel_reduce_hetero"


class TestCrossDeviceAgreement:
    """Pointer-heavy workloads must produce identical results on CPU and
    GPU paths (same memory contents after the run)."""

    @pytest.mark.parametrize("name", ["BFS", "SSSP", "BTree", "SkipList"])
    def test_cpu_gpu_agree(self, name):
        cls = WORKLOADS[name]
        workload = cls()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            rt1 = cls.make_runtime(OptConfig.gpu_all(), ultrabook())
            state1 = workload.build(rt1, SMALL)
            workload.run(rt1, state1, on_cpu=False)
            rt2 = cls.make_runtime(OptConfig.gpu_all(), ultrabook())
            state2 = workload.build(rt2, SMALL)
            workload.run(rt2, state2, on_cpu=True)
        if hasattr(state1, "results"):
            assert state1.results.to_list() == state2.results.to_list()
        elif hasattr(state1, "dist"):
            assert state1.dist.to_list() == state2.dist.to_list()
        elif hasattr(state1, "labels"):
            assert state1.labels.to_list() == state2.labels.to_list()
