"""Tests for the ConcordRuntime host API: object construction, views,
host calls, JIT caching, accounting."""

import pytest

from repro.ir.types import F32, I32, I64, ptr
from repro.runtime import ConcordRuntime, OptConfig, compile_source, desktop, ultrabook
from repro.svm import MemoryFault

SOURCE = """
class Point {
public:
  float x; float y;
  Point(float px, float py) : x(px), y(py) {}
  float norm2() { return x * x + y * y; }
};

class Counter {
public:
  int value;
  int bump(int by) { value += by; return value; }
};

class ScaleBody {
public:
  Point* points;
  float factor;
  void operator()(int i) {
    points[i].x *= factor;
    points[i].y *= factor;
  }
};
"""


@pytest.fixture()
def rt():
    return ConcordRuntime(compile_source(SOURCE, OptConfig.gpu_all()), ultrabook())


class TestObjectConstruction:
    def test_constructor_arguments(self, rt):
        p = rt.new("Point", 3.0, 4.0)
        assert p.x == 3.0 and p.y == 4.0

    def test_wrong_arity_raises(self, rt):
        with pytest.raises(TypeError):
            rt.new("Counter", 1, 2, 3)

    def test_unknown_class_raises(self, rt):
        with pytest.raises(KeyError):
            rt.new("Nothing")

    def test_zero_init_without_ctor(self, rt):
        c = rt.new("Counter")
        assert c.value == 0

    def test_new_array_of_class_and_scalar(self, rt):
        points = rt.new_array("Point", 4)
        assert len(points) == 4
        floats = rt.new_array(F32, 8)
        floats[5] = 2.5
        assert floats[5] == 2.5

    def test_free_releases_memory(self, rt):
        before = rt.allocator.live_bytes
        arr = rt.new_array(I64, 100)
        assert rt.allocator.live_bytes > before
        rt.free(arr)
        assert rt.allocator.live_bytes == before


class TestHostCalls:
    def test_method_via_call_host(self, rt):
        p = rt.new("Point", 3.0, 4.0)
        fn_name = next(
            n for n in rt.program.module.functions if n.startswith("Point.norm2")
        )
        assert rt.call_host(fn_name, p) == pytest.approx(25.0)

    def test_mutating_method(self, rt):
        c = rt.new("Counter")
        fn_name = next(
            n for n in rt.program.module.functions if n.startswith("Counter.bump")
        )
        assert rt.call_host(fn_name, c, 5) == 5
        assert rt.call_host(fn_name, c, 2) == 7
        assert c.value == 7


class TestExecutionAccounting:
    def _setup(self, rt, n=8):
        points = rt.new_array("Point", n)
        for i in range(n):
            points[i].x = float(i)
            points[i].y = 1.0
        body = rt.new("ScaleBody")
        body.points = points
        body.factor = 2.0
        return body, points

    def test_jit_charged_once(self, rt):
        body, _ = self._setup(rt)
        first = rt.parallel_for_hetero(8, body)
        second = rt.parallel_for_hetero(8, body)
        assert first.jit_seconds > 0
        assert second.jit_seconds == 0.0

    def test_totals_accumulate(self, rt):
        body, _ = self._setup(rt)
        rt.parallel_for_hetero(8, body)
        rt.parallel_for_hetero(8, body, on_cpu=True)
        assert rt.total_gpu_report.seconds > 0
        assert rt.total_cpu_report.seconds > 0

    def test_results_correct_after_both_devices(self, rt):
        body, points = self._setup(rt)
        rt.parallel_for_hetero(8, body)          # x *= 2
        rt.parallel_for_hetero(8, body, on_cpu=True)  # x *= 2 again
        assert [points[i].x for i in range(8)] == [float(i) * 4 for i in range(8)]

    def test_desktop_system_differs(self):
        prog = compile_source(SOURCE, OptConfig.gpu_all())
        times = {}
        for system in (ultrabook(), desktop()):
            rt = ConcordRuntime(prog, system)
            body, _ = self._setup(rt)
            report = rt.parallel_for_hetero(8, body, on_cpu=True)
            times[system.name] = report.seconds
        # the desktop CPU is strictly faster on the same work
        assert times["Desktop"] < times["Ultrabook"]

    def test_non_body_class_rejected(self, rt):
        c = rt.new("Counter")
        with pytest.raises(KeyError):
            rt.parallel_for_hetero(4, c)

    def test_raw_address_body_rejected(self, rt):
        with pytest.raises(TypeError):
            rt.parallel_for_hetero(4, 0x1234)


class TestViewsThroughRuntime:
    def test_view_wraps_existing_address(self, rt):
        p = rt.new("Point", 1.0, 2.0)
        again = rt.view("Point", p.addr)
        assert again.x == 1.0
        again.y = 9.0
        assert p.y == 9.0

    def test_view_field_address(self, rt):
        p = rt.new("Point", 0.0, 0.0)
        assert p.field_address("y") == p.addr + 4

    def test_out_of_region_read_faults(self, rt):
        with pytest.raises(MemoryFault):
            rt.region.read_int(0x10, 4, signed=True)
