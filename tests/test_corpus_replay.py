"""Replay every corpus program through the differential oracles.

``tests/corpus/`` holds two kinds of JSON entries, both in the format the
fuzzer's ``write_reproducer`` emits (so fuzzer output can be promoted to a
regression test by copying the file in):

* ``seed-*`` — representative generated programs pinned as regression
  anchors: source programs covering the frontend feature rotation and IR
  programs from the random-CFG generator;
* ``regression-*`` / ``div-*`` — reduced reproducers for bugs the fuzzer
  actually found; they must stay divergence-free forever.

Source entries run through the reference interpreter AND the threaded-code
engine on both devices plus every per-pass-disabled pipeline; IR entries
run through both engines and every single pass with re-verification.
"""

from pathlib import Path

import pytest

from repro.fuzz import (
    ir_divergences,
    load_corpus_entry,
    source_engine_divergences,
    source_pass_divergences,
)

CORPUS = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS.glob("*.json"))


def test_corpus_is_seeded():
    assert len(ENTRIES) >= 10, (
        f"expected at least 10 corpus programs, found {len(ENTRIES)}"
    )


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_replays_clean(path):
    kind, program, doc = load_corpus_entry(path)
    if kind == "ir":
        diffs = ir_divergences(program)
    else:
        diffs = source_engine_divergences(program)
        if not diffs:
            diffs = source_pass_divergences(program)
    assert not diffs, [str(d) for d in diffs]
