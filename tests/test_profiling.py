"""Source-line profiler, Chrome-trace export and benchmark ledger.

Covers the contract in docs/PROFILING.md:

* the frontend stamps every lowered instruction with a source location,
  every pass preserves it (including each ``without_pass`` pipeline
  variant — the verifier enforces the invariant after any changed pass),
  and inlining extends locations with call-site frames;
* per-line attribution reconstructs whole-kernel instruction totals
  exactly from the executed-block histograms, for both engines, on
  arbitrary generated programs (hypothesis);
* ``python -m repro annotate bfs`` attributes >= 95% of modeled cost to
  source lines, and the rendered hot-line report is byte-stable;
* the Chrome ``trace_event`` export round-trips through JSON and
  validates;
* ``python -m repro bench`` writes schema-valid ledger entries, numbers
  them monotonically, diffs against the previous entry and gates on
  normalized-throughput regressions;
* unknown workloads exit non-zero with the available list on stderr for
  both new subcommands.
"""

import json
import random
import warnings

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.obs import (
    Observer,
    annotate_workload,
    build_line_report,
    build_trace,
    render_line_report,
    validate_ledger,
    validate_trace,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerSchemaError,
    diff_ledgers,
    geomean_delta,
    ledger_entries,
    load_latest,
    regressions,
    run_benchmarks,
    write_entry,
)
from repro.obs.trace import TRACE_SCHEMA_VERSION, TraceSchemaError
from repro.passes import OptConfig
from repro.passes.pipeline import PASS_REGISTRY
from repro.runtime import compile_source

LOC_REQUIRED_OPS = {"load", "store", "call", "vcall"}

HELPER_SRC = """
class Scaler {
public:
  int* data;
  int factor;
  int scaled(int value) { return value * factor + 1; }
  void operator()(int i) { data[i] = scaled(data[i]); }
};
"""

VIRTUAL_SRC = """
class Shape {
public:
  virtual int weight(int x) { return x + 1; }
};
class Circle : public Shape {
public:
  virtual int weight(int x) { return x * 3; }
};
class Apply {
public:
  int* data;
  Shape* shape;
  void operator()(int i) { data[i] = shape->weight(data[i]); }
};
"""


def _kernel_functions(program):
    for kinfo in program.kernels.values():
        yield kinfo.kernel
        if kinfo.gpu_kernel is not kinfo.kernel:
            yield kinfo.gpu_kernel


# -- location threading -----------------------------------------------------


class TestSourceLocations:
    def test_frontend_stamps_memory_and_call_ops(self):
        program = compile_source(HELPER_SRC, OptConfig.gpu_all())
        for function in _kernel_functions(program):
            for block in function.blocks:
                for instr in block.instructions:
                    if instr.op in LOC_REQUIRED_OPS:
                        assert instr.loc, (
                            f"{function.name}: {instr.op} lost its location"
                        )

    @pytest.mark.parametrize("pass_name", sorted(PASS_REGISTRY))
    def test_locs_survive_pass_isolation(self, pass_name):
        """Every ``without_pass`` variant must keep locations on memory
        and call operations — the verifier also enforces this after any
        changed pass, so a silent mid-pipeline loss cannot hide."""
        config = OptConfig.gpu_all().without_pass(pass_name)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            program = compile_source(VIRTUAL_SRC, config)
        for function in _kernel_functions(program):
            for block in function.blocks:
                for instr in block.instructions:
                    if instr.op in LOC_REQUIRED_OPS:
                        assert instr.loc, (
                            f"without {pass_name}: {function.name} has a "
                            f"locless {instr.op}"
                        )

    def test_inlining_appends_call_site_frames(self):
        program = compile_source(HELPER_SRC, OptConfig.gpu_all())
        kinfo = program.kernels["Scaler"]
        chained = [
            instr.loc
            for block in kinfo.gpu_kernel.blocks
            for instr in block.instructions
            if instr.loc is not None and len(instr.loc) > 1
        ]
        assert chained, "inlining scaled() should leave multi-frame locations"
        # Innermost frame first: the callee body line (6) precedes the
        # call site line (7).
        lines = {tuple(frame[0] for frame in loc) for loc in chained}
        assert any(chain[0] == 6 and 7 in chain for chain in lines), lines

    def test_verifier_rejects_lost_locations(self):
        from repro.ir.verifier import VerificationError, verify_function

        program = compile_source(HELPER_SRC, OptConfig.gpu_all())
        kinfo = program.kernels["Scaler"]
        function = kinfo.gpu_kernel
        victim = next(
            instr
            for block in function.blocks
            for instr in block.instructions
            if instr.op in LOC_REQUIRED_OPS
        )
        saved = victim.loc
        victim.loc = None
        try:
            with pytest.raises(VerificationError, match="source location"):
                verify_function(function)
            # Hand-built IR (no source_locs attribute) is exempt.
            function.attributes.pop("source_locs", None)
            verify_function(function)
        finally:
            victim.loc = saved
            function.attributes["source_locs"] = True


# -- line attribution -------------------------------------------------------


@st.composite
def source_programs(draw):
    from repro.fuzz import generate_source_program

    seed = draw(st.integers(0, 2**31 - 1))
    return generate_source_program(random.Random(seed), seed=seed)


class TestLineAttribution:
    @given(source_programs(), st.sampled_from(["compiled", "reference"]))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_line_sums_equal_engine_totals(self, program, engine):
        """Attribution is lossless: summing instruction counts over all
        lines plus the unattributed bucket reproduces the engine's own
        executed-instruction counter exactly."""
        from repro.fuzz import run_source_program

        observer = Observer()
        outcome = run_source_program(program, engine=engine, observer=observer)
        assert outcome.ok, outcome.trap
        report = build_line_report(observer)
        assert observer.line_samples, "observed run recorded no samples"
        assert report["totals"]["instructions"] == observer.counters.get(
            "engine.instructions"
        )

    def test_bfs_attribution_meets_threshold(self):
        doc = annotate_workload("bfs", scale=0.2)
        assert doc["totals"]["attributed_fraction"] >= 0.95
        assert doc["meta"]["workload"] == "BFS"
        top = doc["lines"][0]
        assert top["source"], "hot lines should carry source excerpts"
        assert top["translations"] > 0  # SVM translations charged to lines

    def test_bfs_golden_hot_line_report(self):
        """The rendered report is a function of the deterministic cost
        model only (no wall-clock anywhere), so it is byte-stable."""
        doc = annotate_workload("bfs", scale=0.2)
        rendered = render_line_report(doc, top=3)
        golden = (
            "Hot lines: BFS (system=Ultrabook, engine=compiled, scale=0.2, "
            "device=gpu)\n"
            "attributed 97.0% of 3,706 modeled cost units across 8 source "
            "line(s)\n"
            "\n"
            "         UNITS      %    GPU-SLOTS  CPU-INSTR    MEM-BYTES  "
            "   XLAT  DEVIRT  LINE  SOURCE\n"
            "-----------------------------------------------------------"
            "------------------------------\n"
            "         1,792  48.4%        1,792          0        1,792  "
            "    224       0    12  if (dist[i] == level) {\n"
            "           552  14.9%          552          0          736  "
            "     46       0    17  if (dist[v] > level + 1) {\n"
            "           414  11.2%          414          0          552  "
            "     46       0    16  int v = columns[e];\n"
            "           112   3.0%          112          0            0  "
            "      0       0     ?  <no source location>"
        )
        assert rendered == golden

    def test_cpu_run_attributes_to_cpu_column(self):
        doc = annotate_workload("bfs", scale=0.1, on_cpu=True)
        assert doc["totals"]["attributed_fraction"] >= 0.95
        assert doc["totals"]["cpu_instrs"] > 0
        assert doc["totals"]["gpu_slots"] == 0

    def test_unknown_workload_raises_with_available_list(self):
        with pytest.raises(KeyError, match="available"):
            annotate_workload("nope")

    def test_virtual_dispatch_charges_devirt_hits(self):
        from repro.runtime import ConcordRuntime, ultrabook
        from repro.ir.types import I32

        program = compile_source(VIRTUAL_SRC, OptConfig.gpu_all())
        observer = Observer()
        rt = ConcordRuntime(program, ultrabook(), observer=observer)
        data = rt.new_array(I32, 8)
        data.fill_from(list(range(8)))
        body = rt.new("Apply")
        body.data = data
        body.shape = rt.new("Circle")
        rt.parallel_for_hetero(8, body)
        report = build_line_report(observer)
        assert report["totals"]["devirt_hits"] > 0


# -- Chrome trace export ----------------------------------------------------


class TestTraceExport:
    def _observed_profile(self):
        from repro.obs import profile_workload

        observer = Observer()
        profile_workload("bfs", scale=0.1, observer=observer)
        return observer

    def test_round_trip_validates(self):
        observer = self._observed_profile()
        doc = build_trace(observer, meta={"workload": "BFS"})
        validate_trace(doc)
        reloaded = json.loads(json.dumps(doc))
        validate_trace(reloaded)
        assert reloaded["schema"] == TRACE_SCHEMA_VERSION
        events = reloaded["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "M"}
        assert {"process_name", "thread_name"} <= names
        spans = [e for e in events if e["ph"] == "X" and e["tid"] == 0]
        constructs = [
            e
            for e in events
            if e["ph"] == "X" and e["tid"] == 1 and e["cat"] == "construct"
        ]
        assert spans and constructs
        assert any(e["name"] == "compile" for e in spans)
        counters = [e for e in events if e["ph"] == "C"]
        assert counters and all("engine.instructions" in e["args"] for e in counters)

    def test_device_timeline_is_sequential(self):
        observer = self._observed_profile()
        doc = build_trace(observer)
        constructs = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["tid"] == 1 and e["cat"] == "construct"
        ]
        cursor = 0.0
        for event in constructs:
            assert event["ts"] >= cursor - 1e-9
            cursor = event["ts"] + event["dur"]

    def test_validator_rejects_malformed_events(self):
        observer = self._observed_profile()
        doc = build_trace(observer)
        bad = json.loads(json.dumps(doc))
        bad["traceEvents"][3]["dur"] = -1.0
        bad["traceEvents"][4].pop("name")
        bad["traceEvents"][5]["ph"] = "Z"
        with pytest.raises(TraceSchemaError) as excinfo:
            validate_trace(bad)
        message = str(excinfo.value)
        assert "dur" in message and "name" in message and "ph" in message

    def test_validator_rejects_wrong_schema(self):
        with pytest.raises(TraceSchemaError, match="schema"):
            validate_trace({"schema": "nope", "traceEvents": [], "otherData": {}})

    def test_profile_cli_writes_trace(self, tmp_path):
        from repro.__main__ import main

        out = tmp_path / "prof.json"
        trace = tmp_path / "trace.json"
        assert (
            main(
                [
                    "profile",
                    "bfs",
                    "--scale",
                    "0.1",
                    "--output",
                    str(out),
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        validate_trace(json.loads(trace.read_text()))


# -- benchmark ledger -------------------------------------------------------


def _fast_entry(**overrides):
    defaults = dict(
        scale=0.1, repeats=1, workloads=["BFS"], calibration=1_000_000.0
    )
    defaults.update(overrides)
    return run_benchmarks(**defaults)


class TestLedger:
    def test_run_benchmarks_validates_and_covers_configs(self):
        doc = _fast_entry()
        validate_ledger(doc)
        assert doc["schema"] == LEDGER_SCHEMA_VERSION
        labels = {(r["workload"], r["config"]) for r in doc["results"]}
        assert labels == {
            ("BFS", "CPU"),
            ("BFS", "GPU"),
            ("BFS", "GPU+PTROPT"),
            ("BFS", "GPU+L3OPT"),
            ("BFS", "GPU+ALL"),
            ("BFS", "HYBRID"),
            ("BFS", "VECTOR"),
        }
        for row in doc["results"]:
            assert row["instructions"] > 0
            assert row["norm_instr_per_s"] > 0

    def test_entries_number_monotonically(self, tmp_path):
        doc = _fast_entry()
        first = write_entry(doc, str(tmp_path))
        second = write_entry(doc, str(tmp_path))
        assert first.endswith("BENCH_0.json")
        assert second.endswith("BENCH_1.json")
        assert [n for n, _ in ledger_entries(str(tmp_path))] == [0, 1]
        assert load_latest(str(tmp_path))["schema"] == LEDGER_SCHEMA_VERSION

    def test_diff_flags_regressions_past_threshold(self):
        old = _fast_entry()
        new = json.loads(json.dumps(old))
        for row in new["results"]:
            if row["config"] == "GPU+ALL":
                row["norm_instr_per_s"] = row["norm_instr_per_s"] * 0.5
            if row["config"] == "GPU":
                row["norm_instr_per_s"] = row["norm_instr_per_s"] * 0.9
        diffs = diff_ledgers(old, new)
        assert len(diffs) == 7
        failing = regressions(diffs, threshold=0.15)
        assert [d["config"] for d in failing] == ["GPU+ALL"]
        assert failing[0]["delta"] == pytest.approx(-0.5)
        # The gate judges the geomean: one noisy cell at -50% plus one
        # at -10% across seven cells stays just inside a 15% threshold.
        overall = geomean_delta(diffs)
        assert overall == pytest.approx((0.5 * 0.9) ** (1 / 7) - 1)
        assert -0.15 < overall < 0

    def test_fixed_calibration_pins_every_cell(self):
        doc = _fast_entry()
        assert all(
            row["calibration_ops_per_s"] == 1_000_000.0
            for row in doc["results"]
        )

    def test_validator_rejects_malformed_entries(self):
        with pytest.raises(LedgerSchemaError, match="schema"):
            validate_ledger({"schema": "nope", "meta": {}, "results": []})
        doc = _fast_entry()
        broken = json.loads(json.dumps(doc))
        broken["results"][0].pop("norm_instr_per_s")
        broken["results"][1]["wall_seconds"] = -1
        with pytest.raises(LedgerSchemaError) as excinfo:
            validate_ledger(broken)
        message = str(excinfo.value)
        assert "norm_instr_per_s" in message and "wall_seconds" in message

    def test_bench_cli_writes_entry_and_diffs(self, tmp_path, capsys):
        from repro.__main__ import main

        argv = [
            "bench",
            "--scale",
            "0.1",
            "--workloads",
            "BFS",
            "--dir",
            str(tmp_path),
        ]
        assert main(argv) == 0
        assert (tmp_path / "BENCH_0.json").exists()
        validate_ledger(json.loads((tmp_path / "BENCH_0.json").read_text()))
        capsys.readouterr()
        assert main(argv) == 0  # second run diffs against the first
        assert "DELTA" in capsys.readouterr().out
        assert (tmp_path / "BENCH_1.json").exists()

    def test_bench_cli_rejects_unknown_workload(self, capsys):
        from repro.__main__ import main

        assert main(["bench", "--workloads", "Nope"]) == 1
        err = capsys.readouterr().err
        assert "unknown workload" in err and "BFS" in err
