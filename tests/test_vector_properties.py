"""Property tests (hypothesis) for divergence-mask edge cases.

Each named edge case drives the columnar vector engine through a mask
regime the dense-frame scheduler has to get exactly right — empty index
spaces, single-lane chunks, uniformly-taken and fully-diverged branches,
a loop that only one lane keeps iterating, and a store that traps on
exactly one lane — and checks the result (region bytes, outputs, trap)
against ``CompiledEngine`` lane by lane.
"""

import warnings

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ir.types import I32
from repro.passes import OptConfig
from repro.runtime import ConcordRuntime, compile_source, ultrabook

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_BRANCH_SOURCE = """
class Branchy {
public:
  int* data;
  int threshold;
  void operator()(int i) {
    int x = data[i];
    if (x < threshold) {
      data[i] = x * 3 + 1;
    } else {
      data[i] = x - 7;
    }
  }
};
"""

_LOOP_SOURCE = """
class Loopy {
public:
  int* data;
  int* trip;
  void operator()(int i) {
    int acc = 0;
    for (int j = 0; j < trip[i]; j++) {
      acc = acc + j + data[i];
    }
    data[i] = acc;
  }
};
"""

_TRAP_SOURCE = """
class Trappy {
public:
  int* data;
  int* index;
  void operator()(int i) {
    data[index[i]] = data[i] + 1;
  }
};
"""


def _run(source, cls_name, fields, n, engine):
    """Run one construct; returns (region bytes, outputs-or-None, trap).

    ``fields`` maps attribute name -> list of ints (arrays) or int
    (scalars); the first array's handle is returned as the output array.
    """
    from repro.backend.vector import clear_memos

    clear_memos()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        prog = compile_source(source, OptConfig.gpu_all())
        rt = ConcordRuntime(prog, ultrabook(), engine=engine)
        body = rt.new(cls_name)
        out = None
        for attr, value in fields.items():
            if isinstance(value, list):
                arr = rt.new_array(I32, max(1, len(value)))
                arr.fill_from(value)
                setattr(body, attr, arr)
                if out is None:
                    out = arr
            else:
                setattr(body, attr, value)
        trap = None
        try:
            rt.parallel_for_hetero(n, body, on_cpu=False)
        except Exception as exc:  # noqa: BLE001 - trap equivalence check
            trap = f"{type(exc).__name__}: {exc}"
        outputs = out.to_list() if out is not None and trap is None else None
        return bytes(rt.region.physical.data), outputs, trap


def _assert_engines_agree(source, cls_name, fields, n):
    com = _run(source, cls_name, fields, n, "compiled")
    vec = _run(source, cls_name, fields, n, "vector")
    assert vec[2] == com[2], f"trap mismatch: {vec[2]!r} vs {com[2]!r}"
    assert vec[1] == com[1], "outputs diverged"
    assert vec[0] == com[0], "region bytes diverged"


class TestDivergenceMaskEdgeCases:
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=8))
    @SLOW
    def test_empty_index_space(self, values):
        _assert_engines_agree(
            _BRANCH_SOURCE,
            "Branchy",
            {"data": values, "threshold": 0},
            n=0,
        )

    @given(st.integers(-100, 100), st.integers(-100, 100))
    @SLOW
    def test_single_lane_chunk(self, value, threshold):
        _assert_engines_agree(
            _BRANCH_SOURCE,
            "Branchy",
            {"data": [value], "threshold": threshold},
            n=1,
        )

    @given(st.lists(st.integers(-100, 100), min_size=2, max_size=32))
    @SLOW
    def test_all_lanes_taken(self, values):
        # threshold above every element: the branch is uniformly true and
        # the engine must take the unpartitioned fast path.
        _assert_engines_agree(
            _BRANCH_SOURCE,
            "Branchy",
            {"data": values, "threshold": max(values) + 1},
            n=len(values),
        )

    @given(st.lists(st.integers(-100, 100), min_size=2, max_size=32))
    @SLOW
    def test_all_lanes_diverged(self, values):
        # threshold at/below every element: uniformly false.
        _assert_engines_agree(
            _BRANCH_SOURCE,
            "Branchy",
            {"data": values, "threshold": min(values)},
            n=len(values),
        )

    @given(
        st.lists(st.integers(-5, 5), min_size=2, max_size=16),
        st.data(),
    )
    @SLOW
    def test_one_lane_iterates_1000x(self, values, data):
        # Every lane's loop drains after at most 3 trips except one that
        # keeps the frame alive for 1000 iterations — the mask must
        # stay correct long after every other lane retired.
        lane = data.draw(st.integers(0, len(values) - 1))
        trips = [abs(v) % 4 for v in values]
        trips[lane] = 1000
        _assert_engines_agree(
            _LOOP_SOURCE,
            "Loopy",
            {"data": values, "trip": trips},
            n=len(values),
        )

    @given(
        st.lists(st.integers(0, 50), min_size=2, max_size=16),
        st.data(),
    )
    @SLOW
    def test_store_traps_on_one_lane(self, values, data):
        # One lane's store lands far outside the shared surface; the
        # vector engine must report the same trap as the scalar engine
        # and leave the same region bytes behind (its rollback + scalar
        # re-run commits exactly the lanes the scalar engine commits).
        lane = data.draw(st.integers(0, len(values) - 1))
        indices = list(range(len(values)))
        indices[lane] = 1 << 26  # bytes offset 1<<28 > 16 MiB region
        _assert_engines_agree(
            _TRAP_SOURCE,
            "Trappy",
            {"data": values, "index": indices},
            n=len(values),
        )
