"""Observability layer (spans, counters, profiles) and the trace-cap /
reduce-join fixes that ride along with it.

Covers the contract in docs/OBSERVABILITY.md:

* spans nest, carry wall/simulated seconds, and cover compile + every
  construct phase (jit, launch, reduce_tree, host_join);
* counters are published by the engines, timing models, code cache and
  private pool — and only when an observer is attached;
* per-kernel profiles attribute >= 95% of each construct's simulated
  seconds to named phases, and the emitted document validates against the
  published schema (JSON and CSV renderings);
* attaching an observer never changes the simulated numbers;
* the global memory-event budget holds across work-items (regression for
  the per-lane-floor overflow);
* a reduce body with no join kernel on any device degrades to a
  ConcordWarning instead of crashing;
* the work-group tree reduction matches a sequential join for every
  n in [1, 64] and group size in {3, 4, 16} (ragged non-power-of-two
  tails included).
"""

import json
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.runtime.runtime as runtime_module
from repro.gpu.cache import CacheModel
from repro.ir.types import F32, I32
from repro.obs import (
    CounterRegistry,
    Observer,
    PROFILE_SCHEMA_VERSION,
    ProfileSchemaError,
    build_profile,
    profile_to_csv,
    profile_workload,
    validate_profile,
)
from repro.runtime import ConcordRuntime, OptConfig, compile_source, ultrabook
from repro.runtime.compiler import ConcordWarning

SUM_SRC = """
class ISum {
public:
  int* data;
  int total;
  void operator()(int i) { total += data[i]; }
  void join(ISum& other) { total += other.total; }
};
"""

TOUCH_SRC = """
class TouchBody {
public:
  int* data;
  void operator()(int i) { data[i] = data[i] + 1; }
};
"""


# -- counters ---------------------------------------------------------------


class TestCounterRegistry:
    def test_add_get_contains(self):
        counters = CounterRegistry()
        counters.add("a.b")
        counters.add("a.b", 4)
        counters.add("c", 2.5)
        assert counters["a.b"] == 5
        assert counters.get("c") == 2.5
        assert counters.get("missing", -1) == -1
        assert "a.b" in counters and "missing" not in counters
        assert len(counters) == 2

    def test_as_dict_sorted_and_merge(self):
        a = CounterRegistry()
        a.add("z", 1)
        a.add("a", 2)
        assert list(a.as_dict()) == ["a", "z"]
        b = CounterRegistry()
        b.add("z", 10)
        b.add("new", 3)
        a.merge(b)
        assert a.as_dict() == {"a": 2, "new": 3, "z": 11}
        a.clear()
        assert len(a) == 0


# -- spans ------------------------------------------------------------------


class TestSpans:
    def test_nesting_and_categories(self):
        obs = Observer()
        with obs.span("outer", "construct", n=4) as outer:
            with obs.span("inner", "phase"):
                pass
            assert obs.current_span is outer
        assert obs.current_span is obs.root
        assert [s.name for s in obs.spans()] == ["outer", "inner"]
        assert [s.name for s in obs.spans("phase")] == ["inner"]
        assert outer.attrs == {"n": 4}
        assert outer.children[0].name == "inner"
        assert outer.wall_seconds >= outer.children[0].wall_seconds >= 0.0

    def test_to_dict_round_trip(self):
        obs = Observer()
        with obs.span("a", "phase") as span:
            span.sim_seconds = 1.5
        doc = obs.root.children[0].to_dict()
        assert doc["name"] == "a"
        assert doc["sim_seconds"] == 1.5
        assert doc["wall_seconds"] >= 0.0


# -- profile document -------------------------------------------------------


class TestProfileDocument:
    def _observer_with_launch(self, seconds=1.0, attributed=1.0):
        obs = Observer()
        obs.record_launch(
            "kernel.K",
            "for",
            "gpu",
            8,
            seconds=seconds,
            energy_joules=2.0,
            phases={"launch": attributed},
            counters={"engine.instructions": 10},
        )
        return obs

    def test_build_and_validate(self):
        obs = self._observer_with_launch()
        doc = build_profile(obs, meta={"workload": "X"})
        validate_profile(doc)
        assert doc["schema"] == PROFILE_SCHEMA_VERSION
        assert doc["totals"]["constructs"] == 1
        assert doc["totals"]["attributed_fraction"] == 1.0
        assert doc["kernels"]["kernel.K"]["launches"] == 1
        assert doc["constructs"][0]["counters"]["engine.instructions"] == 10

    def test_validation_rejects_leaky_attribution(self):
        obs = self._observer_with_launch(seconds=1.0, attributed=0.5)
        doc = build_profile(obs)
        with pytest.raises(ProfileSchemaError, match="leaking"):
            validate_profile(doc)
        validate_profile(doc, min_attributed_fraction=0.4)

    def test_validation_rejects_wrong_schema(self):
        doc = build_profile(Observer())
        doc["schema"] = "other/v0"
        with pytest.raises(ProfileSchemaError, match="schema"):
            validate_profile(doc)

    def test_kernel_profile_aggregates_launches(self):
        obs = Observer()
        for _ in range(3):
            obs.record_launch(
                "kernel.K", "for", "gpu", 5, 1.0, 0.5, {"launch": 1.0}
            )
        profile = obs.kernels["kernel.K"]
        assert profile.launches == 3
        assert profile.work_items == 15
        assert profile.seconds == pytest.approx(3.0)


# -- profiled workloads -----------------------------------------------------


class TestProfileWorkload:
    def test_for_workload_profile(self):
        doc = profile_workload("bfs", scale=0.1)
        validate_profile(doc)
        assert doc["meta"]["workload"] == "BFS"
        assert doc["totals"]["constructs"] > 0
        assert doc["totals"]["attributed_fraction"] >= 0.95
        for construct in doc["constructs"]:
            assert set(construct["phases"]) <= {
                "jit",
                "launch",
                "reduce_tree",
                "host_join",
            }
        assert doc["counters"]["engine.instructions"] > 0
        assert doc["passes"], "pass statistics must be recorded"
        assert any(key.startswith("passes.") for key in doc["counters"])
        span_names = {span["name"] for span in doc["spans"]}
        assert "compile" in span_names

    def test_reduce_workload_has_all_phases(self):
        doc = profile_workload("clothphysics", scale=0.1)
        validate_profile(doc)
        reduces = [c for c in doc["constructs"] if c["construct"] == "reduce"]
        assert reduces
        phases = reduces[0]["phases"]
        assert set(phases) == {"jit", "launch", "reduce_tree", "host_join"}
        assert phases["launch"] > 0
        assert phases["reduce_tree"] > 0
        assert phases["host_join"] > 0
        assert reduces[0]["attributed_fraction"] >= 0.95

    def test_compile_spans_include_svm_lower(self):
        doc = profile_workload("bfs", scale=0.1)

        def names(spans):
            for span in spans:
                yield span["name"]
                yield from names(span.get("children", ()))

        all_names = set(names(doc["spans"]))
        assert {"compile", "frontend", "standard_pipeline", "svm_lower"} <= all_names

    def test_csv_rendering(self):
        doc = profile_workload("bfs", scale=0.1)
        text = profile_to_csv(doc)
        header, *rows = text.strip().splitlines()
        assert header.startswith("index,kernel,construct,device,n,seconds")
        assert "phase:launch" in header
        assert len(rows) == doc["totals"]["constructs"]

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            profile_workload("nope")

    def test_cpu_profile(self):
        doc = profile_workload("bfs", scale=0.1, on_cpu=True)
        validate_profile(doc)
        assert all(c["device"] == "cpu" for c in doc["constructs"])
        assert doc["counters"]["cpu.branches"] > 0


class TestObserverDoesNotPerturb:
    """Zero-overhead-by-default has a semantic side: attaching an observer
    may not change any simulated number."""

    @pytest.mark.parametrize("name", ["bfs", "clothphysics"])
    def test_same_simulated_seconds(self, name):
        from repro.workloads import all_workloads

        workloads = {k.lower(): v for k, v in all_workloads().items()}
        results = []
        for observer in (None, Observer()):
            workload = workloads[name]()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                outcome = workload.execute(
                    None, ultrabook(), scale=0.1, observer=observer
                )
            results.append((outcome.seconds, outcome.energy_joules))
        assert results[0] == results[1]

    def test_runtime_without_observer_has_no_sink(self):
        program = compile_source(TOUCH_SRC, OptConfig.gpu_all())
        rt = ConcordRuntime(program, ultrabook())
        assert rt.obs is None
        assert rt.code_cache.counters is None
        assert rt.private_pool.counters is None

    def test_self_overhead_is_counted_not_hidden(self):
        """The observer accounts for its own cost: every span charges its
        wall time to ``obs.span_ns`` and every harvested trace bumps
        ``obs.counter_flushes`` — so 'observation was free' is a checkable
        claim, not an assumption."""
        observer = Observer()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            profile_workload("bfs", scale=0.1, observer=observer)
        assert observer.counters.get("obs.span_ns") > 0
        flushes = observer.counters.get("obs.counter_flushes")
        assert flushes == len(observer.constructs)


# -- CLI --------------------------------------------------------------------


class TestProfileCli:
    def test_json_output_file(self, tmp_path):
        from repro.__main__ import main

        out = tmp_path / "bfs.json"
        assert main(["profile", "bfs", "--scale", "0.1", "--output", str(out)]) == 0
        doc = json.loads(out.read_text())
        validate_profile(doc)
        assert doc["meta"]["scale"] == 0.1

    def test_csv_to_stdout(self, capsys):
        from repro.__main__ import main

        assert main(["profile", "bfs", "--scale", "0.1", "--format", "csv"]) == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("index,kernel,construct")

    def test_unknown_workload_errors(self, capsys):
        from repro.__main__ import main

        assert main(["profile", "nope"]) == 1
        assert "unknown workload" in capsys.readouterr().err


# -- counter emission sites -------------------------------------------------


class TestEmissionSites:
    def test_cache_model_publish(self):
        cache = CacheModel(1024, 64, 2)
        cache.access(1)
        cache.access(1)
        cache.access(2)
        counters = CounterRegistry()
        cache.publish(counters, "gpu.l3")
        assert counters["gpu.l3.hits"] == 1
        assert counters["gpu.l3.misses"] == 2

    def test_private_pool_counters(self):
        from repro.exec import PrivateMemoryPool

        counters = CounterRegistry()
        pool = PrivateMemoryPool(64, counters=counters)
        buf = pool.acquire()
        pool.release(buf)
        pool.acquire()
        assert counters["private_pool.alloc"] == 1
        assert counters["private_pool.reuse"] == 1

    def test_runtime_publishes_cache_and_engine_counters(self):
        observer = Observer()
        program = compile_source(TOUCH_SRC, OptConfig.gpu_all())
        rt = ConcordRuntime(program, ultrabook(), observer=observer)
        data = rt.new_array(I32, 32)
        data.fill_from([0] * 32)
        body = rt.new("TouchBody")
        body.data = data
        rt.parallel_for_hetero(32, body)
        counters = observer.counters
        assert counters["engine.instructions"] > 0
        assert counters["engine.invocations.gpu"] == 32
        assert counters["mem_events.kept"] > 0
        assert counters["code_cache.compilations"] >= 1
        assert counters["gpu.mem_transactions"] > 0


# -- satellite: global memory-event budget ----------------------------------


class TestGlobalMemEventBudget:
    def _run_touch(self, n, cap):
        program = compile_source(TOUCH_SRC, OptConfig.gpu_all())
        rt = ConcordRuntime(
            program, ultrabook(), mem_event_cap=cap, keep_traces=True
        )
        data = rt.new_array(I32, n)
        data.fill_from([0] * n)
        body = rt.new("TouchBody")
        body.data = data
        rt.parallel_for_hetero(n, body)
        return rt.trace_log

    def test_large_n_respects_global_budget(self):
        """Regression: with every lane floor-capped at 1000 events, the
        old per-lane cap retained up to n * 1000 events — 400 lanes with a
        500-event budget kept all of their events.  The budget is now
        global, with the overflow counted, not silently lost."""
        per_item = len(self._run_touch(1, 120_000)[0].mem_events)
        assert per_item > 0
        n, cap = 400, 500
        traces = self._run_touch(n, cap)
        kept = sum(len(t.mem_events) for t in traces)
        dropped = sum(t.mem_events_dropped for t in traces)
        assert kept <= cap
        assert kept + dropped == per_item * n  # overflow counted, not lost
        assert dropped > 0

    def test_small_runs_unaffected(self):
        """At default-cap scales nothing changes: every event is kept."""
        per_item = len(self._run_touch(1, 120_000)[0].mem_events)
        traces = self._run_touch(64, 120_000)
        assert sum(len(t.mem_events) for t in traces) == per_item * 64
        assert sum(t.mem_events_dropped for t in traces) == 0


# -- satellite: reduce-join fallback -----------------------------------------


class TestReduceJoinFallback:
    def test_missing_joins_warn_instead_of_crash(self):
        program = compile_source(SUM_SRC, OptConfig.gpu_all())
        kinfo = program.kernel_for("ISum")
        kinfo.join_kernel = None
        kinfo.gpu_join_kernel = None
        rt = ConcordRuntime(program, ultrabook())
        data = rt.new_array(I32, 8)
        data.fill_from(list(range(8)))
        body = rt.new("ISum")
        body.data = data
        body.total = 0
        with pytest.warns(ConcordWarning, match="no join"):
            report = rt.parallel_reduce_hetero(8, body)
        assert report.device == "gpu"
        assert body.total == 0  # nothing combined, but nothing crashed

    def test_gpu_join_falls_back_to_host_join(self):
        """Dropping only the device join keeps the reduction correct via
        the host join form."""
        program = compile_source(SUM_SRC, OptConfig.gpu_all())
        kinfo = program.kernel_for("ISum")
        kinfo.gpu_join_kernel = None
        rt = ConcordRuntime(program, ultrabook())
        data = rt.new_array(I32, 40)
        values = [(i * 7) % 13 for i in range(40)]
        data.fill_from(values)
        body = rt.new("ISum")
        body.data = data
        body.total = 0
        rt.parallel_reduce_hetero(40, body)
        assert body.total == sum(values)


# -- satellite: tree-reduction tail property ---------------------------------


@pytest.fixture(scope="module")
def sum_runtime():
    return ConcordRuntime(compile_source(SUM_SRC, OptConfig.gpu_all()), ultrabook())


class TestTreeReductionTails:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n=st.integers(min_value=1, max_value=64),
        group=st.sampled_from([3, 4, 16]),
    )
    def test_reduce_matches_sequential_join(self, sum_runtime, n, group):
        """For any work-group size (including non-power-of-two, whose tree
        loop has a ragged tail) the hierarchical reduction must combine
        every work-item's contribution exactly once — integer sums make
        any miss or double-count exact."""
        rt = sum_runtime
        values = [(i * 31 + 7) % 97 for i in range(n)]
        data = rt.new_array(I32, n)
        data.fill_from(values)
        body = rt.new("ISum")
        body.data = data
        body.total = 0
        original = runtime_module.REDUCTION_GROUP_SIZE
        runtime_module.REDUCTION_GROUP_SIZE = group
        try:
            rt.parallel_reduce_hetero(n, body)
        finally:
            runtime_module.REDUCTION_GROUP_SIZE = original
        assert body.total == sum(values), (n, group)
