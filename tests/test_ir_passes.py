"""Unit tests for the classical optimization passes on hand-built IR."""

import pytest

from repro.ir import (
    BOOL,
    Constant,
    DominatorTree,
    F32,
    Function,
    FunctionType,
    I32,
    IRBuilder,
    add_phi_incoming,
    const_int,
    find_loops,
    verify_function,
)
from repro.exec import Interpreter
from repro.passes import (
    common_subexpression_elimination,
    constant_fold,
    dead_code_elimination,
    promote_memory_to_registers,
    simplify_cfg,
    unroll_loops,
)
from repro.svm import SharedRegion


def make_function(name="f", params=(I32,), names=("n",), ret=I32):
    fn = Function(name, FunctionType(ret, tuple(params)), list(names))
    return fn


def build_count_loop(body_fn=None):
    """int f(int n) { s = 0; for i in [0,n): s += body(i); return s; }
    built in alloca form (pre-mem2reg)."""
    fn = make_function()
    entry = fn.new_block("entry")
    header = fn.new_block("header")
    body = fn.new_block("body")
    done = fn.new_block("done")
    b = IRBuilder(entry)
    s = b.alloca(I32, "s")
    i = b.alloca(I32, "i")
    b.store(b.i32(0), s)
    b.store(b.i32(0), i)
    b.br(header)
    b.position_at_end(header)
    iv = b.load(i, "iv")
    cond = b.icmp("slt", iv, fn.args[0], "cond")
    b.condbr(cond, body, done)
    b.position_at_end(body)
    sv = b.load(s, "sv")
    iv2 = b.load(i, "iv2")
    delta = body_fn(b, iv2) if body_fn else iv2
    b.store(b.add(sv, delta, "s2"), s)
    b.store(b.add(iv2, b.i32(1), "i2"), i)
    b.br(header)
    b.position_at_end(done)
    b.ret(b.load(s, "ret"))
    return fn


def run(fn, *args):
    region = SharedRegion(1 << 16)
    return Interpreter(region, "cpu").call_function(fn, list(args))


class TestMem2Reg:
    def test_promotes_all_scalar_allocas(self):
        fn = build_count_loop()
        verify_function(fn)
        assert promote_memory_to_registers(fn)
        verify_function(fn)
        assert not any(i.op == "alloca" for i in fn.instructions())
        assert not any(i.op in ("load", "store") for i in fn.instructions())

    def test_semantics_preserved(self):
        fn = build_count_loop()
        results_before = [run(fn, n) for n in range(8)]
        fn2 = build_count_loop()
        promote_memory_to_registers(fn2)
        results_after = [run(fn2, n) for n in range(8)]
        assert results_before == results_after == [sum(range(n)) for n in range(8)]

    def test_inserts_phi_at_join(self):
        fn = build_count_loop()
        promote_memory_to_registers(fn)
        header = fn.blocks[1]
        assert len(header.phis()) == 2  # i and s

    def test_second_run_is_noop(self):
        fn = build_count_loop()
        assert promote_memory_to_registers(fn)
        assert not promote_memory_to_registers(fn)


class TestConstantFolding:
    def _unary_fn(self, emit):
        fn = make_function(params=(), names=())
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        value = emit(b)
        b.ret(value)
        return fn

    def test_folds_arithmetic(self):
        fn = self._unary_fn(lambda b: b.add(b.i32(2), b.i32(3), "x"))
        assert constant_fold(fn)
        assert run(fn) == 5

    def test_folds_comparison_chain(self):
        def emit(b):
            c = b.icmp("slt", b.i32(1), b.i32(2), "c")
            return b.select(c, b.i32(10), b.i32(20), "sel")

        fn = self._unary_fn(emit)
        constant_fold(fn)
        # select of constant condition folds away entirely
        ret = fn.blocks[0].terminator
        assert isinstance(ret.operands[0], Constant)
        assert ret.operands[0].value == 10

    def test_folds_condbr_to_br(self):
        fn = make_function(params=(), names=())
        entry = fn.new_block("entry")
        t = fn.new_block("t")
        f = fn.new_block("f")
        b = IRBuilder(entry)
        b.condbr(Constant(BOOL, 1), t, f)
        b.position_at_end(t)
        b.ret(b.i32(1))
        b.position_at_end(f)
        b.ret(b.i32(0))
        assert constant_fold(fn)
        assert entry.terminator.op == "br"
        dead_code_elimination(fn)
        assert len(fn.blocks) == 2

    def test_identity_simplifications(self):
        fn = make_function()
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        x = b.add(fn.args[0], b.i32(0), "x0")  # n + 0 -> n
        y = b.mul(x, b.i32(1), "y")  # x * 1 -> x
        b.ret(y)
        assert constant_fold(fn)
        assert run(fn, 42) == 42
        # both instructions should be gone after DCE
        dead_code_elimination(fn)
        assert sum(1 for _ in fn.instructions()) == 1  # just ret

    def test_division_by_zero_not_folded(self):
        fn = self._unary_fn(lambda b: b.binop("sdiv", b.i32(1), b.i32(0), "d"))
        constant_fold(fn)
        assert any(i.op == "sdiv" for i in fn.instructions())

    def test_float_f32_rounding(self):
        fn = make_function(params=(), names=(), ret=F32)
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        v = b.binop("fadd", Constant(F32, 0.1), Constant(F32, 0.2), "v")
        b.ret(v)
        constant_fold(fn)
        import struct as _s

        expect = _s.unpack("f", _s.pack("f", _s.unpack("f", _s.pack("f", 0.1))[0]
                                        + _s.unpack("f", _s.pack("f", 0.2))[0]))[0]
        assert run(fn) == pytest.approx(expect)


class TestCSE:
    def test_removes_duplicate_expression(self):
        fn = make_function()
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        a1 = b.add(fn.args[0], b.i32(5), "a1")
        a2 = b.add(fn.args[0], b.i32(5), "a2")
        b.ret(b.add(a1, a2, "sum"))
        assert common_subexpression_elimination(fn)
        adds = [i for i in fn.instructions() if i.op == "add"]
        assert len(adds) == 2  # one of the dup pair + the final sum
        assert run(fn, 10) == 30

    def test_commutative_canonicalization(self):
        fn = make_function()
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        a1 = b.add(fn.args[0], b.i32(5), "a1")
        a2 = b.add(b.i32(5), fn.args[0], "a2")  # swapped operands
        b.ret(b.binop("xor", a1, a2, "x"))
        assert common_subexpression_elimination(fn)
        assert run(fn, 9) == 0

    def test_does_not_merge_loads(self):
        fn = make_function(params=(), names=())
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        slot = b.alloca(I32, "slot")
        b.store(b.i32(1), slot)
        l1 = b.load(slot, "l1")
        b.store(b.i32(2), slot)
        l2 = b.load(slot, "l2")
        b.ret(b.add(l1, l2, "sum"))
        common_subexpression_elimination(fn)
        loads = [i for i in fn.instructions() if i.op == "load"]
        assert len(loads) == 2
        assert run(fn) == 3

    def test_dominator_scoping(self):
        # An expression in one branch must not be reused in a sibling branch.
        fn = make_function()
        entry = fn.new_block("entry")
        t = fn.new_block("t")
        f = fn.new_block("f")
        b = IRBuilder(entry)
        c = b.icmp("sgt", fn.args[0], b.i32(0), "c")
        b.condbr(c, t, f)
        b.position_at_end(t)
        x1 = b.add(fn.args[0], b.i32(7), "x1")
        b.ret(x1)
        b.position_at_end(f)
        x2 = b.add(fn.args[0], b.i32(7), "x2")
        b.ret(x2)
        common_subexpression_elimination(fn)
        verify_function(fn)
        assert run(fn, 1) == 8 and run(fn, -1) == 6


class TestDCE:
    def test_removes_unused_pure_instruction(self):
        fn = make_function()
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        b.add(fn.args[0], b.i32(1), "dead")
        b.ret(fn.args[0])
        assert dead_code_elimination(fn)
        assert sum(1 for _ in fn.instructions()) == 1

    def test_keeps_stores(self):
        fn = make_function()
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        slot = b.alloca(I32, "s")
        b.store(fn.args[0], slot)
        b.ret(b.load(slot, "v"))
        dead_code_elimination(fn)
        assert any(i.op == "store" for i in fn.instructions())

    def test_removes_transitively_dead_chain(self):
        fn = make_function()
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        a = b.add(fn.args[0], b.i32(1), "a")
        c = b.mul(a, b.i32(2), "c")
        b.binop("xor", c, b.i32(3), "d")  # unused
        b.ret(fn.args[0])
        dead_code_elimination(fn)
        assert sum(1 for _ in fn.instructions()) == 1

    def test_removes_unreachable_blocks(self):
        fn = make_function()
        entry = fn.new_block("entry")
        orphan = fn.new_block("orphan")
        b = IRBuilder(entry)
        b.ret(fn.args[0])
        b.position_at_end(orphan)
        b.ret(fn.args[0])
        assert dead_code_elimination(fn)
        assert len(fn.blocks) == 1

    def test_removes_dead_alloca_with_stores(self):
        fn = make_function()
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        slot = b.alloca(I32, "never_read")
        b.store(fn.args[0], slot)
        b.ret(fn.args[0])
        assert dead_code_elimination(fn)
        assert sum(1 for _ in fn.instructions()) == 1


class TestSimplifyCFG:
    def test_merges_linear_chain(self):
        fn = make_function()
        a = fn.new_block("a")
        c = fn.new_block("c")
        b = IRBuilder(a)
        x = b.add(fn.args[0], b.i32(1), "x")
        b.br(c)
        b.position_at_end(c)
        b.ret(x)
        assert simplify_cfg(fn)
        assert len(fn.blocks) == 1
        assert run(fn, 4) == 5

    def test_removes_forwarding_block(self):
        fn = make_function()
        entry = fn.new_block("entry")
        fwd = fn.new_block("fwd")
        t = fn.new_block("t")
        f = fn.new_block("f")
        b = IRBuilder(entry)
        c = b.icmp("sgt", fn.args[0], b.i32(0), "c")
        b.condbr(c, fwd, f)
        b.position_at_end(fwd)
        b.br(t)
        b.position_at_end(t)
        b.ret(b.i32(1))
        b.position_at_end(f)
        b.ret(b.i32(0))
        assert simplify_cfg(fn)
        verify_function(fn)
        assert run(fn, 5) == 1
        assert run(fn, -5) == 0


class TestUnroll:
    def _ssa_loop(self):
        fn = make_function()
        entry = fn.new_block("entry")
        header = fn.new_block("header")
        body = fn.new_block("body")
        done = fn.new_block("done")
        b = IRBuilder(entry)
        b.br(header)
        b.position_at_end(header)
        iphi = b.phi(I32, "i")
        sphi = b.phi(I32, "s")
        cond = b.icmp("slt", iphi, fn.args[0], "cond")
        b.condbr(cond, body, done)
        b.position_at_end(body)
        s2 = b.add(sphi, iphi, "s2")
        i2 = b.add(iphi, b.i32(1), "i2")
        b.br(header)
        b.position_at_end(done)
        b.ret(sphi)
        add_phi_incoming(iphi, b.i32(0), entry)
        add_phi_incoming(iphi, i2, body)
        add_phi_incoming(sphi, b.i32(0), entry)
        add_phi_incoming(sphi, s2, body)
        return fn

    def test_unroll_preserves_semantics_all_trip_counts(self):
        fn = self._ssa_loop()
        assert unroll_loops(fn)
        verify_function(fn)
        for n in range(0, 30):
            assert run(fn, n) == sum(range(n))

    def test_unroll_replicates_body(self):
        fn = self._ssa_loop()
        blocks_before = len(fn.blocks)
        unroll_loops(fn)
        assert len(fn.blocks) > blocks_before


class TestCFGAnalyses:
    def test_dominator_tree(self):
        fn = build_count_loop()
        dt = DominatorTree(fn)
        entry, header, body, done = fn.blocks
        assert dt.dominates(entry, done)
        assert dt.dominates(header, body)
        assert not dt.dominates(body, done)

    def test_loop_detection(self):
        fn = build_count_loop()
        loops = find_loops(fn)
        assert len(loops) == 1
        assert loops[0].header.name == "header"
        assert loops[0].is_innermost()
