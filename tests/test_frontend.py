"""Tests for the MiniC++ frontend: lexer, parser, sema, lowering, and
end-to-end execution of compiled functions on the host interpreter."""

import pytest

from repro.exec import Interpreter
from repro.minicpp import LexError, ParseError, Sema, SemaError, parse, tokenize
from repro.minicpp.lower import lower_translation_unit
from repro.runtime import ConcordRuntime, OptConfig, compile_source
from repro.svm import SharedRegion


def run_fn(source: str, fn_prefix: str, *args):
    """Compile and run a free function on the host interpreter."""
    prog = compile_source(source, OptConfig.gpu())
    module = prog.module
    matches = [f for n, f in module.functions.items() if n.startswith(fn_prefix)]
    assert matches, f"no function starting with {fn_prefix}: {list(module.functions)}"
    region = SharedRegion(1 << 16)
    return Interpreter(region, "cpu").call_function(matches[0], list(args))


class TestLexer:
    def test_tokens(self):
        toks = tokenize("int x = 42; // comment\nfloat y = 1.5f;")
        kinds = [t.kind for t in toks]
        assert kinds[0] == "keyword" and toks[0].text == "int"
        assert toks[3].kind == "int" and toks[3].value == 42
        assert any(t.kind == "float" and t.value == 1.5 for t in toks)

    def test_block_comments_and_operators(self):
        toks = tokenize("a /* skip */ -> b :: c <<= 3")
        texts = [t.text for t in toks if t.kind == "op"]
        assert "->" in texts and "::" in texts and "<<=" in texts

    def test_char_literals(self):
        toks = tokenize(r"'a' '\n' '\0'")
        values = [t.value for t in toks if t.kind == "char"]
        assert values == [97, 10, 0]

    def test_hex_literals(self):
        toks = tokenize("0xFF 0x10")
        assert [t.value for t in toks if t.kind == "int"] == [255, 16]

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_line_numbers(self):
        toks = tokenize("a\nb\n  c")
        a, b, c = toks[0], toks[1], toks[2]
        assert (a.line, b.line, c.line) == (1, 2, 3)
        assert c.column == 3


class TestParser:
    def test_class_with_everything(self):
        unit = parse(
            """
            class Base { public: virtual float area() { return 0.0f; } };
            class Circle : public Base {
              float r;
            public:
              Circle(float radius) : r(radius) {}
              virtual float area() { return 3.14f * r * r; }
              float operator()(int i) { return r + i; }
            };
            """
        )
        assert len(unit.classes) == 2
        circle = unit.classes[1]
        assert circle.bases[0].name == "Base"
        assert len(circle.constructors) == 1
        assert any(m.name == "operator()" for m in circle.methods)
        assert any(m.is_virtual for m in circle.methods)

    def test_namespace_flattening(self):
        unit = parse("namespace ns { class A { public: int x; }; int f() { return 1; } }")
        assert unit.classes[0].namespace == ("ns",)
        assert unit.functions[0].namespace == ("ns",)

    def test_template_class(self):
        unit = parse(
            "template<typename T> class Box { public: T item; T get() { return item; } };"
        )
        assert unit.classes[0].template_params == ["T"]

    def test_control_flow_statements(self):
        unit = parse(
            """
            int f(int n) {
              int s = 0;
              for (int i = 0; i < n; i++) { s += i; }
              while (s > 100) { s /= 2; }
              do { s++; } while (s < 3);
              if (s == 3) return s; else return -s;
            }
            """
        )
        assert unit.functions[0].name == "f"

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse("class A { public: int x; }")  # missing trailing ;

    def test_pure_virtual(self):
        unit = parse("class I { public: virtual int f() = 0; };")
        method = unit.classes[0].methods[0]
        assert method.is_virtual and method.body is None


class TestSemaLayout:
    def _sema(self, src: str) -> Sema:
        return Sema(parse(src))

    def test_class_layout_matches_c_rules(self):
        sema = self._sema("class P { public: char c; int i; char d; long l; };")
        info = sema.lookup_class("P")
        assert info.find_field("c") == (0, info.find_field("c")[1])
        assert info.find_field("i")[0] == 4
        assert info.find_field("d")[0] == 8
        assert info.find_field("l")[0] == 16
        assert info.struct_type.size() == 24

    def test_polymorphic_class_has_vptr_first(self):
        sema = self._sema("class V { public: virtual int f() { return 1; } int x; };")
        info = sema.lookup_class("V")
        assert info.polymorphic
        assert info.struct_type.fields[0].name == "__vptr"
        assert info.find_field("x")[0] == 8

    def test_single_inheritance_layout(self):
        sema = self._sema(
            """
            class B { public: int a; int b; };
            class D : public B { public: int c; };
            """
        )
        d = sema.lookup_class("D")
        assert d.find_field("a")[0] == 0
        assert d.find_field("b")[0] == 4
        assert d.find_field("c")[0] == 8
        assert d.upcast_offset(sema.lookup_class("B")) == 0

    def test_multiple_inheritance_offsets(self):
        sema = self._sema(
            """
            class B1 { public: long x; };
            class B2 { public: long y; };
            class D : public B1, public B2 { public: long z; };
            """
        )
        d = sema.lookup_class("D")
        b2 = sema.lookup_class("B2")
        assert d.upcast_offset(sema.lookup_class("B1")) == 0
        assert d.upcast_offset(b2) == 8
        assert d.find_field("y")[0] == 8
        assert d.find_field("z")[0] == 16

    def test_vtable_override_keeps_slot(self):
        sema = self._sema(
            """
            class B { public: virtual int f() { return 1; } virtual int g() { return 2; } };
            class D : public B { public: virtual int g() { return 3; } };
            """
        )
        b = sema.lookup_class("B")
        d = sema.lookup_class("D")
        assert len(b.vtable) == 2 and len(d.vtable) == 2
        assert d.vtable[0].owner.name == "B"  # inherited f
        assert d.vtable[1].owner.name == "D"  # overridden g

    def test_template_instantiation(self):
        sema = self._sema(
            "template<typename T> class Box { public: T item; };"
        )
        from repro.ir.types import F32, I32

        box_int = sema.instantiate_class_template("Box", [I32])
        box_float = sema.instantiate_class_template("Box", [F32])
        assert box_int is not box_float
        assert box_int.struct_type.size() == 4
        # re-instantiation returns the cached class
        again = sema.instantiate_class_template("Box", [I32])
        assert again is box_int

    def test_unknown_type_raises(self):
        with pytest.raises(SemaError):
            sema = self._sema("class A { public: Mystery m; };")
            sema.lookup_class("A")


class TestLoweringExecution:
    """Compile MiniC++ functions and execute them on the interpreter."""

    def test_arithmetic_and_calls(self):
        src = """
        int square(int x) { return x * x; }
        int f(int n) { return square(n) + square(n + 1); }
        """
        assert run_fn(src, "f.", 3) == 9 + 16

    def test_loops_and_conditionals(self):
        src = """
        int collatz_steps(int n) {
          int steps = 0;
          while (n != 1) {
            if (n % 2 == 0) n = n / 2; else n = 3 * n + 1;
            steps++;
          }
          return steps;
        }
        """
        assert run_fn(src, "collatz_steps.", 6) == 8

    def test_float_math(self):
        src = "float hyp(float a, float b) { return sqrtf(a * a + b * b); }"
        assert run_fn(src, "hyp.", 3.0, 4.0) == pytest.approx(5.0)

    def test_short_circuit_evaluation(self):
        src = """
        int guard(int a, int b) {
          if (a != 0 && 100 / a > b) return 1;
          return 0;
        }
        """
        assert run_fn(src, "guard.", 0, 5) == 0  # no division by zero
        assert run_fn(src, "guard.", 2, 5) == 1

    def test_ternary_and_compound_assign(self):
        src = """
        int f(int a) {
          int x = a > 0 ? a : -a;
          x += 3; x *= 2; x -= 1; x /= 3;
          return x;
        }
        """
        assert run_fn(src, "f.", -6) == ((6 + 3) * 2 - 1) // 3

    def test_increments(self):
        src = """
        int f(int a) {
          int x = a;
          int y = x++;
          int z = ++x;
          return y * 100 + z * 10 + x;
        }
        """
        assert run_fn(src, "f.", 5) == 5 * 100 + 7 * 10 + 7

    def test_tail_recursion_becomes_loop(self):
        src = """
        int gcd(int a, int b) {
          if (b == 0) return a;
          return gcd(b, a % b);
        }
        """
        prog = compile_source(src, OptConfig.gpu())
        gcd = next(f for n, f in prog.module.functions.items() if n.startswith("gcd"))
        # after tail-recursion elimination there is no self-call
        assert not any(
            i.op == "call" and i.callee is gcd for i in gcd.instructions()
        )
        region = SharedRegion(1 << 16)
        interp = Interpreter(region, "cpu")
        assert interp.call_function(gcd, [48, 36]) == 12
        assert interp.call_function(gcd, [17, 5]) == 1

    def test_overloaded_functions(self):
        src = """
        int pick(int a) { return 1; }
        int pick(float a) { return 2; }
        int f() { return pick(3) * 10 + pick(2.5f); }
        """
        assert run_fn(src, "f.", ) == 12

    def test_function_template_deduction(self):
        src = """
        template<typename T> T twice(T x) { return x + x; }
        int f(int a) { return twice(a); }
        float g(float a) { return twice(a); }
        """
        assert run_fn(src, "f.", 21) == 42
        assert run_fn(src, "g.", 1.25) == pytest.approx(2.5)

    def test_namespaces(self):
        src = """
        namespace math { int add(int a, int b) { return a + b; } }
        int f(int a) { return math::add(a, 10); }
        """
        assert run_fn(src, "f.", 5) == 15

    def test_global_variables(self):
        src = """
        int counter = 7;
        int f(int x) { counter = counter + x; return counter; }
        """
        prog = compile_source(src, OptConfig.gpu())
        rt = ConcordRuntime(prog)
        assert rt.call_host(next(n for n in prog.module.functions if n.startswith("f.")), 3) == 10
