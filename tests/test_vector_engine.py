"""The columnar vector engine is bit-identical to the threaded-code engine.

For all nine paper workloads the vector backend must leave exactly the
same shared-region bytes, the same execution traces and the same modeled
reports as ``CompiledEngine`` — whether a kernel was vectorized, rolled
back and re-run scalar, or routed scalar outright (``vector.fallbacks``).
Also covers backend registration, the ``vector.*`` counter surface and
the per-kernel fallback behavior.
"""

import warnings

import pytest

from repro.backend import VectorBackend
from repro.backend.vector import clear_memos
from repro.obs import Observer
from repro.runtime.system import ultrabook
from repro.workloads import all_workloads

from .test_engine_equivalence import NINE, SCALE, _assert_trace_equal, _run

WORKLOADS = all_workloads()


@pytest.fixture(autouse=True)
def _fresh_memos():
    """The backend memoizes per-kernel routing process-wide; clear it so
    every test exercises the optimistic vector path deterministically,
    independent of test order."""
    clear_memos()
    yield
    clear_memos()


@pytest.mark.parametrize("name", NINE)
def test_vector_bit_identical_to_compiled(name):
    com_rt, com_reports = _run(name, "compiled", on_cpu=False)
    vec_rt, vec_reports = _run(name, "vector", on_cpu=False)

    # Same final shared-memory state: every store landed identically.
    assert bytes(vec_rt.region.physical.data) == bytes(
        com_rt.region.physical.data
    )

    # Same traces, launch by launch.
    assert len(vec_rt.trace_log) == len(com_rt.trace_log)
    for index, (ref, got) in enumerate(
        zip(com_rt.trace_log, vec_rt.trace_log)
    ):
        _assert_trace_equal(ref, got, f"{name} trace {index}")

    # Timing is a pure function of the traces, so the modeled numbers
    # cannot move whichever engine executed the lanes.
    assert len(vec_reports) == len(com_reports)
    for ref, got in zip(com_reports, vec_reports):
        assert got.device == ref.device
        assert got.n == ref.n
        assert got.jit_seconds == ref.jit_seconds
        assert got.report.seconds == ref.report.seconds
        assert got.report.cycles == ref.report.cycles
        assert got.report.instructions == ref.report.instructions
        assert got.report.energy_joules == ref.report.energy_joules
        assert got.report.mem_transactions == ref.report.mem_transactions


def _observed_counters(name: str, engine: str) -> dict:
    observer = Observer()
    workload = WORKLOADS[name]()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        workload.execute(
            None, ultrabook(), scale=0.1, engine=engine, observer=observer
        )
    return observer.counters.as_dict()


class TestCounterEquivalence:
    """Everything the traces and timing models derive must agree; only
    the ``vector.*`` namespace (and the code-cache/pool internals) may
    differ, because they describe *how* the lanes ran, not what they did."""

    ENGINE_INDEPENDENT = ("engine.", "mem_events.", "gpu.", "cpu.")

    @pytest.mark.parametrize("name", NINE)
    def test_counters_identical_across_engines(self, name):
        totals = {}
        for engine in ("compiled", "vector"):
            counters = _observed_counters(name, engine)
            totals[engine] = {
                key: value
                for key, value in counters.items()
                if key.startswith(self.ENGINE_INDEPENDENT)
            }
        assert totals["compiled"] == totals["vector"], name


class TestBackendRegistration:
    def test_vector_engine_selects_vector_backend(self):
        rt = WORKLOADS["BFS"]().make_runtime(engine="vector")
        assert rt.engine == "vector"
        assert isinstance(rt.backends["gpu"], VectorBackend)
        assert not isinstance(rt.backends["cpu"], VectorBackend)

    def test_other_engines_do_not(self):
        rt = WORKLOADS["BFS"]().make_runtime(engine="compiled")
        assert not isinstance(rt.backends["gpu"], VectorBackend)

    def test_exec_package_exports(self):
        from repro.exec import (  # noqa: F401
            VectorCodeCache,
            VectorFallback,
            VectorFunction,
            classify_kernel,
            run_vectorized,
        )


class TestVectorCounters:
    def test_regular_workload_vectorizes(self):
        counters = _observed_counters("Raytracer", "vector")
        assert counters.get("vector.kernels_vectorized", 0) > 0
        assert counters.get("vector.lanes_retired", 0) > 0
        # Occupancy ratio: active lane-steps over issued lane-slots.
        slots = counters.get("vector.mask_slots", 0)
        occupied = counters.get("vector.mask_occupancy", 0)
        assert 0 < occupied <= slots
        # Every launch retired its full index space through the columnar
        # path — no fallback on the regular workload's hot kernels.
        assert counters.get("vector.lanes_retired", 0) >= counters.get(
            "engine.invocations.gpu", 0
        )

    def test_irregular_workload_falls_back_and_still_matches(self):
        # BFS's frontier kernel writes lane-dependent shared state (a
        # cross-lane hazard), so the backend must detect it, roll back
        # and re-run scalar — results already checked bit-identical above.
        counters = _observed_counters("BFS", "vector")
        assert counters.get("vector.fallbacks", 0) > 0

    def test_fallback_lanes_still_counted_as_invocations(self):
        for name in NINE:
            clear_memos()
            counters = _observed_counters(name, "vector")
            assert counters.get("engine.invocations.gpu", 0) > 0, name
