"""Unit tests for the IR type system and struct layout rules."""

import pytest

from repro.ir import (
    ArrayType,
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    IntType,
    PointerType,
    StructType,
    U32,
    VOID,
    ptr,
)


class TestScalarSizes:
    def test_integer_sizes(self):
        assert I8.size() == 1
        assert I16.size() == 2
        assert I32.size() == 4
        assert I64.size() == 8

    def test_float_sizes(self):
        assert F32.size() == 4
        assert F64.size() == 8

    def test_pointer_size(self):
        assert ptr(I32).size() == 8
        assert ptr(ptr(F32)).size() == 8

    def test_void_has_no_size(self):
        with pytest.raises(TypeError):
            VOID.size()

    def test_alignment_is_natural(self):
        assert I32.align() == 4
        assert I64.align() == 8
        assert F32.align() == 4
        assert ptr(I8).align() == 8


class TestIntWrapping:
    def test_signed_wrap(self):
        assert I8.wrap(127) == 127
        assert I8.wrap(128) == -128
        assert I8.wrap(-129) == 127
        assert I32.wrap(2**31) == -(2**31)

    def test_unsigned_wrap(self):
        assert U32.wrap(-1) == 2**32 - 1
        assert U32.wrap(2**32) == 0

    def test_ranges(self):
        assert I32.min_value == -(2**31)
        assert I32.max_value == 2**31 - 1
        assert U32.min_value == 0
        assert U32.max_value == 2**32 - 1


class TestStructLayout:
    def test_basic_layout_with_padding(self):
        s = StructType("S")
        s.finalize([("a", I8), ("b", I32), ("c", I8)])
        assert s.field_named("a").offset == 0
        assert s.field_named("b").offset == 4  # aligned up
        assert s.field_named("c").offset == 8
        assert s.size() == 12  # tail-padded to align 4

    def test_pointer_field_alignment(self):
        s = StructType("P")
        s.finalize([("flag", I8), ("next", ptr(I64))])
        assert s.field_named("next").offset == 8
        assert s.size() == 16
        assert s.align() == 8

    def test_recursive_struct_through_pointer(self):
        node = StructType("Node")
        node.finalize([("next", ptr(node)), ("value", F32)])
        assert node.size() == 16
        assert node.field_named("value").offset == 8

    def test_incomplete_struct_size_raises(self):
        s = StructType("Inc")
        with pytest.raises(TypeError):
            s.size()

    def test_field_lookup_missing(self):
        s = StructType("S")
        s.finalize([("a", I32)])
        with pytest.raises(KeyError):
            s.field_named("missing")
        assert s.has_field("a")
        assert not s.has_field("b")

    def test_struct_identity_by_name(self):
        a = StructType("Same")
        a.finalize([("x", I32)])
        b = StructType("Same")
        b.finalize([("y", I64)])
        assert a == b  # identity is nominal
        assert hash(a) == hash(b)


class TestArrayType:
    def test_array_size(self):
        arr = ArrayType(I32, 10)
        assert arr.size() == 40
        assert arr.align() == 4

    def test_array_of_structs(self):
        s = StructType("E")
        s.finalize([("a", I64), ("b", I8)])
        arr = ArrayType(s, 4)
        assert arr.size() == 4 * s.size()

    def test_struct_with_array_field(self):
        s = StructType("K")
        s.finalize([("keys", ArrayType(I32, 8)), ("n", I32)])
        assert s.field_named("n").offset == 32
        assert s.size() == 36


class TestTypePredicates:
    def test_predicates(self):
        assert I32.is_integer and I32.is_scalar
        assert F32.is_float and F32.is_scalar
        assert ptr(I8).is_pointer and ptr(I8).is_scalar
        assert VOID.is_void
        s = StructType("Q")
        s.finalize([("x", I32)])
        assert s.is_struct and not s.is_scalar
        assert ArrayType(I8, 3).is_array
