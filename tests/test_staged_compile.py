"""Staged compilation must be invisible (see ``docs/SERVICE.md``).

``compile_source`` is now three explicit stages (frontend → pipeline →
closure), each stamped with a content hash, and ``compile_cached`` can
answer any stage from an on-disk artifact store.  None of that may be
observable: a program served warm from the store must be bit-identical
to its cold origin — same OpenCL text, same region bytes, same traces —
on all nine paper workloads and on both execution engines; and the
content-hash ``program_id`` must be stable across recompiles while two
*different* programs can never share one (the collision hazard the old
per-process counter id left open across processes).
"""

import pickle
import tempfile
import warnings

import pytest

from repro.backend.vector import reset_process_caches
from repro.passes import OptConfig
from repro.runtime import CompiledProgram, ConcordRuntime, compile_source
from repro.runtime.compiler import (
    canonical_source,
    closure_stage,
    compile_cached,
    frontend_key,
    frontend_stage,
    pipeline_key,
    pipeline_stage,
    program_key,
)
from repro.runtime.system import ultrabook
from repro.service import ArtifactStore
from repro.workloads import all_workloads

WORKLOADS = all_workloads()
NINE = (
    "BarnesHut",
    "BFS",
    "BTree",
    "ClothPhysics",
    "ConnectedComponent",
    "FaceDetect",
    "Raytracer",
    "SkipList",
    "SSSP",
)
SCALE = 0.1


def _execute(cls, program, engine):
    """Build/run/validate one workload on ``program``; returns the
    runtime (region + trace log) for byte-level comparison."""
    rt = ConcordRuntime(
        program,
        ultrabook(),
        region_size=cls.region_size,
        engine=engine,
        keep_traces=True,
    )
    workload = cls()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        state = workload.build(rt, SCALE)
        workload.run(rt, state, on_cpu=False)
        workload.validate(rt, state)
    return rt


def _events(trace):
    return [
        (e.instr_uid, e.seq, e.address, e.size, e.is_store)
        for e in trace.mem_events
    ]


def _assert_traces_equal(ref_log, got_log, where):
    assert len(got_log) == len(ref_log), where
    for index, (ref, got) in enumerate(zip(ref_log, got_log)):
        label = f"{where} trace {index}"
        assert got.instructions == ref.instructions, label
        assert got.block_counts == ref.block_counts, label
        assert {k: list(v) for k, v in got.branch_stats.items()} == {
            k: list(v) for k, v in ref.branch_stats.items()
        }, label
        assert got.flops == ref.flops, label
        assert got.int_ops == ref.int_ops, label
        assert got.translations == ref.translations, label
        assert got.calls == ref.calls, label
        assert _events(got) == _events(ref), label


@pytest.mark.parametrize("engine", ["compiled", "vector"])
@pytest.mark.parametrize("name", NINE)
def test_warm_store_bit_identical(name, engine):
    """A program unpickled from a warm store is indistinguishable from
    the cold compile that wrote it: same id, same OpenCL bytes, same
    region bytes and traces when executed."""
    cls = WORKLOADS[name]
    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            cold, cold_stages = compile_cached(
                cls.source, store=store, module_name=cls.name
            )
            warm, warm_stages = compile_cached(
                cls.source, store=store, module_name=cls.name
            )
    assert cold_stages == {
        "frontend": "miss", "pipeline": "miss", "closure": "miss"
    }
    assert warm_stages == {
        "frontend": "hit", "pipeline": "hit", "closure": "hit"
    }
    assert warm.program_id == cold.program_id
    assert warm is not cold  # genuinely unpickled, not memoized

    # The pickled closure carries the cold compile's exact device code.
    assert sorted(warm.kernels) == sorted(cold.kernels)
    for kernel_name, kinfo in cold.kernels.items():
        warm_kinfo = warm.kernels[kernel_name]
        assert warm_kinfo.opencl_source == kinfo.opencl_source, kernel_name
        assert (
            warm_kinfo.reduce_wrapper_source == kinfo.reduce_wrapper_source
        ), kernel_name
        assert warm_kinfo.cpu_only == kinfo.cpu_only, kernel_name

    # Both programs share one content-hash id, so the process-wide
    # vector/JIT memos would serve the first run's kernels to the
    # second; reset between runs so the warm artifacts are honestly
    # exercised.
    reset_process_caches()
    cold_rt = _execute(cls, cold, engine)
    reset_process_caches()
    warm_rt = _execute(cls, warm, engine)
    assert bytes(warm_rt.region.physical.data) == bytes(
        cold_rt.region.physical.data
    )
    _assert_traces_equal(cold_rt.trace_log, warm_rt.trace_log, name)


@pytest.mark.parametrize("name", NINE)
def test_program_id_stable_across_recompiles(name):
    """The content hash is a pure function of (source, options): two
    independent compiles — and the explicit three-stage chain — all
    agree, and the id is a real hex digest, not a counter."""
    cls = WORKLOADS[name]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        first = compile_source(cls.source, module_name=cls.name)
        second = compile_source(cls.source, module_name=cls.name)
    assert first.program_id == second.program_id
    assert len(first.program_id) == 64
    assert set(first.program_id) <= set("0123456789abcdef")


def test_staged_chain_matches_monolithic():
    """Chaining the three stages by hand is ``compile_source``: same id,
    and an execution of each lands the same region bytes."""
    cls = WORKLOADS["BFS"]
    config = OptConfig.gpu_all()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        mono = compile_source(cls.source, config, module_name=cls.name)
        front = frontend_stage(cls.source, module_name=cls.name)
        pipe = pipeline_stage(front, config)
        staged = closure_stage(pipe)
    assert staged.program_id == mono.program_id
    assert sorted(staged.kernels) == sorted(mono.kernels)
    reset_process_caches()
    mono_rt = _execute(cls, mono, "compiled")
    reset_process_caches()
    staged_rt = _execute(cls, staged, "compiled")
    assert bytes(staged_rt.region.physical.data) == bytes(
        mono_rt.region.physical.data
    )


def test_pickle_roundtrip_preserves_program_id():
    """Cross-process stability in miniature: a program that travels
    through pickle (what the store does) keeps the id a fresh compile
    in 'another process' would compute."""
    cls = WORKLOADS["BFS"]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        program = compile_source(cls.source, module_name=cls.name)
    clone = pickle.loads(pickle.dumps(program, pickle.HIGHEST_PROTOCOL))
    assert clone.program_id == program.program_id


class TestProgramIdCollisions:
    """The satellite regression: program ids must never alias the
    process-wide ``(program_id, kernel_name)`` JIT and vector memos."""

    SOURCE_A = """
class Body {
public:
    int* data;
    void operator()(int i) { data[i] = data[i] + 1; }
};
"""
    SOURCE_B = """
class Body {
public:
    int* data;
    void operator()(int i) { data[i] = data[i] + 2; }
};
"""

    def test_different_programs_different_ids(self):
        """Same class name, same kernel name, different bodies — under
        the old per-process counter two processes could assign these the
        same id; the content hash cannot."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            a = compile_source(self.SOURCE_A)
            b = compile_source(self.SOURCE_B)
        assert a.program_id != b.program_id
        assert set(a.kernels) == set(b.kernels)  # identical kernel names

    def test_config_changes_the_id(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            plain = compile_source(self.SOURCE_A, OptConfig.gpu())
            opt = compile_source(self.SOURCE_A, OptConfig.gpu_all())
        assert plain.program_id != opt.program_id

    def test_anonymous_programs_never_alias(self):
        """Direct constructions that bypass ``closure_stage`` (tests,
        hand-built programs) fall back to process-unique ``anon:`` ids."""
        first = CompiledProgram(
            module=None, sema=None, kernels={},
            config=OptConfig.gpu_all(), source="",
        )
        second = CompiledProgram(
            module=None, sema=None, kernels={},
            config=OptConfig.gpu_all(), source="",
        )
        assert first.program_id != second.program_id
        assert first.program_id.startswith("anon:")


class TestStageHashing:
    """The hashing rules ``docs/SERVICE.md`` documents."""

    def test_canonical_source_normalizes_line_endings(self):
        assert canonical_source("a\r\nb\rc\n") == "a\nb\nc\n"
        assert frontend_key("class A {};\r\n") == frontend_key("class A {};\n")

    def test_frontend_key_covers_module_name(self):
        assert frontend_key("class A {};", "m1") != frontend_key("class A {};", "m2")

    def test_pipeline_key_covers_config(self):
        fkey = frontend_key("class A {};")
        keys = {
            pipeline_key(fkey, config)
            for config in (
                OptConfig.gpu(), OptConfig.gpu_ptropt(),
                OptConfig.gpu_l3opt(), OptConfig.gpu_all(),
            )
        }
        assert len(keys) == 4
        # Equal configs (fresh instances) hash equally.
        assert pipeline_key(fkey, OptConfig.gpu_all()) == pipeline_key(
            fkey, OptConfig.gpu_all()
        )

    def test_keys_are_hex_digests(self):
        fkey = frontend_key("class A {};")
        pkey = pipeline_key(fkey, OptConfig.gpu_all())
        ckey = program_key(pkey)
        for key in (fkey, pkey, ckey):
            assert len(key) == 64
            assert set(key) <= set("0123456789abcdef")
        assert len({fkey, pkey, ckey}) == 3  # stages never collide

    def test_cache_key_distinguishes_configs(self):
        labels = {
            config.cache_key()
            for config in (
                OptConfig.gpu(), OptConfig.gpu_ptropt(),
                OptConfig.gpu_l3opt(), OptConfig.gpu_all(),
                OptConfig.gpu_all().without_pass("licm"),
            )
        }
        assert len(labels) == 5
        assert OptConfig.gpu_all().cache_key() == OptConfig.gpu_all().cache_key()
