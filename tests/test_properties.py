"""Property-based tests (hypothesis) on core invariants:

* the shared allocator never double-allocates, always respects alignment,
  and coalescing restores full capacity;
* struct layout always honours alignment and field ordering;
* integer wrapping is involutive and in-range;
* constant folding agrees with the interpreter on random expression trees;
* compiled random MiniC++ functions compute identical results under every
  optimization configuration and on both devices (the compiler's
  end-to-end semantic-preservation property).
"""

import warnings

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.exec import Interpreter
from repro.ir import Constant, Function, FunctionType, I32, I64, IRBuilder, IntType
from repro.ir.types import F32, StructType, ptr
from repro.passes import (
    OptConfig,
    common_subexpression_elimination,
    constant_fold,
    dead_code_elimination,
)
from repro.runtime import compile_source
from repro.svm import SharedAllocator, SharedRegion
from repro.gpu import CacheModel

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# -- allocator ---------------------------------------------------------------


@st.composite
def alloc_scripts(draw):
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(["malloc", "free"]), st.integers(1, 512)),
            min_size=1,
            max_size=60,
        )
    )
    return ops


class TestAllocatorProperties:
    @given(alloc_scripts())
    @SLOW
    def test_no_overlap_and_alignment(self, script):
        region = SharedRegion(1 << 16)
        alloc = SharedAllocator(region)
        live: dict[int, int] = {}
        for op, size in script:
            if op == "malloc":
                try:
                    addr = alloc.malloc(size)
                except Exception:
                    continue
                assert addr % 16 == 0
                for other, other_size in live.items():
                    assert addr + size <= other or other + other_size <= addr, (
                        "overlapping allocations"
                    )
                live[addr] = size
            elif live:
                victim = sorted(live)[size % len(live)]
                alloc.free(victim)
                del live[victim]
        # everything still frees cleanly
        for addr in list(live):
            alloc.free(addr)
        assert alloc.live_bytes == 0

    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=30))
    @SLOW
    def test_free_all_restores_capacity(self, sizes):
        region = SharedRegion(1 << 16)
        alloc = SharedAllocator(region)
        addrs = []
        for size in sizes:
            try:
                addrs.append(alloc.malloc(size))
            except Exception:
                break
        for addr in addrs:
            alloc.free(addr)
        # after coalescing, a near-full-region allocation must succeed
        big = alloc.malloc((1 << 16) - 64)
        assert region.contains_cpu(big)


# -- layout / types -------------------------------------------------------------


SCALARS = st.sampled_from(
    [I32, I64, F32, ptr(I32), IntType(8), IntType(16, signed=False)]
)


class TestLayoutProperties:
    @given(st.lists(SCALARS, min_size=1, max_size=12))
    @SLOW
    def test_layout_invariants(self, field_types):
        s = StructType("P")
        s.finalize([(f"f{i}", t) for i, t in enumerate(field_types)])
        last_end = 0
        for field, ftype in zip(s.fields, field_types):
            assert field.offset % ftype.align() == 0
            assert field.offset >= last_end
            last_end = field.offset + ftype.size()
        assert s.size() >= last_end
        assert s.size() % s.align() == 0

    @given(st.integers(-(2**70), 2**70), st.sampled_from([8, 16, 32, 64]),
           st.booleans())
    @SLOW
    def test_wrap_idempotent_and_in_range(self, value, bits, signed):
        t = IntType(bits, signed)
        wrapped = t.wrap(value)
        assert t.min_value <= wrapped <= t.max_value
        assert t.wrap(wrapped) == wrapped


# -- constant folding vs interpreter ----------------------------------------------


@st.composite
def expr_trees(draw, depth=0):
    """(builder_fn, python_value) pairs over i32 arithmetic."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(-1000, 1000))
        return ("const", value)
    op = draw(st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]))
    lhs = draw(expr_trees(depth=depth + 1))
    rhs = draw(expr_trees(depth=depth + 1))
    return (op, lhs, rhs)


def build_expr(builder, tree):
    if tree[0] == "const":
        return Constant(I32, I32.wrap(tree[1]))
    op, lhs, rhs = tree
    return builder.binop(op, build_expr(builder, lhs), build_expr(builder, rhs))


def eval_tree(tree) -> int:
    if tree[0] == "const":
        return I32.wrap(tree[1])
    op, lhs, rhs = tree
    a, b = eval_tree(lhs), eval_tree(rhs)
    fns = {
        "add": a + b, "sub": a - b, "mul": a * b,
        "and": a & b, "or": a | b, "xor": a ^ b,
    }
    return I32.wrap(fns[op])


class TestConstantFoldingProperties:
    @given(expr_trees())
    @SLOW
    def test_folding_agrees_with_interpreter(self, tree):
        fn = Function("f", FunctionType(I32, ()), [])
        entry = fn.new_block("entry")
        b = IRBuilder(entry)
        b.ret(build_expr(b, tree))
        constant_fold(fn)
        dead_code_elimination(fn)
        region = SharedRegion(1 << 12)
        got = Interpreter(region, "cpu").call_function(fn, [])
        assert got == eval_tree(tree)
        # fully-constant trees must fold to a single ret
        assert sum(1 for _ in fn.instructions()) == 1


# -- cache model -------------------------------------------------------------------


class TestCacheProperties:
    @given(st.lists(st.integers(0, 400), min_size=1, max_size=300))
    @SLOW
    def test_stats_conserved(self, lines):
        cache = CacheModel(64 * 64, 64, 4)
        for line in lines:
            cache.access(line)
        assert cache.stats.hits + cache.stats.misses == len(lines)
        assert cache.stats.misses >= len(set(lines)) - 0  # compulsory misses

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=200))
    @SLOW
    def test_small_working_set_all_hits_after_warmup(self, lines):
        cache = CacheModel(64 * 64, 64, 8)
        for line in set(lines):
            cache.access(line)
        before = cache.stats.misses
        for line in lines:
            assert cache.access(line)
        assert cache.stats.misses == before


# -- end-to-end semantic preservation -----------------------------------------------


@st.composite
def minicpp_kernels(draw):
    """A random straight-line+loop arithmetic body over an int array."""
    n_stmts = draw(st.integers(1, 5))
    lines = []
    expressions = ["x", "i", "7", "x + i", "x * 3", "i - x"]
    for index in range(n_stmts):
        expr = draw(st.sampled_from(expressions))
        op = draw(st.sampled_from(["+", "^", "|"]))
        lines.append(f"x = (x {op} ({expr})) + {index};")
    loop_bound = draw(st.integers(1, 6))
    body = "\n        ".join(lines)
    source = f"""
    class RandBody {{
    public:
      int* data;
      void operator()(int i) {{
        int x = data[i];
        for (int j = 0; j < {loop_bound}; j++) {{
          {body}
        }}
        data[i] = x;
      }}
    }};
    """
    return source


class TestEndToEndSemantics:
    @given(minicpp_kernels(), st.lists(st.integers(-100, 100), min_size=4,
                                       max_size=12))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_configs_and_devices_agree(self, source, values):
        from repro.ir.types import I32 as I32t
        from repro.runtime import ConcordRuntime, ultrabook

        results = []
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for config in (OptConfig.gpu(), OptConfig.gpu_all()):
                for on_cpu in (False, True):
                    prog = compile_source(source, config)
                    rt = ConcordRuntime(prog, ultrabook(),
                                        collect_mem_events=False)
                    data = rt.new_array(I32t, len(values))
                    data.fill_from(values)
                    body = rt.new("RandBody")
                    body.data = data
                    rt.parallel_for_hetero(len(values), body, on_cpu=on_cpu)
                    results.append(data.to_list())
        first = results[0]
        for other in results[1:]:
            assert other == first


# -- fuzz generators as hypothesis strategies ------------------------------------


@st.composite
def ir_programs(draw):
    """A random verifier-clean IR function spec from the fuzz generator,
    driven by a hypothesis-chosen seed (so shrinking walks seeds)."""
    import random

    from repro.fuzz import generate_ir_program

    seed = draw(st.integers(0, 2**31 - 1))
    return generate_ir_program(random.Random(seed), seed=seed)


@st.composite
def source_programs(draw):
    import random

    from repro.fuzz import generate_source_program

    seed = draw(st.integers(0, 2**31 - 1))
    return generate_source_program(random.Random(seed), seed=seed)


class TestIRPassIdempotence:
    """Running a pass twice must equal running it once: the second
    application of mem2reg/constfold/dce on generated IR is a no-op."""

    def _idempotent(self, program, pass_fn):
        from repro.fuzz import build_ir
        from repro.ir import format_function, verify_function

        _, fn = build_ir(program)
        pass_fn(fn)
        verify_function(fn)
        once = format_function(fn)
        pass_fn(fn)
        verify_function(fn)
        assert format_function(fn) == once

    @given(ir_programs())
    @SLOW
    def test_mem2reg_idempotent(self, program):
        from repro.passes.mem2reg import promote_memory_to_registers

        self._idempotent(program, promote_memory_to_registers)

    @given(ir_programs())
    @SLOW
    def test_constfold_idempotent(self, program):
        self._idempotent(program, constant_fold)

    @given(ir_programs())
    @SLOW
    def test_dce_idempotent(self, program):
        self._idempotent(program, dead_code_elimination)

    @given(ir_programs())
    @SLOW
    def test_cse_idempotent(self, program):
        self._idempotent(program, common_subexpression_elimination)


class TestFuzzGeneratorProperties:
    """The generator contracts the differential oracles rely on."""

    @given(ir_programs())
    @SLOW
    def test_generated_ir_verifies_and_engines_agree(self, program):
        from repro.fuzz import build_ir, run_ir_function
        from repro.ir import verify_function

        _, fn = build_ir(program)
        verify_function(fn)  # generator contract: verifier-clean
        ref = run_ir_function(fn, program, engine="interpreter")
        com = run_ir_function(fn, program, engine="compiled")
        assert ref.ok and com.ok  # masked indices / odd divisors: no traps
        assert ref.outputs == com.outputs
        assert ref.region_digest == com.region_digest

    @given(ir_programs())
    @SLOW
    def test_spec_round_trips_through_json(self, program):
        import json
        import re

        from repro.fuzz import IRProgram, build_ir
        from repro.ir import format_function

        def normalized(fn):
            # Value names carry a process-global uid counter; rename them
            # in order of first appearance so only structure is compared.
            text = format_function(fn)
            names: dict = {}
            return re.sub(
                r"%t\d+",
                lambda m: names.setdefault(m.group(0), f"%v{len(names)}"),
                text,
            )

        doc = json.loads(json.dumps(program.to_dict()))
        _, original = build_ir(program)
        _, rebuilt = build_ir(IRProgram.from_dict(doc))
        assert normalized(rebuilt) == normalized(original)

    @given(source_programs())
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_generated_sources_compile_and_run_trap_free(self, program):
        from repro.fuzz import run_source_program

        outcome = run_source_program(program)
        assert outcome.ok, outcome.trap
