"""Tests for the async task-graph runtime (repro.runtime.graph):
dependency inference from declared read/write sets, graph-vs-sync
bit-identity on all nine workloads, topological-order freedom as a
hypothesis property, report-merge algebra, the overlap evaluation
scenarios, the process-wide cache reset, and the graph fuzz target."""

import random
import warnings

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.fuzz import generate_source_program, source_graph_divergences
from repro.fuzz.driver import TARGETS, FuzzDriver
from repro.fuzz.oracle import _graph_dag_plan, _run_graph_dag
from repro.gpu.timing import DeviceReport
from repro.obs import Observer, build_trace, validate_trace
from repro.passes import OptConfig
from repro.runtime import (
    ConcordRuntime,
    GraphError,
    RegionSpan,
    compile_source,
    ultrabook,
)
from repro.runtime.graph import as_span
from repro.runtime.runtime import ExecutionReport
from repro.workloads import all_workloads

WORKLOADS = all_workloads()

SOURCE = """
class Incr {
public:
  int* data;
  void operator()(int i) { data[i] = data[i] + i; }
};

class Copy {
public:
  int* src;
  int* dst;
  void operator()(int i) { dst[i] = src[i]; }
};

class SumBody {
public:
  int* data;
  int total;
  void operator()(int i) { total = total + data[i]; }
  void join(SumBody& other) { total = total + other.total; }
};
"""


def _runtime(**kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        program = compile_source(SOURCE, OptConfig.gpu_all())
        return ConcordRuntime(program, ultrabook(), **kwargs)


def _incr(rt, data):
    body = rt.new("Incr")
    body.data = data
    return body


def _copy(rt, src, dst):
    body = rt.new("Copy")
    body.src = src
    body.dst = dst
    return body


class TestRegionSpans:
    def test_overlap_matrix(self):
        a = RegionSpan(0, 8)
        assert a.overlaps(RegionSpan(4, 8))
        assert a.overlaps(RegionSpan(0, 1))
        assert not a.overlaps(RegionSpan(8, 8))  # half-open: adjacent
        assert not a.overlaps(RegionSpan(100, 4))
        assert not a.overlaps(RegionSpan(4, 0))  # empty never overlaps
        assert not RegionSpan(0, 0).overlaps(a)

    def test_as_span_normalizes_views_and_tuples(self):
        from repro.ir.types import I32

        rt = _runtime()
        arr = rt.new_array(I32, 10)
        span = as_span(arr)
        assert span.addr == arr.addr and span.size == 10 * I32.size()
        body = rt.new("Incr")
        bspan = as_span(body)
        assert bspan.addr == body.addr and bspan.size > 0
        assert as_span((16, 4)) == RegionSpan(16, 4)
        assert as_span(RegionSpan(1, 2)) == RegionSpan(1, 2)

    def test_as_span_rejects_garbage(self):
        for bad in (None, 3, "x", (1, 2, 3), (1.5, 2)):
            with pytest.raises(GraphError):
                as_span(bad)


class TestDependencyInference:
    """The unit matrix: RAW/WAR/WAW over declared spans, disjoint spans
    stay independent, omitted sets serialize conservatively."""

    def _two(self, reads_a, writes_a, reads_b, writes_b):
        from repro.ir.types import I32

        rt = _runtime()
        x = rt.new_array(I32, 8)
        y = rt.new_array(I32, 8)
        spans = {"x": x, "y": y}
        pick = lambda names: [spans[n] for n in names]
        fa = rt.submit(8, _incr(rt, x), reads=pick(reads_a), writes=pick(writes_a))
        fb = rt.submit(8, _incr(rt, y), reads=pick(reads_b), writes=pick(writes_b))
        return fa, fb

    def test_raw_edge(self):
        fa, fb = self._two([], ["x"], ["x"], ["y"])
        assert fa.index in fb.edges.get("raw", ())
        assert fa.index in fb.deps

    def test_war_edge(self):
        fa, fb = self._two(["x"], ["y"], [], ["x"])
        assert fa.index in fb.edges.get("war", ())

    def test_waw_edge(self):
        fa, fb = self._two([], ["x"], [], ["x"])
        assert fa.index in fb.edges.get("waw", ())

    def test_disjoint_spans_are_independent(self):
        fa, fb = self._two([], ["x"], [], ["y"])
        # The two Incr bodies are distinct structs, so no edges at all.
        assert fb.deps == ()
        assert fa.wave == 0 and fb.wave == 0

    def test_partial_byte_overlap(self):
        from repro.ir.types import I32

        rt = _runtime()
        x = rt.new_array(I32, 8)
        half = RegionSpan(x.addr, 4 * I32.size())
        rest = RegionSpan(x.addr + 4 * I32.size(), 4 * I32.size())
        fa = rt.submit(8, _incr(rt, x), reads=[], writes=[half])
        fb = rt.submit(8, _incr(rt, x), reads=[], writes=[rest])
        fc = rt.submit(8, _incr(rt, x), reads=[half], writes=[])
        assert fb.deps == ()  # disjoint halves of the same array
        assert fa.index in fc.edges.get("raw", ())
        assert fb.index not in fc.deps

    def test_omitted_sets_are_conservative(self):
        from repro.ir.types import I32

        rt = _runtime()
        x = rt.new_array(I32, 8)
        y = rt.new_array(I32, 8)
        fa = rt.submit(8, _incr(rt, x), reads=[], writes=[x])
        fb = rt.submit(8, _incr(rt, y))  # no sets: whole-region fallback
        fc = rt.submit(8, _incr(rt, x), reads=[], writes=[y])
        assert fb.conservative
        assert not fa.conservative
        assert fa.index in fb.deps  # serializes against everything before
        assert fb.index in fc.deps  # and everything after serializes on it

    def test_body_struct_is_an_implicit_read(self):
        from repro.ir.types import I32

        rt = _runtime()
        x = rt.new_array(I32, 8)
        body = _incr(rt, x)
        fa = rt.submit(8, body, reads=[], writes=[body])  # mutates the body
        fb = rt.submit(8, body, reads=[], writes=[x])
        assert fa.index in fb.edges.get("raw", ())

    def test_wave_numbering_follows_chains(self):
        from repro.ir.types import I32

        rt = _runtime()
        x = rt.new_array(I32, 8)
        y = rt.new_array(I32, 8)
        f0 = rt.submit(8, _incr(rt, x), reads=[], writes=[x])
        f1 = rt.submit(8, _incr(rt, y), reads=[], writes=[y])
        f2 = rt.submit(8, _copy(rt, x, y), reads=[x], writes=[y])
        f3 = rt.submit(8, _copy(rt, y, x), reads=[y], writes=[x])
        assert (f0.wave, f1.wave, f2.wave, f3.wave) == (0, 0, 1, 2)
        stats = rt.wait()
        assert stats.waves == 3
        assert stats.executed == 4

    def test_reduce_without_join_raises(self):
        rt = _runtime()
        with pytest.raises(TypeError):
            rt.submit(8, rt.new("Incr"), construct="reduce")

    def test_unknown_construct_and_placement_raise(self):
        from repro.runtime.graph import TaskGraph

        rt = _runtime()
        with pytest.raises(GraphError):
            rt.submit(8, rt.new("Incr"), construct="scan")
        with pytest.raises(GraphError):
            TaskGraph(rt, placement="greedy")


class TestDeferredExecution:
    def test_result_forces_dependencies_only(self):
        from repro.ir.types import I32

        rt = _runtime()
        x = rt.new_array(I32, 8)
        y = rt.new_array(I32, 8)
        fx = rt.submit(8, _incr(rt, x), reads=[x], writes=[x])
        fy = rt.submit(8, _incr(rt, y), reads=[y], writes=[y])
        fx2 = rt.submit(8, _incr(rt, x), reads=[x], writes=[x])
        report = fx2.result()
        assert report is not None and fx.done and fx2.done
        assert not fy.done  # independent chain stays deferred
        assert x.to_list() == [2 * i for i in range(8)]
        rt.wait()
        assert fy.done

    def test_barrier_with_regions_forces_overlapping_only(self):
        from repro.ir.types import I32

        rt = _runtime()
        x = rt.new_array(I32, 8)
        y = rt.new_array(I32, 8)
        fx = rt.submit(8, _incr(rt, x), reads=[x], writes=[x])
        fy = rt.submit(8, _incr(rt, y), reads=[y], writes=[y])
        rt.task_graph.barrier(regions=[x])
        assert fx.done and not fy.done

    def test_graph_mode_constructs_stay_synchronous(self):
        from repro.ir.types import I32

        sync_rt = _runtime()
        graph_rt = _runtime(graph=True)
        assert graph_rt.graph_mode
        results = []
        for rt in (sync_rt, graph_rt):
            data = rt.new_array(I32, 16)
            data.fill_from(range(16))
            rt.parallel_for_hetero(16, _incr(rt, data))
            sum_body = rt.new("SumBody")
            sum_body.data = data
            report = rt.parallel_reduce_hetero(16, sum_body)
            results.append((data.to_list(), sum_body.total, report.seconds))
        assert results[0] == results[1]
        stats = graph_rt.wait()
        assert stats.executed == 2


def _workload_state(name, graph, scale=0.1, observer=None):
    cls = WORKLOADS[name]
    workload = cls()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        rt = cls.make_runtime(
            OptConfig.gpu_all(), ultrabook(), graph=graph, observer=observer
        )
        state = workload.build(rt, scale)
        reports = workload.run(rt, state, on_cpu=False)
        if graph:
            rt.wait()
    return rt, reports


class TestNineWorkloadIdentity:
    """Graph mode must be bit-identical to synchronous submission on the
    paper's nine workloads: same region bytes, same construct records,
    same modeled seconds."""

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_graph_matches_sync(self, name):
        sync_obs, graph_obs = Observer(), Observer()
        sync_rt, sync_reports = _workload_state(name, False, observer=sync_obs)
        graph_rt, graph_reports = _workload_state(name, True, observer=graph_obs)
        assert bytes(graph_rt.region.physical.data) == bytes(
            sync_rt.region.physical.data
        )
        assert [r.seconds for r in graph_reports] == [
            r.seconds for r in sync_reports
        ]
        key = lambda rec: (rec.kernel, rec.construct, rec.device, rec.n, rec.seconds)
        assert [key(r) for r in graph_obs.constructs] == [
            key(r) for r in sync_obs.constructs
        ]


def _compile_cached(seed):
    program = generate_source_program(
        random.Random(seed), seed=seed, force={"construct": "for"}
    )
    cached = _compile_cached._memo.get(seed)
    if cached is None:
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                cached = compile_source(program.source, OptConfig.gpu_all())
        except Exception:
            cached = False
        _compile_cached._memo[seed] = cached
    return program, cached


_compile_cached._memo = {}


class TestTopologicalOrderProperty:
    """Any topological execution order of a random DAG of srcgen
    constructs yields identical final region bytes — the inferred
    RAW/WAR/WAW edges must serialize every true conflict."""

    @given(
        seed=st.integers(min_value=0, max_value=15),
        order=st.permutations(list(range(5))),
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_any_forcing_order_matches_sync(self, seed, order):
        from repro.backend.vector import reset_process_caches

        program, compiled = _compile_cached(seed)
        assume(compiled is not False)
        reset_process_caches()
        plan = _graph_dag_plan(program)
        sync = _run_graph_dag(program, compiled, plan, "sync")
        assume(sync.ok)  # trapping programs abort order-dependently
        forced = _run_graph_dag(program, compiled, plan, "shuffled", order=order)
        assert forced.ok
        assert forced.outputs == sync.outputs
        assert forced.region_digest == sync.region_digest
        assert forced.heap_digest == sync.heap_digest


def _report(device, n, seconds, jit=0.0, device_seconds=None):
    return ExecutionReport(
        device=device,
        n=n,
        report=DeviceReport(device=device, seconds=seconds, energy_joules=seconds * 2),
        jit_seconds=jit,
        device_seconds=device_seconds,
    )


_report_strategy = st.one_of(
    st.builds(
        _report,
        device=st.sampled_from(["cpu", "gpu"]),
        n=st.integers(1, 1000),
        seconds=st.floats(0.0, 10.0, allow_nan=False),
        jit=st.floats(0.0, 1.0, allow_nan=False),
    ),
    st.builds(
        lambda n, g, c, jit: _report(
            "hybrid", n, g + c, jit, device_seconds={"gpu": g, "cpu": c}
        ),
        n=st.integers(1, 1000),
        g=st.floats(0.0, 10.0, allow_nan=False),
        c=st.floats(0.0, 10.0, allow_nan=False),
        jit=st.floats(0.0, 1.0, allow_nan=False),
    ),
)


def _assert_merge_equal(left, right):
    assert left.n == right.n
    assert left.seconds == pytest.approx(right.seconds)
    assert left.jit_seconds == pytest.approx(right.jit_seconds)
    assert left.energy_joules == pytest.approx(right.energy_joules)
    mine, theirs = left.per_device_seconds(), right.per_device_seconds()
    assert set(mine) == set(theirs)
    for device in mine:
        assert mine[device] == pytest.approx(theirs[device])


class TestReportMergeAlgebra:
    """Graph forcing completes constructs out of submission order, then
    sums their reports — the merge must not care about that order."""

    @given(a=_report_strategy, b=_report_strategy)
    @settings(max_examples=60, deadline=None)
    def test_commutative(self, a, b):
        ab, ba = a + b, b + a
        _assert_merge_equal(ab, ba)
        assert ab.device == ba.device

    @given(a=_report_strategy, b=_report_strategy, c=_report_strategy)
    @settings(max_examples=60, deadline=None)
    def test_associative(self, a, b, c):
        _assert_merge_equal((a + b) + c, a + (b + c))

    @given(a=_report_strategy)
    @settings(max_examples=20, deadline=None)
    def test_sum_identity(self, a):
        assert sum([a]) is a
        assert (0 + a) is a

    def test_hybrid_chunks_merge_keywise(self):
        a = _report("hybrid", 10, 3.0, device_seconds={"gpu": 2.0, "cpu": 1.0})
        b = _report("gpu", 5, 1.5)
        merged = a + b
        assert merged.device == "hybrid"
        assert merged.per_device_seconds() == {
            "gpu": pytest.approx(3.5),
            "cpu": pytest.approx(1.0),
        }

    def test_unlabeled_hybrid_occupies_both_devices(self):
        legacy = _report("hybrid", 4, 2.0)  # no device_seconds recorded
        assert legacy.per_device_seconds() == {"gpu": 2.0, "cpu": 2.0}


class TestProcessCacheReset:
    """clear_memos() never touched _SHARED_CACHES, so oracle runs could
    replay columnar kernels compiled under an earlier region layout;
    reset_process_caches() must drop all three process-wide dicts."""

    def test_reset_clears_shared_caches_too(self):
        from repro.backend import vector as vector_mod

        rt = _runtime(engine="vector")
        from repro.ir.types import I32

        data = rt.new_array(I32, 64)
        data.fill_from(range(64))
        rt.parallel_for_hetero(64, _incr(rt, data))
        assert vector_mod._SHARED_CACHES  # populated by the vector run
        vector_mod._SCALAR_KERNELS["sentinel"] = "x"
        vector_mod._GNARLY_KERNELS["sentinel"] = "y"
        vector_mod.reset_process_caches()
        assert vector_mod._SHARED_CACHES == {}
        assert vector_mod._SCALAR_KERNELS == {}
        assert vector_mod._GNARLY_KERNELS == {}

    def test_clear_memos_alone_left_the_bug(self):
        from repro.backend import vector as vector_mod

        vector_mod._SHARED_CACHES[12345] = object()
        try:
            vector_mod.clear_memos()
            assert 12345 in vector_mod._SHARED_CACHES  # the latent bug
            vector_mod.reset_process_caches()
            assert 12345 not in vector_mod._SHARED_CACHES
        finally:
            vector_mod._SHARED_CACHES.pop(12345, None)


class TestObservabilityAndTrace:
    def test_graph_counters_and_wave_spans(self):
        from repro.ir.types import I32

        observer = Observer()
        rt = _runtime(observer=observer)
        x = rt.new_array(I32, 32)
        y = rt.new_array(I32, 32)
        rt.submit(32, _incr(rt, x), reads=[x], writes=[x])
        rt.submit(32, _incr(rt, y), reads=[y], writes=[y])
        rt.submit(32, _copy(rt, x, y), reads=[x], writes=[y])
        stats = rt.wait()
        counters = observer.counters
        assert counters.get("graph.submitted") == 3
        assert counters.get("graph.executed") == 3
        assert counters.get("graph.waves") == 2
        assert stats.edges["raw"] >= 1
        waves = observer.spans("graph_wave")
        assert len(waves) == 2
        constructs = observer.spans("graph_construct")
        assert len(constructs) == 3
        for span in constructs:
            assert span.attrs["virtual_finish"] >= span.attrs["virtual_start"]

    def test_trace_has_virtual_device_tracks(self):
        from repro.ir.types import I32

        observer = Observer()
        rt = _runtime(observer=observer)
        x = rt.new_array(I32, 32)
        rt.submit(32, _incr(rt, x), reads=[x], writes=[x])
        rt.wait()
        doc = build_trace(observer)
        validate_trace(doc)
        virtual = [
            e
            for e in doc["traceEvents"]
            if e.get("cat") == "graph_construct" and e["tid"] in (2, 3)
        ]
        assert virtual
        for event in virtual:
            assert event["ts"] >= 0 and event["dur"] >= 0
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert "gpu (graph virtual)" in names

    def test_sync_trace_has_no_virtual_tracks(self):
        observer = Observer()
        rt = _runtime(observer=observer)
        from repro.ir.types import I32

        x = rt.new_array(I32, 8)
        rt.parallel_for_hetero(8, _incr(rt, x))
        doc = build_trace(observer)
        validate_trace(doc)
        assert not any(
            e.get("cat") == "graph_construct" for e in doc["traceEvents"]
        )
        assert not any(e["tid"] in (2, 3) for e in doc["traceEvents"])


class TestOverlapEval:
    def test_bfs_pipeline_overlaps_and_stays_identical(self):
        from repro.eval.overlap import measure_bfs_pipeline

        point = measure_bfs_pipeline(scale=0.3)
        assert point.identical
        assert point.graph_seconds < point.sync_seconds
        assert point.speedup > 1.0
        assert set(point.device_busy) == {"gpu", "cpu"}

    def test_bh_batch_overlaps_and_stays_identical(self):
        from repro.eval.overlap import measure_bh_batch

        point = measure_bh_batch(scale=0.3)
        assert point.identical
        assert point.speedup > 1.0


class TestGraphFuzzTarget:
    def test_target_registered(self):
        assert "graph" in TARGETS
        with pytest.raises(ValueError):
            FuzzDriver(target="gralph")

    def test_smoke_campaign_clean(self):
        driver = FuzzDriver(seed=11, iterations=6, target="graph", reduce=False)
        report = driver.run()
        assert report.ok, [str(d.diffs) for d in report.divergences]

    def test_oracle_clean_on_generated_programs(self):
        for seed in range(3):
            program = generate_source_program(
                random.Random(seed), seed=seed, force={"construct": "for"}
            )
            assert source_graph_divergences(program) == []
