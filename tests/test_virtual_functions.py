"""Virtual functions on both devices (paper section 3.2).

The GPU path must expand virtual calls into inline compare chains against
CHA candidates (no function pointers on the GPU); the CPU path dispatches
through real vtables materialized in the shared region.  Both must agree.
"""

import pytest

from repro.runtime import ConcordRuntime, OptConfig, compile_source, ultrabook

SHAPES_SRC = """
class Shape {
public:
  float dummy;
  virtual float area() { return 0.0f; }
  virtual int kind() { return 0; }
};

class Circle : public Shape {
public:
  float r;
  virtual float area() { return 3.0f * r * r; }
  virtual int kind() { return 1; }
};

class Square : public Shape {
public:
  float side;
  virtual float area() { return side * side; }
  virtual int kind() { return 2; }
};

class AreaBody {
public:
  Shape** shapes;
  float* out;
  void operator()(int i) {
    out[i] = shapes[i]->area();
  }
};
"""


@pytest.fixture(scope="module")
def programs():
    return {
        "gpu": compile_source(SHAPES_SRC, OptConfig.gpu()),
        "all": compile_source(SHAPES_SRC, OptConfig.gpu_all()),
    }


def build_scene(rt, n=12):
    from repro.ir.types import F32, ptr, I64

    shapes = rt.new_array(ptr(I64), n)
    out = rt.new_array(F32, n)
    expected = []
    for i in range(n):
        if i % 2 == 0:
            c = rt.new("Circle")
            c.r = float(i + 1)
            shapes[i] = c.addr
            expected.append(3.0 * (i + 1) ** 2)
        else:
            s = rt.new("Square")
            s.side = float(i + 1)
            shapes[i] = s.addr
            expected.append(float((i + 1) ** 2))
    body = rt.new("AreaBody")
    body.shapes = shapes
    body.out = out
    return body, out, expected


class TestDevirtualization:
    def test_vcall_expanded_in_gpu_kernel(self, programs):
        kinfo = programs["gpu"].kernel_for("AreaBody")
        ops = [i.op for i in kinfo.gpu_kernel.instructions()]
        assert "vcall" not in ops
        # the compare chain loads the vtable slot and tests symbol ids
        assert "icmp" in ops

    def test_vcall_still_pseudo_in_cpu_kernel(self, programs):
        kinfo = programs["gpu"].kernel_for("AreaBody")
        ops = [i.op for i in kinfo.kernel.instructions()]
        assert "vcall" in ops  # CPU path uses real vtable dispatch

    def test_cha_candidates_cover_hierarchy(self, programs):
        module = programs["gpu"].module
        assert "Circle" in module.class_hierarchy.get("Shape", [])
        assert "Square" in module.class_hierarchy.get("Shape", [])


class TestVirtualExecution:
    @pytest.mark.parametrize("config_key", ["gpu", "all"])
    def test_gpu_execution_matches_expected(self, programs, config_key):
        rt = ConcordRuntime(programs[config_key], ultrabook())
        body, out, expected = build_scene(rt)
        rt.parallel_for_hetero(len(expected), body)
        got = out.to_list()
        assert got == pytest.approx(expected)

    def test_cpu_execution_matches_gpu(self, programs):
        rt = ConcordRuntime(programs["gpu"], ultrabook())
        body, out, expected = build_scene(rt)
        rt.parallel_for_hetero(len(expected), body, on_cpu=True)
        cpu_result = out.to_list()
        for i in range(len(expected)):
            out[i] = 0.0
        rt.parallel_for_hetero(len(expected), body)
        gpu_result = out.to_list()
        assert cpu_result == pytest.approx(gpu_result)
        assert cpu_result == pytest.approx(expected)

    def test_vtable_lives_in_shared_region(self, programs):
        rt = ConcordRuntime(programs["gpu"], ultrabook())
        c = rt.new("Circle")
        vptr = getattr(c, "__vptr")  # avoid Python class-private mangling
        assert rt.region.contains_cpu(vptr, 8)
        # slots hold the shared symbol ids of the virtual functions
        symbol = rt.region.read_int(vptr, 8, signed=False)
        assert symbol in rt._symbols

    def test_override_dispatches_to_derived(self, programs):
        rt = ConcordRuntime(programs["gpu"], ultrabook())
        sq = rt.new("Square")
        sq.side = 3.0
        kind_fn = next(
            name
            for name in programs["gpu"].module.functions
            if name.startswith("Square.kind")
        )
        assert rt.call_host(kind_fn, sq.addr) == 2
