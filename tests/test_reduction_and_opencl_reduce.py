"""Deeper coverage of hierarchical reductions (§3.3) and the reduce-kernel
artifacts: numerical behaviour across group boundaries, non-commutative
guards, and multi-field reduction bodies."""

import pytest

from repro.ir.types import F32, I32
from repro.runtime import ConcordRuntime, OptConfig, compile_source, ultrabook
from repro.runtime.runtime import REDUCTION_GROUP_SIZE

MINMAX_SRC = """
class StatsBody {
public:
  float* data;
  float min_value;
  float max_value;
  int count;

  void operator()(int i) {
    float v = data[i];
    if (v < min_value) min_value = v;
    if (v > max_value) max_value = v;
    count += 1;
  }

  void join(StatsBody& other) {
    if (other.min_value < min_value) min_value = other.min_value;
    if (other.max_value > max_value) max_value = other.max_value;
    count += other.count;
  }
};
"""


@pytest.fixture(scope="module")
def stats_runtime():
    return ConcordRuntime(compile_source(MINMAX_SRC, OptConfig.gpu_all()), ultrabook())


def run_stats(rt, values, on_cpu=False):
    data = rt.new_array(F32, len(values))
    data.fill_from(values)
    body = rt.new("StatsBody")
    body.data = data
    body.min_value = float("inf")
    body.max_value = float("-inf")
    body.count = 0
    rt.parallel_reduce_hetero(len(values), body, on_cpu=on_cpu)
    return body.min_value, body.max_value, body.count


class TestMultiFieldReduction:
    @pytest.mark.parametrize(
        "n",
        [
            1,
            REDUCTION_GROUP_SIZE - 1,
            REDUCTION_GROUP_SIZE,
            REDUCTION_GROUP_SIZE + 1,
            3 * REDUCTION_GROUP_SIZE + 5,
        ],
    )
    def test_min_max_count_across_group_boundaries(self, stats_runtime, n):
        values = [((i * 37) % 101) - 50.0 for i in range(n)]
        low, high, count = run_stats(stats_runtime, values)
        assert low == min(values)
        assert high == max(values)
        assert count == n

    def test_cpu_matches_gpu(self, stats_runtime):
        values = [((i * 13) % 29) - 7.5 for i in range(40)]
        assert run_stats(stats_runtime, values) == run_stats(
            stats_runtime, values, on_cpu=True
        )

    def test_negative_only_values(self, stats_runtime):
        values = [-1.0 - i for i in range(20)]
        low, high, count = run_stats(stats_runtime, values)
        assert (low, high, count) == (-20.0, -1.0, 20)


class TestReduceArtifacts:
    def test_join_kernel_generated(self, stats_runtime):
        kinfo = stats_runtime.program.kernel_for("StatsBody")
        assert kinfo.construct == "reduce"
        assert kinfo.join_kernel is not None
        assert kinfo.gpu_join_kernel is not None
        # the device join is SVM-lowered like any kernel
        assert kinfo.gpu_join_kernel.attributes.get("svm_lowered")

    def test_join_kernel_runs_on_host(self, stats_runtime):
        rt = stats_runtime
        a = rt.new("StatsBody")
        b = rt.new("StatsBody")
        a.min_value, a.max_value, a.count = -1.0, 5.0, 3
        b.min_value, b.max_value, b.count = -7.0, 2.0, 4
        kinfo = rt.program.kernel_for("StatsBody")
        rt.call_host(kinfo.join_kernel.name, a, b)
        assert (a.min_value, a.max_value, a.count) == (-7.0, 5.0, 7)

    def test_body_object_untouched_between_runs(self, stats_runtime):
        """parallel_reduce_hetero makes private copies: a second run with a
        reset body must not see stale state from the first."""
        rt = stats_runtime
        values = [1.0, 2.0, 3.0]
        first = run_stats(rt, values)
        second = run_stats(rt, values)
        assert first == second


class TestFloatReductionSemantics:
    def test_sum_reassociation_within_tolerance(self):
        """The paper: 'floating point determinism in reductions is not
        guaranteed'.  Our tree order differs from the sequential order, so
        results agree to rounding, not bit-exactly in general."""
        source = """
        class SumBody {
        public:
          float* data;
          float sum;
          void operator()(int i) { sum += data[i]; }
          void join(SumBody& other) { sum += other.sum; }
        };
        """
        rt = ConcordRuntime(compile_source(source, OptConfig.gpu_all()), ultrabook())
        values = [0.1 * ((i * 7) % 23) for i in range(100)]
        data = rt.new_array(F32, len(values))
        data.fill_from(values)
        body = rt.new("SumBody")
        body.data = data
        body.sum = 0.0
        rt.parallel_reduce_hetero(len(values), body)
        assert body.sum == pytest.approx(sum(values), rel=1e-4)


class TestReduceWrapperOpenCl:
    """Section 3.3's wrapper artifact: private copies, local-memory tree
    reduction with barriers, per-group results."""

    def test_wrapper_structure(self, stats_runtime):
        text = stats_runtime.program.kernel_for("StatsBody").reduce_wrapper_source
        assert "__kernel void reduce_StatsBody" in text
        assert "__local" in text
        assert text.count("barrier(CLK_LOCAL_MEM_FENCE);") >= 2
        assert "stride *= 2" in text  # tree reduction
        assert "_private" in text  # private Body copies
        assert "group_results" in text

    def test_for_kernels_have_no_wrapper(self):
        from repro.runtime import compile_source as cs

        prog = cs(
            """
            class ForOnly {
            public:
              int* out;
              void operator()(int i) { out[i] = i; }
            };
            """,
            OptConfig.gpu_all(),
        )
        assert prog.kernel_for("ForOnly").reduce_wrapper_source == ""
