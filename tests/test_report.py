"""Unit tests for the report generator's shape checks (crafted inputs,
no measurement runs)."""

from dataclasses import dataclass

from repro.analysis import IrMix
from repro.eval.figures import FigureData
from repro.eval.report import shape_checks
from repro.eval.runner import WORKLOAD_ORDER


@dataclass
class _Point:
    overhead_pct: float


def make_figure(metric, values_by_config):
    return FigureData(
        title="t",
        system="s",
        metric=metric,
        labels=list(WORKLOAD_ORDER),
        series={
            config: [values[name] for name in WORKLOAD_ORDER]
            for config, values in values_by_config.items()
        },
    )


def paperlike_inputs():
    """Inputs shaped like the paper's results (all checks should pass)."""
    base7 = {
        "BarnesHut": 1.3, "BFS": 2.6, "BTree": 2.4, "ClothPhysics": 1.4,
        "ConnectedComponent": 1.5, "FaceDetect": 1.2, "Raytracer": 9.0,
        "SkipList": 2.3, "SSSP": 2.2,
    }
    fig7 = make_figure("speedup", {
        "GPU": {k: v / 1.07 for k, v in base7.items()},
        "GPU+PTROPT": base7,
        "GPU+L3OPT": {k: v / 1.07 for k, v in base7.items()},
        "GPU+ALL": base7,
    })
    energy8 = {
        "BarnesHut": 1.5, "BFS": 1.9, "BTree": 2.0, "ClothPhysics": 1.4,
        "ConnectedComponent": 1.6, "FaceDetect": 0.93, "Raytracer": 6.0,
        "SkipList": 2.1, "SSSP": 2.0,
    }
    fig8 = make_figure("energy", {c: energy8 for c in
                                  ("GPU", "GPU+PTROPT", "GPU+L3OPT", "GPU+ALL")})
    speed9 = {
        "BarnesHut": 0.53, "BFS": 1.2, "BTree": 1.0, "ClothPhysics": 0.9,
        "ConnectedComponent": 1.1, "FaceDetect": 1.0, "Raytracer": 2.6,
        "SkipList": 1.3, "SSSP": 1.2,
    }
    fig9 = make_figure("speedup", {
        "GPU": {k: v / 1.09 for k, v in speed9.items()},
        "GPU+PTROPT": speed9,
        "GPU+L3OPT": {k: v / 1.09 for k, v in speed9.items()},
        "GPU+ALL": speed9,
    })
    energy10 = {
        "BarnesHut": 1.48, "BFS": 2.94, "BTree": 2.43, "ClothPhysics": 1.3,
        "ConnectedComponent": 1.4, "FaceDetect": 0.9, "Raytracer": 3.52,
        "SkipList": 2.27, "SSSP": 1.6,
    }
    fig10 = make_figure("energy", {c: energy10 for c in
                                   ("GPU", "GPU+PTROPT", "GPU+L3OPT", "GPU+ALL")})
    overhead = [_Point(1.0), _Point(6.0)]
    mixes = {
        name: IrMix(control=30, memory=25, remaining=45)
        for name in WORKLOAD_ORDER
    }
    mixes["Raytracer"] = IrMix(control=10, memory=10, remaining=80)
    mixes["ClothPhysics"] = IrMix(control=12, memory=12, remaining=76)
    return fig7, fig8, fig9, fig10, overhead, mixes


class TestShapeChecks:
    def test_paperlike_inputs_all_pass(self):
        checks = shape_checks(*paperlike_inputs())
        assert len(checks) == 11
        failing = [c.name for c in checks if not c.passed]
        assert not failing, failing

    def test_detects_wrong_winner(self):
        fig7, fig8, fig9, fig10, overhead, mixes = paperlike_inputs()
        # swap the winner: BFS suddenly beats Raytracer on the Ultrabook
        idx_bfs = fig7.labels.index("BFS")
        for series in fig7.series.values():
            series[idx_bfs] = 99.0
        checks = shape_checks(fig7, fig8, fig9, fig10, overhead, mixes)
        failed = {c.name for c in checks if not c.passed}
        assert any("Raytracer is the best" in name for name in failed)

    def test_detects_barneshut_crossover_loss(self):
        fig7, fig8, fig9, fig10, overhead, mixes = paperlike_inputs()
        idx = fig9.labels.index("BarnesHut")
        for series in fig9.series.values():
            series[idx] = 1.4  # GPU suddenly faster: crossover gone
        checks = shape_checks(fig7, fig8, fig9, fig10, overhead, mixes)
        failed = {c.name for c in checks if not c.passed}
        assert any("BarnesHut slower" in name for name in failed)

    def test_detects_negative_svm_overhead(self):
        fig7, fig8, fig9, fig10, _, mixes = paperlike_inputs()
        checks = shape_checks(
            fig7, fig8, fig9, fig10, [_Point(-3.0), _Point(-1.0)], mixes
        )
        failed = {c.name for c in checks if not c.passed}
        assert any("SVM overhead" in name for name in failed)
