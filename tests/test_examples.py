"""Smoke tests for the runnable examples (the fast ones run end to end;
the heavy renders are exercised by their workloads' own tests)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart_runs(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "linked list verified: 256 links" in out
        assert "speedup" in out
        assert "auto policy placed the construct" in out

    def test_shortest_path_runs(self, capsys):
        load_example("shortest_path_roadmap").main()
        out = capsys.readouterr().out
        assert "validated against Dijkstra reference" in out
        assert "route from 0:" in out

    def test_compiler_explorer_runs(self, capsys):
        load_example("compiler_explorer").main()
        out = capsys.readouterr().out
        assert "frontend output" in out
        assert "static pointer translations" in out
        assert "__kernel void" in out
        assert "auto policy ran 64 pointer walks" in out

    @pytest.mark.parametrize(
        "name",
        ["raytrace_scene", "cloth_simulation", "face_detection_heatmap"],
    )
    def test_heavy_examples_importable(self, name):
        module = load_example(name)
        assert callable(module.main)
