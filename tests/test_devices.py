"""Unit tests for the GPU/CPU device models, cache model and timing."""

import pytest

from repro.exec.interp import ExecTrace, MemEvent
from repro.gpu import CacheModel, hd4600, hd5000, time_gpu_kernel
from repro.gpu.timing import _guarded_blocks, block_sizes
from repro.cpu import i7_4650u, i7_4770, time_cpu_execution
from repro.ir import BOOL, Function, FunctionType, I32, IRBuilder, VOID
from repro.runtime.system import desktop, ultrabook


def straight_line_kernel(n_instr=10):
    fn = Function("k", FunctionType(VOID, (I32,)), ["i"])
    entry = fn.new_block("entry")
    b = IRBuilder(entry)
    value = fn.args[0]
    for _ in range(n_instr):
        value = b.add(value, b.i32(1))
    b.ret()
    return fn


def branchy_kernel():
    fn = Function("k", FunctionType(VOID, (I32,)), ["i"])
    entry = fn.new_block("entry")
    then = fn.new_block("then")
    done = fn.new_block("done")
    b = IRBuilder(entry)
    cond = b.icmp("sgt", fn.args[0], b.i32(0))
    b.condbr(cond, then, done)
    b.position_at_end(then)
    for _ in range(20):
        b.add(fn.args[0], b.i32(1))
    b.br(done)
    b.position_at_end(done)
    b.ret()
    return fn


def trace_with(blocks: dict, events=(), instructions=0):
    trace = ExecTrace()
    trace.block_counts = dict(blocks)
    trace.mem_events = list(events)
    trace.instructions = instructions or sum(blocks.values())
    return trace


class TestCacheModel:
    def test_hit_after_miss(self):
        cache = CacheModel(1024, 64, 2)
        assert not cache.access(5)
        assert cache.access(5)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = CacheModel(2 * 64, 64, 2)  # one set, two ways
        cache.access(0)
        cache.access(1)
        cache.access(2)  # evicts 0
        assert not cache.access(0)

    def test_lru_touch_refreshes(self):
        cache = CacheModel(2 * 64, 64, 2)
        cache.access(0)
        cache.access(1)
        cache.access(0)  # refresh 0
        cache.access(2)  # evicts 1, not 0
        assert cache.access(0)
        assert not cache.access(1)

    def test_set_indexing(self):
        cache = CacheModel(4 * 64, 64, 1)  # 4 sets, direct-mapped
        cache.access(0)
        cache.access(1)  # different set, no conflict
        assert cache.access(0)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheModel(100, 64, 2)


class TestGpuDivergenceModel:
    def test_converged_warp_costs_one_lane(self):
        kernel = straight_line_kernel(10)
        entry_uid = kernel.blocks[0].uid
        lanes = [trace_with({entry_uid: 1}) for _ in range(16)]
        report = time_gpu_kernel(hd5000(), kernel, lanes)
        sizes = block_sizes(kernel)
        assert report.issue_slots == pytest.approx(sizes[entry_uid])
        assert report.divergence_waste == pytest.approx(0.0)

    def test_guarded_block_divergence_inflation(self):
        """One lane taking a guarded block per occurrence forces the warp
        to issue it: with independent mixed outcomes the issue estimate
        exceeds the per-lane max."""
        kernel = branchy_kernel()
        entry, then, done = kernel.blocks
        guarded = _guarded_blocks(kernel)
        assert guarded.get(then.uid) == entry.uid
        # every lane enters 'then' half the time over 100 occurrences
        lanes = [
            trace_with({entry.uid: 100, then.uid: 50, done.uid: 100})
            for _ in range(16)
        ]
        report = time_gpu_kernel(hd5000(), kernel, lanes)
        sizes = block_sizes(kernel)
        # independent-outcomes estimate ~ 100 * (1 - 0.5^16) ~ 100, not 50
        expected_then_issue = 100 * (1 - 0.5 ** 16)
        expected = (
            100 * sizes[entry.uid]
            + expected_then_issue * sizes[then.uid]
            + 100 * sizes[done.uid]
        )
        assert report.issue_slots == pytest.approx(expected, rel=0.01)

    def test_divergent_warp_costs_max_lane(self):
        kernel = straight_line_kernel(10)
        entry_uid = kernel.blocks[0].uid
        lanes = [trace_with({entry_uid: 1 + (i % 4) * 5}) for i in range(16)]
        report = time_gpu_kernel(hd5000(), kernel, lanes)
        sizes = block_sizes(kernel)
        assert report.issue_slots == pytest.approx(16 * sizes[entry_uid])
        assert report.divergence_waste > 0

    def test_more_eus_faster_compute(self):
        kernel = straight_line_kernel(30)
        uid = kernel.blocks[0].uid
        lanes = [trace_with({uid: 100}) for _ in range(256)]
        big = time_gpu_kernel(hd5000(), kernel, lanes)
        small = time_gpu_kernel(hd4600(), kernel, lanes)
        assert big.cycles < small.cycles


class TestGpuMemoryModel:
    def _mem_kernel(self):
        return straight_line_kernel(2)

    def _lanes_with_addresses(self, kernel, addr_of_lane, count=16):
        uid = kernel.blocks[0].uid
        lanes = []
        for lane_index in range(count):
            events = [
                MemEvent(instr_uid=1, seq=0, address=addr_of_lane(lane_index),
                         size=4, is_store=False)
            ]
            lanes.append(trace_with({uid: 1}, events))
        return lanes

    def test_coalesced_access_single_transaction(self):
        kernel = self._mem_kernel()
        lanes = self._lanes_with_addresses(kernel, lambda i: 0x1000 + 4 * i)
        report = time_gpu_kernel(hd5000(), kernel, lanes)
        assert report.mem_transactions == 1

    def test_scattered_access_many_transactions(self):
        kernel = self._mem_kernel()
        lanes = self._lanes_with_addresses(kernel, lambda i: 0x1000 + 4096 * i)
        report = time_gpu_kernel(hd5000(), kernel, lanes)
        assert report.mem_transactions == 16
        # gather cracking charges extra issue slots
        coalesced = time_gpu_kernel(
            hd5000(),
            kernel,
            self._lanes_with_addresses(kernel, lambda i: 0x1000 + 4 * i),
        )
        assert report.issue_slots > coalesced.issue_slots

    def test_contention_same_line_different_eus(self):
        """Warps on different EUs touching the same line at the same
        dynamic position serialize (un-banked L3, paper section 4.2)."""
        kernel = self._mem_kernel()
        uid = kernel.blocks[0].uid
        device = hd5000()
        lanes = []
        for warp in range(4 * 16):  # 4 warps -> 4 different EUs
            events = [MemEvent(instr_uid=7, seq=0, address=0x2000, size=4,
                               is_store=False)]
            lanes.append(trace_with({uid: 1}, events))
        report = time_gpu_kernel(device, kernel, lanes)
        assert report.contention_events == 3  # 4 EUs - 1 port
        assert report.contention_cycles > 0

    def test_no_contention_when_staggered(self):
        kernel = self._mem_kernel()
        uid = kernel.blocks[0].uid
        lanes = []
        for warp in range(4):
            for lane in range(16):
                events = [MemEvent(instr_uid=7, seq=0,
                                   address=0x2000 + warp * 4096, size=4,
                                   is_store=False)]
                lanes.append(trace_with({uid: 1}, events))
        report = time_gpu_kernel(hd5000(), kernel, lanes)
        assert report.contention_events == 0

    def test_tdp_throttling_extends_time(self):
        device = hd5000()
        assert device.power_budget_watts > 0
        kernel = straight_line_kernel(40)
        uid = kernel.blocks[0].uid
        lanes = [trace_with({uid: 50_000}) for _ in range(16 * 64)]
        report = time_gpu_kernel(device, kernel, lanes)
        power = report.energy_joules / report.seconds
        assert power <= device.power_budget_watts * 1.01


class TestCpuModel:
    def test_predictable_branches_cheap(self):
        biased = ExecTrace()
        biased.instructions = 10_000
        biased.branch_stats = {1: [9_990, 10_000]}
        random_trace = ExecTrace()
        random_trace.instructions = 10_000
        random_trace.branch_stats = {1: [5_000, 10_000]}
        fast = time_cpu_execution(i7_4770(), [biased])
        slow = time_cpu_execution(i7_4770(), [random_trace])
        assert fast.cycles < slow.cycles

    def test_multicore_scaling(self):
        trace = ExecTrace()
        trace.instructions = 100_000
        two = time_cpu_execution(i7_4650u(), [trace])
        four = time_cpu_execution(i7_4770(), [trace])
        assert four.seconds < two.seconds

    def test_l1_absorbs_hot_accesses(self):
        hot = ExecTrace()
        hot.instructions = 1000
        hot.mem_events = [
            MemEvent(1, i, 0x100 + (i % 8) * 4, 4, False) for i in range(500)
        ]
        cold = ExecTrace()
        cold.instructions = 1000
        cold.mem_events = [
            MemEvent(1, i, 0x100 + i * 4096, 4, False) for i in range(500)
        ]
        fast = time_cpu_execution(i7_4770(), [hot])
        slow = time_cpu_execution(i7_4770(), [cold])
        assert fast.cycles < slow.cycles

    def test_energy_positive_and_power_sane(self):
        trace = ExecTrace()
        trace.instructions = 1_000_000
        for device in (i7_4650u(), i7_4770()):
            report = time_cpu_execution(device, [trace])
            power = report.energy_joules / report.seconds
            assert 1.0 < power < 120.0


class TestSystems:
    def test_paper_system_configs(self):
        ub = ultrabook()
        dt = desktop()
        assert ub.cpu.cores == 2 and dt.cpu.cores == 4
        assert ub.gpu.num_eus == 40 and dt.gpu.num_eus == 20
        assert ub.gpu.threads_per_eu == 7 == dt.gpu.threads_per_eu
        assert ub.gpu.simd_width == 16 == dt.gpu.simd_width
        assert ub.tdp_watts == 15.0 and dt.tdp_watts == 84.0
