"""Tests for the evaluation harness itself: measurement plumbing, figure
data structures, table generation, and the workload input generators."""

import pytest

from repro.eval import (
    GPU_CONFIG_LABELS,
    WORKLOAD_ORDER,
    geomean,
    measure_workload,
    table1_rows,
)
from repro.eval.figures import FigureData
from repro.eval.formatting import render_series, render_table
from repro.runtime.system import desktop, ultrabook
from repro.workloads import (
    all_workloads,
    integral_image,
    road_network,
    synthetic_image,
)


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([3.0]) == 3.0
        assert geomean([]) == 0.0

    def test_scale_invariance(self):
        values = [1.5, 2.5, 0.5]
        assert geomean(v * 2 for v in values) == pytest.approx(
            2 * geomean(values)
        )


class TestMeasurement:
    @pytest.fixture(scope="class")
    def measurement(self):
        workloads = all_workloads()
        return measure_workload(workloads["BTree"], ultrabook(), scale=0.15)

    def test_all_configs_measured(self, measurement):
        assert set(measurement.gpu_seconds) == set(GPU_CONFIG_LABELS)
        assert set(measurement.gpu_energy) == set(GPU_CONFIG_LABELS)

    def test_positive_quantities(self, measurement):
        assert measurement.cpu_seconds > 0
        assert measurement.cpu_energy > 0
        assert all(v > 0 for v in measurement.gpu_seconds.values())

    def test_ratio_helpers(self, measurement):
        assert measurement.speedup("GPU+ALL") == pytest.approx(
            measurement.cpu_seconds / measurement.gpu_seconds["GPU+ALL"]
        )
        assert measurement.energy_savings("GPU") == pytest.approx(
            measurement.cpu_energy / measurement.gpu_energy["GPU"]
        )

    def test_cache_returns_same_object(self):
        workloads = all_workloads()
        first = measure_workload(workloads["BTree"], ultrabook(), scale=0.15)
        second = measure_workload(workloads["BTree"], ultrabook(), scale=0.15)
        assert first is second

    def test_systems_cached_separately(self):
        workloads = all_workloads()
        ub = measure_workload(workloads["BTree"], ultrabook(), scale=0.15)
        dt = measure_workload(workloads["BTree"], desktop(), scale=0.15)
        assert ub is not dt
        assert ub.system == "Ultrabook" and dt.system == "Desktop"


class TestFigureData:
    def _figure(self):
        return FigureData(
            title="t",
            system="s",
            metric="speedup",
            labels=["A", "B"],
            series={"GPU": [1.0, 2.0], "GPU+ALL": [2.0, 4.0]},
        )

    def test_value_lookup(self):
        fig = self._figure()
        assert fig.value("B", "GPU+ALL") == 4.0

    def test_averages(self):
        fig = self._figure()
        assert fig.averages()["GPU"] == pytest.approx(geomean([1.0, 2.0]))

    def test_render_contains_rows_and_geomean(self):
        text = self._figure().render()
        assert "A" in text and "B" in text and "geomean" in text


class TestTableRendering:
    def test_render_table_alignment(self):
        text = render_table(["col", "x"], [["a", "1"], ["bbbb", "22"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[2]
        assert len(lines) == 6

    def test_render_series(self):
        text = render_series("S", ["w1"], {"GPU": [1.234]})
        assert "1.23" in text

    def test_table1_order_matches_paper(self):
        rows = table1_rows(0.2)
        assert [r.benchmark for r in rows] == list(WORKLOAD_ORDER)


class TestInputGenerators:
    def test_road_network_properties(self):
        graph = road_network(10, 10, seed=1)
        assert graph.num_nodes == 100
        # symmetric edges
        edges = set()
        for node in range(graph.num_nodes):
            for target, weight in graph.neighbours(node):
                edges.add((node, target, weight))
        for a, b, w in edges:
            assert (b, a, w) in edges
        # road-network-like: low average degree
        assert 1.0 < graph.num_edges / graph.num_nodes < 5.0
        # no self loops
        assert all(a != b for a, b, _ in edges)

    def test_road_network_deterministic(self):
        g1 = road_network(8, 8, seed=42)
        g2 = road_network(8, 8, seed=42)
        assert g1.columns == g2.columns and g1.weights == g2.weights
        g3 = road_network(8, 8, seed=43)
        assert g1.columns != g3.columns

    def test_integral_image_correctness(self):
        image = synthetic_image(12, 9, seed=2)
        ii = integral_image(image)
        # ii[y][x] = sum of image[0..y)[0..x)
        for y in (0, 3, 9):
            for x in (0, 5, 12):
                want = sum(image[r][c] for r in range(y) for c in range(x))
                assert ii[y][x] == want

    def test_synthetic_image_has_blobs_and_noise(self):
        image = synthetic_image(32, 32)
        flat = [v for row in image for v in row]
        assert max(flat) > 180  # bright blobs present
        assert len(set(flat)) > 50  # per-pixel texture, not flat regions
