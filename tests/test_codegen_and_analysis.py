"""Tests for OpenCL C emission and the Figure 6 IR statistics."""

import pytest

from repro.analysis import classify_instruction, ir_mix, kernel_mix
from repro.passes import OptConfig
from repro.runtime import compile_source
from repro.workloads import all_workloads


SIMPLE = """
class Body {
public:
  float* data;
  int n;
  void operator()(int i) {
    float acc = 0.0f;
    for (int j = 0; j < n; j++) { acc += data[j]; }
    data[i] = acc;
  }
};
"""


class TestOpenClEmission:
    def test_kernel_signature_matches_paper(self):
        prog = compile_source(SIMPLE, OptConfig.gpu())
        text = prog.kernel_for("Body").opencl_source
        assert "__kernel void" in text
        assert "__global char *gpu_base" in text
        assert "CpuPtr cpu_base" in text
        assert "svm_const" in text
        assert "get_global_id(0)" in text

    def test_translation_uses_as_gpu_ptr_macro(self):
        prog = compile_source(SIMPLE, OptConfig.gpu())
        text = prog.kernel_for("Body").opencl_source
        assert "#define AS_GPU_PTR(T, p)" in text
        assert "AS_GPU_PTR(char," in text

    def test_emission_for_every_workload(self):
        """Every workload's kernel must emit without crashing and contain
        the structural pieces."""
        import warnings

        for name, cls in all_workloads().items():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                prog = cls.compile(OptConfig.gpu_all())
            kinfo = prog.kernel_for(cls().body_class)
            assert kinfo.opencl_source, name
            assert "__kernel void" in kinfo.opencl_source, name
            assert "/* " not in kinfo.opencl_source.split("\n")[0]

    def test_no_unhandled_ops(self):
        import warnings

        for name, cls in all_workloads().items():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                prog = cls.compile(OptConfig.gpu_all())
            kinfo = prog.kernel_for(cls().body_class)
            assert "unhandled" not in kinfo.opencl_source, name


class TestIrStatistics:
    def test_classification(self):
        assert classify_instruction("br") == "control"
        assert classify_instruction("condbr") == "control"
        assert classify_instruction("phi") == "control"
        assert classify_instruction("load") == "memory"
        assert classify_instruction("store") == "memory"
        assert classify_instruction("call", "atomic.min.i32") == "memory"
        assert classify_instruction("call", "math.sqrt.f32") == "remaining"
        assert classify_instruction("call", "some.function") == "control"
        assert classify_instruction("add") == "remaining"
        assert classify_instruction("gep") == "remaining"

    def test_mix_percentages_sum(self):
        prog = compile_source(SIMPLE, OptConfig.gpu())
        mix = kernel_mix(prog, "Body")
        assert mix.total > 0
        assert mix.control_pct + mix.memory_pct + mix.remaining_pct == pytest.approx(100.0)
        assert mix.irregularity_pct == pytest.approx(
            mix.control_pct + mix.memory_pct
        )

    def test_pointer_chasing_more_irregular_than_math(self):
        chasing = """
        class Node { public: Node* next; int v; };
        class Chase {
        public:
          Node** heads; int* out;
          void operator()(int i) {
            Node* n = heads[i];
            int acc = 0;
            while (n != 0) { acc += n->v; n = n->next; }
            out[i] = acc;
          }
        };
        """
        math_heavy = """
        class Math {
        public:
          float* out;
          void operator()(int i) {
            float x = (float)i;
            float y = x * 2.0f + x * x - x * 0.5f + x * x * x;
            y = y * y + y * 0.25f + y * y - y * 3.0f + y * y * 0.125f;
            y = y + y * y - y * 0.5f + y * 2.0f + y * y * 0.0625f;
            out[i] = y;
          }
        };
        """
        chase_prog = compile_source(chasing, OptConfig.gpu())
        math_prog = compile_source(math_heavy, OptConfig.gpu())
        chase_mix = kernel_mix(chase_prog, "Chase")
        math_mix = kernel_mix(math_prog, "Math")
        assert chase_mix.irregularity_pct > math_mix.irregularity_pct
