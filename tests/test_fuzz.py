"""The fuzz subsystem's own tests: determinism, the reducer, corpus I/O,
and an injected-bug self-check proving the whole detect → shrink → write
pipeline actually fires when the compiler is wrong."""

import json
import random

import pytest

from repro.fuzz import (
    FuzzDriver,
    IRProgram,
    SourceProgram,
    build_ir,
    generate_ir_program,
    generate_source_program,
    ir_divergences,
    load_corpus_entry,
    reduce_source_program,
    run_source_program,
    source_engine_divergences,
)
from repro.fuzz.driver import write_reproducer
from repro.fuzz.reduce import reduce_spec


class TestDeterminism:
    def test_source_generator_is_seed_deterministic(self):
        docs = [
            generate_source_program(random.Random(71), seed=71).to_dict()
            for _ in range(2)
        ]
        assert docs[0] == docs[1]

    def test_ir_generator_is_seed_deterministic(self):
        docs = [
            generate_ir_program(random.Random(71), seed=71).to_dict()
            for _ in range(2)
        ]
        assert docs[0] == docs[1]

    def test_iterations_are_independent_of_campaign_length(self):
        """Iteration i derives its own rng from (seed, i), so the same
        iteration yields the same program in any campaign."""
        short = FuzzDriver(seed=3, iterations=4, target="engines")
        long = FuzzDriver(seed=3, iterations=64, target="engines")
        for i in range(4):
            _, _, a, _, _ = short.run_iteration(i)
            _, _, b, _, _ = long.run_iteration(i)
            assert a.to_dict() == b.to_dict()

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz target"):
            FuzzDriver(target="kernels")


class TestOracles:
    def test_clean_campaign_smoke(self):
        report = FuzzDriver(seed=0, iterations=8, target="all").run()
        assert report.ok
        assert "OK" in report.summary()

    def test_source_outcome_has_digest_and_trace(self):
        program = generate_source_program(random.Random(5), seed=5)
        outcome = run_source_program(program, keep_traces=True)
        assert outcome.ok
        assert outcome.region_digest and outcome.heap_digest
        assert outcome.trace_sig is not None

    def test_spec_docs_round_trip(self):
        src = generate_source_program(random.Random(6), seed=6)
        assert SourceProgram.from_dict(src.to_dict()).to_dict() == src.to_dict()
        irp = generate_ir_program(random.Random(6), seed=6)
        assert IRProgram.from_dict(irp.to_dict()).to_dict() == irp.to_dict()


class TestReducer:
    def test_unreproducible_input_returned_untouched(self):
        program = generate_source_program(random.Random(9), seed=9)
        result = reduce_source_program(program, lambda p: False)
        assert result.doc == program.to_dict()
        assert result.kept == 0

    def test_shrinks_statement_lists(self):
        # seed 1 generates at least one loop statement
        program = generate_source_program(random.Random(1), seed=1)
        doc = program.to_dict()
        # Predicate: the program still contains at least one loop stmt —
        # the reducer should strip everything else.
        def has_loop(stmts):
            return any(
                s.get("k") == "loop" or has_loop(s.get("body", []) or [])
                or has_loop(s.get("then", []) or [])
                or has_loop(s.get("else", []) or [])
                for s in stmts
            )

        assert has_loop(doc["stmts"])
        result = reduce_source_program(
            program, lambda p: has_loop(p.to_dict()["stmts"])
        )
        assert has_loop(result.doc["stmts"])
        assert len(json.dumps(result.doc)) <= len(json.dumps(doc))

    def test_reduce_spec_prunes_to_minimum(self):
        doc = {
            "seed": 1,
            "n": 8,
            "stmts": [
                {"k": "assign", "value": 40},
                {"k": "assign", "value": 41},
                {"k": "assign", "value": 99},
            ],
        }

        def rebuild(d):
            return d

        def predicate(d):
            return any(s.get("value") == 99 for s in d["stmts"])

        result = reduce_spec(doc, rebuild, predicate)
        values = [s["value"] for s in result.doc["stmts"]]
        assert values == [99]
        assert result.kept > 0


class TestInjectedBug:
    """End-to-end self-check: break a pass on purpose; the campaign must
    detect the divergence, shrink the reproducer, and write the corpus
    entry.  This is the test that proves the oracle is not vacuous."""

    def _swap_sub_operands(self, fn):
        for instr in fn.instructions():
            if instr.op == "sub":
                a, b = instr.operands
                instr.operands[0], instr.operands[1] = b, a
        return True

    def test_campaign_catches_injected_miscompile(self, tmp_path, monkeypatch):
        from repro.passes.pipeline import PASS_REGISTRY

        monkeypatch.setitem(
            PASS_REGISTRY, "constfold", self._swap_sub_operands
        )
        driver = FuzzDriver(
            seed=0,
            iterations=40,
            target="ir",
            corpus_dir=tmp_path,
            max_divergences=1,
        )
        report = driver.run()
        assert not report.ok, "injected sub-operand swap went undetected"
        divergence = report.divergences[0]
        assert divergence.kind == "ir"
        assert any("constfold" in d for d in divergence.diffs)
        # the reducer ran and kept a reproducing (smaller or equal) spec
        assert divergence.reduced_doc is not None
        buggy = IRProgram.from_dict(divergence.reduced_doc)
        assert ir_divergences(buggy)
        # corpus round-trip
        assert report.corpus_files
        kind, program, doc = load_corpus_entry(report.corpus_files[0])
        assert kind == "ir"
        assert program.to_dict() == divergence.reduced_doc

    def test_reduced_reproducer_is_clean_after_unpatching(
        self, tmp_path, monkeypatch
    ):
        from repro.passes.pipeline import PASS_REGISTRY

        with monkeypatch.context() as patch:
            patch.setitem(PASS_REGISTRY, "constfold", self._swap_sub_operands)
            report = FuzzDriver(
                seed=0,
                iterations=40,
                target="ir",
                corpus_dir=tmp_path,
                max_divergences=1,
            ).run()
            assert not report.ok
        # registry restored: the same reproducer must now replay clean
        kind, program, _ = load_corpus_entry(report.corpus_files[0])
        assert not ir_divergences(program)


class TestObservability:
    def test_campaign_counters(self):
        from repro.obs import Observer

        observer = Observer()
        report = FuzzDriver(
            seed=0, iterations=6, target="ir", observer=observer
        ).run()
        assert report.ok
        counters = observer.counters
        assert int(counters.get("fuzz.iterations")) == 6
        assert int(counters.get("fuzz.target.ir")) == 6
        assert "fuzz.divergences" not in counters
