"""Structural unit tests for the data structures the workloads build in
shared memory: B-tree bulk load, skip-list levels, octree ropes, cloth
springs, cascade layout — independent of kernel execution."""

import math

import pytest

from repro.passes import OptConfig
from repro.runtime.system import ultrabook
from repro.workloads.barneshut import BarnesHutWorkload, _build_octree
from repro.workloads.btree import ORDER, BTreeWorkload
from repro.workloads.clothphysics import ClothPhysicsWorkload
from repro.workloads.facedetect import NUM_STAGES, FaceDetectWorkload
from repro.workloads.skiplist import MAX_LEVEL, SkipListWorkload


class TestBTreeStructure:
    @pytest.fixture(scope="class")
    def state(self):
        workload = BTreeWorkload()
        rt = BTreeWorkload.make_runtime(OptConfig.gpu_all(), ultrabook())
        return rt, workload.build(rt, 0.2)

    def test_all_keys_reachable_by_host_walk(self, state):
        rt, st = state
        root = st.body.deref("root")
        found = {}

        def walk(node):
            keys = node.view("keys")
            values = node.view("values")
            children = node.view("children")
            if node.is_leaf:
                for k in range(node.num_keys):
                    found[keys[k]] = values[k]
                return
            for k in range(node.num_keys + 1):
                child = children[k]
                assert child != 0
                walk(rt.view("BTreeNode", child))

        walk(root)
        assert found == st.table

    def test_leaves_within_order(self, state):
        rt, st = state
        root = st.body.deref("root")
        sizes = []

        def walk(node):
            if node.is_leaf:
                sizes.append(node.num_keys)
                return
            children = node.view("children")
            for k in range(node.num_keys + 1):
                walk(rt.view("BTreeNode", children[k]))

        walk(root)
        assert all(1 <= s <= ORDER for s in sizes)
        # deliberately uneven fill -> irregular search depth
        assert len(set(sizes)) > 1

    def test_keys_sorted_within_leaves(self, state):
        rt, st = state
        root = st.body.deref("root")

        def walk(node):
            keys = [node.view("keys")[k] for k in range(node.num_keys)]
            assert keys == sorted(keys)
            if not node.is_leaf:
                children = node.view("children")
                for k in range(node.num_keys + 1):
                    walk(rt.view("BTreeNode", children[k]))

        walk(root)


class TestSkipListStructure:
    @pytest.fixture(scope="class")
    def state(self):
        workload = SkipListWorkload()
        rt = SkipListWorkload.make_runtime(OptConfig.gpu_all(), ultrabook())
        return rt, workload.build(rt, 0.2)

    def test_level_zero_is_sorted_and_complete(self, state):
        rt, st = state
        head = st.body.deref("head")
        node_addr = head.view("next")[0]
        keys = []
        while node_addr:
            node = rt.view("SkipNode", node_addr)
            keys.append(node.key)
            node_addr = node.view("next")[0]
        assert keys == sorted(st.table)

    def test_higher_levels_are_sublists(self, state):
        rt, st = state

        def level_keys(level):
            head = st.body.deref("head")
            node_addr = head.view("next")[level]
            keys = []
            while node_addr:
                node = rt.view("SkipNode", node_addr)
                keys.append(node.key)
                node_addr = node.view("next")[level]
            return keys

        previous = level_keys(0)
        for level in range(1, MAX_LEVEL):
            current = level_keys(level)
            assert set(current) <= set(previous)
            assert current == sorted(current)
            previous = current

    def test_geometric_level_decay(self, state):
        rt, st = state
        head = st.body.deref("head")
        counts = []
        for level in range(3):
            n = 0
            node_addr = head.view("next")[level]
            while node_addr:
                node = rt.view("SkipNode", node_addr)
                n += 1
                node_addr = node.view("next")[level]
            counts.append(n)
        assert counts[0] > counts[1] > counts[2] > 0


class TestOctreeRopes:
    def test_rope_traversal_visits_all_leaves(self):
        workload = BarnesHutWorkload()
        rt = BarnesHutWorkload.make_runtime(OptConfig.gpu_all(), ultrabook())
        state = workload.build(rt, 0.2)
        n = len(state.positions)
        root = state.body.deref("root")
        visited = []
        node = root
        steps = 0
        while node is not None and steps < 100_000:
            steps += 1
            if node.more == 0 and node.body_index >= 0:
                visited.append(node.body_index)
            next_addr = node.more if node.more else node.next
            node = rt.view("OctNode", next_addr) if next_addr else None
        assert sorted(visited) == list(range(n))

    def test_center_of_mass_consistency(self):
        positions = [(0.25, 0.25, 0.25), (0.75, 0.75, 0.75)]
        masses = [1.0, 3.0]
        root = _build_octree(positions, masses)
        assert root.mass == pytest.approx(4.0)
        assert root.cx == pytest.approx((0.25 * 1 + 0.75 * 3) / 4)

    def test_unbalanced_tree_from_clusters(self):
        workload = BarnesHutWorkload()
        rt = BarnesHutWorkload.make_runtime(OptConfig.gpu_all(), ultrabook())
        state = workload.build(rt, 0.3)
        root = state.body.deref("root")
        # walk the rope recording leaf depths via the size field (leaf size
        # halves per level): clustered input must produce varied depths
        depths = set()
        node_addr = state.body.root
        steps = 0
        while node_addr and steps < 100_000:
            steps += 1
            node = rt.view("OctNode", node_addr)
            if node.more == 0 and node.body_index >= 0 and node.size > 0:
                depths.add(round(math.log2(1.0 / node.size)))
            node_addr = node.more if node.more else node.next
        assert len(depths) >= 3  # at least three distinct leaf depths


class TestClothStructure:
    def test_spring_symmetry_and_counts(self):
        workload = ClothPhysicsWorkload()
        rt = ClothPhysicsWorkload.make_runtime(OptConfig.gpu_all(), ultrabook())
        state = workload.build(rt, 0.4)
        pairs = set()
        for node_index, springs in enumerate(state.springs):
            for other, rest in springs:
                pairs.add((node_index, other))
        for a, b in pairs:
            assert (b, a) in pairs  # every spring has its mirror
        # corner nodes have 3 springs, interior nodes 8
        assert len(state.springs[0]) == 3
        interior = state.width + 1
        assert len(state.springs[interior]) == 8

    def test_pinned_corners(self):
        workload = ClothPhysicsWorkload()
        rt = ClothPhysicsWorkload.make_runtime(OptConfig.gpu_all(), ultrabook())
        state = workload.build(rt, 0.4)
        assert state.nodes[0].inv_mass == 0.0
        assert state.nodes[state.width - 1].inv_mass == 0.0
        assert state.nodes[state.width].inv_mass == 1.0


class TestCascadeStructure:
    def test_cascade_layout_in_svm(self):
        workload = FaceDetectWorkload()
        rt = FaceDetectWorkload.make_runtime(OptConfig.gpu_all(), ultrabook())
        state = workload.build(rt, 0.4)
        cascade = state.body.deref("cascade")
        assert cascade.num_stages == NUM_STAGES
        stages_addr = cascade.stages
        first = rt.view("CascadeStage", stages_addr)
        assert first.num_features >= 1
        feature = rt.view("HaarFeature", first.features)
        assert 0 <= feature.x0 < feature.x1 <= 8
        assert 0 <= feature.y0 < feature.y1 <= 8
