"""Differential pass testing over the nine evaluation workloads.

Every disableable pass in ``repro.passes.pipeline`` is switched off in
isolation (``OptConfig.without_pass``); the workload must still validate
against its Python reference AND leave the shared region bit-identical
(vtable symbol-id slots masked — they are per-module metadata) to the
full-pipeline baseline.  One test id per pass × workload.

Passes in ``GPU_SAFE_DISABLE`` are compared on the GPU path; ``inline``
and ``devirt`` are structurally required for device lowering (uninlined
callees keep untranslated dereferences, vtable pointers are CPU
addresses), so their disabled configurations run on the CPU path.

The engines are proven bit-identical in ``test_engine_equivalence``, so
running the threaded-code engine here also certifies interpreter results.
"""

import hashlib
import warnings

import pytest

from repro.passes import OptConfig
from repro.passes.pipeline import DISABLEABLE_PASSES, GPU_SAFE_DISABLE
from repro.workloads import all_workloads

WORKLOADS = all_workloads()
SCALE = 0.15

_baselines: dict = {}


def _heap_digest(rt) -> str:
    """Region digest with vtable globals masked (their symbol ids are
    assigned per compiled module and differ legitimately across configs)."""
    raw = bytearray(rt.region.physical.data)
    for gvar in rt.program.module.globals.values():
        init = gvar.initializer
        if not (isinstance(init, tuple) and init and init[0] == "vtable"):
            continue
        if gvar.address is None:
            continue
        offset = gvar.address - rt.region.cpu_base
        size = max(1, gvar.value_type.size())
        raw[offset : offset + size] = b"\x00" * size
    return hashlib.sha256(bytes(raw)).hexdigest()


def _run(name: str, config: OptConfig, on_cpu: bool) -> str:
    workload = WORKLOADS[name]()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        rt = workload.make_runtime(config, collect_mem_events=False)
        state = workload.build(rt, SCALE)
        workload.run(rt, state, on_cpu=on_cpu)
        workload.validate(rt, state)
        return _heap_digest(rt)


def _baseline(name: str, on_cpu: bool) -> str:
    key = (name, on_cpu)
    if key not in _baselines:
        _baselines[key] = _run(name, OptConfig.gpu_all(), on_cpu)
    return _baselines[key]


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("pass_name", DISABLEABLE_PASSES)
def test_disabling_pass_preserves_results(pass_name, name):
    on_cpu = pass_name not in GPU_SAFE_DISABLE
    digest = _run(name, OptConfig.gpu_all().without_pass(pass_name), on_cpu)
    assert digest == _baseline(name, on_cpu), (
        f"{name}: disabling {pass_name!r} changed the final heap state"
    )
