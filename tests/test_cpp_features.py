"""End-to-end tests for the C++ features the paper advertises (section 2):
classes, virtual functions, multiple inheritance, operator and function
overloading, templates, namespaces — all compiled and executed on both
simulated devices."""

import pytest

from repro.ir.types import F32, I32
from repro.runtime import ConcordRuntime, OptConfig, compile_source, ultrabook


def run_kernel(source, body_class, setup, n, on_cpu=False, config=None):
    prog = compile_source(source, config or OptConfig.gpu_all())
    rt = ConcordRuntime(prog, ultrabook())
    body, check = setup(rt)
    rt.parallel_for_hetero(n, body, on_cpu=on_cpu)
    return check()


class TestTemplates:
    def test_class_template_in_device_code(self):
        source = """
        template<typename T> class Pair {
        public:
          T first;
          T second;
          T larger() { return first > second ? first : second; }
        };

        class Body {
        public:
          Pair<int>* pairs;
          int* out;
          void operator()(int i) {
            out[i] = pairs[i].larger();
          }
        };
        """

        def setup(rt):
            pairs = rt.new_array("Pair<i32>", 8)
            out = rt.new_array(I32, 8)
            for i in range(8):
                pairs[i].first = i
                pairs[i].second = 7 - i
            body = rt.new("Body")
            body.pairs = pairs
            body.out = out
            return body, lambda: out.to_list()

        got = run_kernel(source, "Body", setup, 8)
        assert got == [max(i, 7 - i) for i in range(8)]

    def test_two_instantiations_coexist(self):
        source = """
        template<typename T> class Box { public: T item; };
        class Body {
        public:
          Box<int>* ints;
          Box<float>* floats;
          float* out;
          void operator()(int i) {
            out[i] = (float)ints[i].item + floats[i].item;
          }
        };
        """

        def setup(rt):
            ints = rt.new_array("Box<i32>", 4)
            floats = rt.new_array("Box<f32>", 4)
            out = rt.new_array(F32, 4)
            for i in range(4):
                ints[i].item = i * 10
                floats[i].item = i * 0.5
            body = rt.new("Body")
            body.ints = ints
            body.floats = floats
            body.out = out
            return body, lambda: out.to_list()

        got = run_kernel(source, "Body", setup, 4)
        assert got == pytest.approx([i * 10 + i * 0.5 for i in range(4)])


class TestNamespaces:
    def test_namespaced_helper_in_kernel(self):
        source = """
        namespace geom {
          float scale(float x) { return x * 3.0f; }
          namespace deep {
            float shift(float x) { return x + 1.0f; }
          }
        }
        class Body {
        public:
          float* data;
          void operator()(int i) {
            data[i] = geom::scale(geom::deep::shift(data[i]));
          }
        };
        """

        def setup(rt):
            data = rt.new_array(F32, 6)
            data.fill_from(float(i) for i in range(6))
            body = rt.new("Body")
            body.data = data
            return body, lambda: data.to_list()

        got = run_kernel(source, "Body", setup, 6)
        assert got == pytest.approx([(i + 1.0) * 3.0 for i in range(6)])


class TestMultipleInheritance:
    SOURCE = """
    class HasId { public: int id; int get_id() { return id; } };
    class HasWeight { public: float weight; float get_weight() { return weight; } };
    class Item : public HasId, public HasWeight {
    public:
      int bonus;
    };
    class Body {
    public:
      Item* items;
      float* out;
      void operator()(int i) {
        Item* it = &items[i];
        out[i] = (float)it->get_id() + it->get_weight() + (float)it->bonus;
      }
    };
    """

    def test_fields_and_methods_from_both_bases(self):
        def setup(rt):
            items = rt.new_array("Item", 5)
            out = rt.new_array(F32, 5)
            for i in range(5):
                items[i].id = i
                items[i].weight = i * 0.25
                items[i].bonus = 100
            body = rt.new("Body")
            body.items = items
            body.out = out
            return body, lambda: out.to_list()

        got = run_kernel(self.SOURCE, "Body", setup, 5)
        assert got == pytest.approx([i + i * 0.25 + 100 for i in range(5)])

    def test_second_base_this_adjustment(self):
        """Calling a method of a non-primary base must adjust ``this``."""
        prog = compile_source(self.SOURCE, OptConfig.gpu())
        item = prog.class_info("Item")
        weight_base = prog.class_info("HasWeight")
        assert item.upcast_offset(weight_base) > 0


class TestOperatorOverloading:
    def test_arithmetic_operator_on_class(self):
        source = """
        class Vec2 {
        public:
          float x; float y;
          Vec2 operator+(Vec2& other) {
            Vec2 result;
            result.x = x + other.x;
            result.y = y + other.y;
            return result;
          }
          float dot(Vec2& other) { return x * other.x + y * other.y; }
        };
        class Body {
        public:
          Vec2* a;
          Vec2* b;
          float* out;
          void operator()(int i) {
            Vec2 sum = a[i] + b[i];
            out[i] = sum.dot(sum);
          }
        };
        """

        def setup(rt):
            a = rt.new_array("Vec2", 4)
            b = rt.new_array("Vec2", 4)
            out = rt.new_array(F32, 4)
            for i in range(4):
                a[i].x, a[i].y = float(i), float(i + 1)
                b[i].x, b[i].y = 1.0, 2.0
            body = rt.new("Body")
            body.a = a
            body.b = b
            body.out = out
            return body, lambda: out.to_list()

        got = run_kernel(source, "Body", setup, 4)
        expected = [
            (i + 1.0) ** 2 + (i + 3.0) ** 2 for i in range(4)
        ]
        assert got == pytest.approx(expected)

    def test_index_operator(self):
        source = """
        class Table {
        public:
          int* backing;
          int operator[](int k) { return backing[k] * 2; }
        };
        class Body {
        public:
          Table* table;
          int* out;
          void operator()(int i) {
            Table* t = table;
            out[i] = (*t)[i];
          }
        };
        """

        def setup(rt):
            backing = rt.new_array(I32, 6)
            backing.fill_from(range(6))
            table = rt.new("Table")
            table.backing = backing
            out = rt.new_array(I32, 6)
            body = rt.new("Body")
            body.table = table
            body.out = out
            return body, lambda: out.to_list()

        got = run_kernel(source, "Body", setup, 6)
        assert got == [i * 2 for i in range(6)]


class TestMethodOverloading:
    def test_overloads_resolved_by_type(self):
        source = """
        class Calc {
        public:
          int pad;
          int apply(int x) { return x + 1; }
          float apply(float x) { return x * 2.0f; }
        };
        class Body {
        public:
          Calc* calc;
          float* out;
          void operator()(int i) {
            out[i] = (float)calc->apply(i) + calc->apply(0.5f);
          }
        };
        """

        def setup(rt):
            calc = rt.new("Calc")
            out = rt.new_array(F32, 4)
            body = rt.new("Body")
            body.calc = calc
            body.out = out
            return body, lambda: out.to_list()

        got = run_kernel(source, "Body", setup, 4)
        assert got == pytest.approx([(i + 1) + 1.0 for i in range(4)])


class TestCrossDeviceFeatureParity:
    def test_same_results_cpu_and_gpu(self):
        source = """
        namespace util {
          template<typename T> T clamp(T v, T lo, T hi) {
            if (v < lo) return lo;
            if (v > hi) return hi;
            return v;
          }
        }
        class Body {
        public:
          int* data;
          void operator()(int i) {
            data[i] = util::clamp(data[i] * 3 - 10, 0, 50);
          }
        };
        """

        def make(on_cpu):
            def setup(rt):
                data = rt.new_array(I32, 10)
                data.fill_from(range(10))
                body = rt.new("Body")
                body.data = data
                return body, lambda: data.to_list()

            return run_kernel(source, "Body", setup, 10, on_cpu=on_cpu)

        gpu = make(False)
        cpu = make(True)
        expected = [min(max(i * 3 - 10, 0), 50) for i in range(10)]
        assert gpu == cpu == expected
