"""Convenience builder for emitting IR instructions into basic blocks."""

from __future__ import annotations

from typing import Optional, Sequence

from .types import (
    BOOL,
    FloatType,
    I32,
    I64,
    IntType,
    PointerType,
    Type,
    VOID,
)
from .values import (
    BasicBlock,
    Constant,
    Function,
    Instruction,
    Intrinsic,
    Value,
)


class IRBuilder:
    """Appends instructions at an insertion point, LLVM-IRBuilder style."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block
        #: current source location, stamped onto every emitted instruction
        #: (tuple of (line, col) frames, innermost first; None = unknown)
        self.loc: Optional[tuple] = None

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    def set_loc(self, line: int, col: int = 0) -> None:
        self.loc = ((line, col),) if line else None

    # -- core emission -----------------------------------------------------

    def _emit(self, instr: Instruction) -> Instruction:
        assert self.block is not None, "builder has no insertion block"
        assert self.block.terminator is None, (
            f"emitting {instr.op} after terminator in {self.block.name}"
        )
        if instr.loc is None:
            instr.loc = self.loc
        return self.block.append(instr)

    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> Instruction:
        return self._emit(Instruction(op, lhs.type, [lhs, rhs], name))

    def icmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Instruction:
        instr = Instruction("icmp", BOOL, [lhs, rhs], name)
        instr.pred = pred
        return self._emit(instr)

    def fcmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Instruction:
        instr = Instruction("fcmp", BOOL, [lhs, rhs], name)
        instr.pred = pred
        return self._emit(instr)

    def select(self, cond: Value, then: Value, other: Value, name: str = "") -> Instruction:
        return self._emit(Instruction("select", then.type, [cond, then, other], name))

    def cast(self, op: str, value: Value, to: Type, name: str = "") -> Instruction:
        return self._emit(Instruction(op, to, [value], name))

    def alloca(self, alloc_type: Type, name: str = "") -> Instruction:
        instr = Instruction("alloca", PointerType(alloc_type), [], name)
        instr.alloc_type = alloc_type
        return self._emit(instr)

    def load(self, pointer: Value, name: str = "") -> Instruction:
        assert isinstance(pointer.type, PointerType), f"load from non-pointer {pointer.type}"
        return self._emit(Instruction("load", pointer.type.pointee, [pointer], name))

    def store(self, value: Value, pointer: Value) -> Instruction:
        assert isinstance(pointer.type, PointerType), "store to non-pointer"
        return self._emit(Instruction("store", VOID, [value, pointer]))

    def gep(
        self,
        base: Value,
        result_type: PointerType,
        offset: int = 0,
        indices: Sequence[tuple[Value, int]] = (),
        name: str = "",
    ) -> Instruction:
        """Address arithmetic: ``base + offset + sum(index * scale)``.

        ``indices`` is a sequence of ``(value, byte_scale)`` pairs.  The
        result points at ``result_type.pointee``.
        """
        instr = Instruction("gep", result_type, [base, *(v for v, _ in indices)], name)
        instr.gep_offset = offset
        instr.gep_scales = [scale for _, scale in indices]
        return self._emit(instr)

    def call(self, callee, args: Sequence[Value], name: str = "") -> Instruction:
        instr = Instruction("call", callee.return_type, list(args), name)
        instr.callee = callee
        return self._emit(instr)

    def vcall(
        self,
        obj: Value,
        vclass,
        vslot: int,
        ret_type: Type,
        args: Sequence[Value],
        name: str = "",
    ) -> Instruction:
        """Virtual call through ``obj``'s vtable slot ``vslot``.

        Expanded into an inline compare chain by the devirtualization
        pass (paper section 3.2) since GPUs have no function pointers.
        """
        instr = Instruction("vcall", ret_type, [obj, *args], name)
        instr.vclass = vclass
        instr.vslot = vslot
        return self._emit(instr)

    def phi(self, type_: Type, name: str = "") -> Instruction:
        assert self.block is not None
        instr = Instruction("phi", type_, [], name)
        instr.loc = self.loc
        return self.block.insert(self.block.first_non_phi_index(), instr)

    # -- terminators ---------------------------------------------------------

    def br(self, target: BasicBlock) -> Instruction:
        instr = Instruction("br", VOID, [])
        instr.targets = [target]
        return self._emit(instr)

    def condbr(self, cond: Value, then: BasicBlock, other: BasicBlock) -> Instruction:
        instr = Instruction("condbr", VOID, [cond])
        instr.targets = [then, other]
        return self._emit(instr)

    def ret(self, value: Optional[Value] = None) -> Instruction:
        return self._emit(Instruction("ret", VOID, [value] if value is not None else []))

    def unreachable(self) -> Instruction:
        return self._emit(Instruction("unreachable", VOID, []))

    # -- sugar ---------------------------------------------------------------

    def add(self, a, b, name=""):
        return self.binop("add", a, b, name)

    def sub(self, a, b, name=""):
        return self.binop("sub", a, b, name)

    def mul(self, a, b, name=""):
        return self.binop("mul", a, b, name)

    def const(self, value, type_: Type = I64) -> Constant:
        if isinstance(type_, IntType):
            return Constant(type_, type_.wrap(int(value)))
        if isinstance(type_, FloatType):
            return Constant(type_, float(value))
        return Constant(type_, value)

    def i32(self, value: int) -> Constant:
        return Constant(I32, I32.wrap(value))

    def i64(self, value: int) -> Constant:
        return Constant(I64, I64.wrap(value))


def add_phi_incoming(phi: Instruction, value: Value, block: BasicBlock) -> None:
    assert phi.op == "phi"
    phi.operands.append(value)
    phi.phi_blocks.append(block)


def make_intrinsic(name: str, ret: Type, params: Sequence[Type], side_effects: bool) -> Intrinsic:
    from .types import FunctionType

    return Intrinsic(name, FunctionType(ret, tuple(params)), side_effects)
