"""Control-flow-graph analyses: dominators, post-dominators, natural loops.

Dominators use the Cooper–Harvey–Kennedy iterative algorithm over a reverse
post-order numbering.  Post-dominators run the same algorithm on the reversed
CFG with a virtual exit joining every ``ret``/``unreachable`` block.  Natural
loops are found from back edges (edge ``t -> h`` where ``h`` dominates ``t``)
and grouped per header.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .values import BasicBlock, Function


def reverse_postorder(function: Function) -> list[BasicBlock]:
    seen: set[BasicBlock] = set()
    order: list[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        # Iterative DFS to avoid Python recursion limits on deep CFGs.
        stack: list[tuple[BasicBlock, int]] = [(block, 0)]
        seen.add(block)
        while stack:
            current, idx = stack.pop()
            succs = current.successors()
            if idx < len(succs):
                stack.append((current, idx + 1))
                nxt = succs[idx]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                order.append(current)

    visit(function.entry)
    order.reverse()
    return order


class DominatorTree:
    """Immediate-dominator tree plus dominance frontiers."""

    def __init__(self, function: Function):
        self.function = function
        self.rpo = reverse_postorder(function)
        self._rpo_index = {b: i for i, b in enumerate(self.rpo)}
        self.idom: dict[BasicBlock, Optional[BasicBlock]] = {}
        self._compute_idoms()
        self.children: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in self.rpo}
        for block, parent in self.idom.items():
            if parent is not None and parent is not block:
                self.children[parent].append(block)
        self.frontier = self._compute_frontiers()

    def _compute_idoms(self) -> None:
        entry = self.function.entry
        preds = self.function.compute_preds()
        idom: dict[BasicBlock, Optional[BasicBlock]] = {b: None for b in self.rpo}
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for block in self.rpo:
                if block is entry:
                    continue
                new_idom: Optional[BasicBlock] = None
                for pred in preds[block]:
                    if pred not in self._rpo_index or idom.get(pred) is None:
                        continue
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(idom, new_idom, pred)
                if new_idom is not None and idom[block] is not new_idom:
                    idom[block] = new_idom
                    changed = True
        self.idom = idom

    def _intersect(self, idom, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        index = self._rpo_index
        while a is not b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    def _compute_frontiers(self) -> dict[BasicBlock, set[BasicBlock]]:
        frontier: dict[BasicBlock, set[BasicBlock]] = {b: set() for b in self.rpo}
        preds = self.function.compute_preds()
        for block in self.rpo:
            block_preds = [p for p in preds[block] if p in self._rpo_index]
            if len(block_preds) < 2:
                continue
            for pred in block_preds:
                runner = pred
                while runner is not self.idom[block] and runner is not None:
                    frontier[runner].add(block)
                    runner = self.idom[runner]
        return frontier

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        runner: Optional[BasicBlock] = b
        entry = self.function.entry
        while runner is not None:
            if runner is a:
                return True
            if runner is entry:
                return False
            runner = self.idom.get(runner)
        return False

    def reachable(self) -> set[BasicBlock]:
        return set(self.rpo)


@dataclass
class Loop:
    header: BasicBlock
    blocks: set[BasicBlock] = field(default_factory=set)
    latches: list[BasicBlock] = field(default_factory=list)
    parent: Optional["Loop"] = None
    children: list["Loop"] = field(default_factory=list)

    def ordered(self) -> list:
        """Loop blocks in deterministic (uid) order.  ``blocks`` is a set
        for fast membership; iterate THIS for anything that generates code
        or reports, or results will vary run to run with object identity.
        """
        return sorted(self.blocks, key=lambda b: b.uid)

    @property
    def depth(self) -> int:
        depth = 1
        loop = self.parent
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def is_innermost(self) -> bool:
        return not self.children

    def exits(self) -> list[tuple[BasicBlock, BasicBlock]]:
        """(inside_block, outside_successor) pairs leaving the loop."""
        result = []
        for block in self.ordered():
            for succ in block.successors():
                if succ not in self.blocks:
                    result.append((block, succ))
        return result

    def __repr__(self) -> str:
        return f"Loop(header={self.header.name}, {len(self.blocks)} blocks)"


def find_loops(function: Function, domtree: Optional[DominatorTree] = None) -> list[Loop]:
    """Natural loops from back edges, nested via containment."""
    domtree = domtree or DominatorTree(function)
    preds = function.compute_preds()
    loops: dict[BasicBlock, Loop] = {}
    for block in domtree.rpo:
        for succ in block.successors():
            if domtree.dominates(succ, block):
                loop = loops.setdefault(succ, Loop(header=succ))
                loop.latches.append(block)
                _collect_loop_body(loop, block, preds)
    all_loops = list(loops.values())
    for loop in all_loops:
        loop.blocks.add(loop.header)
    # Establish nesting: the parent is the smallest strictly-containing loop.
    for loop in all_loops:
        best: Optional[Loop] = None
        for other in all_loops:
            if other is loop:
                continue
            if loop.header in other.blocks and loop.blocks <= other.blocks:
                if best is None or len(other.blocks) < len(best.blocks):
                    best = other
        loop.parent = best
        if best is not None:
            best.children.append(loop)
    return all_loops


def _collect_loop_body(loop: Loop, latch: BasicBlock, preds) -> None:
    stack = [latch]
    while stack:
        block = stack.pop()
        if block in loop.blocks or block is loop.header:
            continue
        loop.blocks.add(block)
        stack.extend(preds.get(block, []))


class PostDominatorTree:
    """Post-dominators via dominators of the reversed CFG with virtual exit."""

    def __init__(self, function: Function):
        self.function = function
        exits = [
            b
            for b in function.blocks
            if not b.successors() and b.instructions
        ]
        succs: dict[BasicBlock, list[BasicBlock]] = {}
        preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in function.blocks}
        for block in function.blocks:
            succs[block] = block.successors()
            for s in succs[block]:
                preds[s].append(block)
        # Reverse graph: edges succ->block; roots are the exit blocks.
        self._ipdom: dict[BasicBlock, Optional[BasicBlock]] = {}
        order = self._reverse_rpo(exits, preds)
        index = {b: i for i, b in enumerate(order)}
        VIRTUAL_EXIT = None  # represented by None in the idom map
        ipdom: dict[BasicBlock, Optional[BasicBlock]] = {b: None for b in order}
        computed: set[BasicBlock] = set(exits)
        changed = True
        while changed:
            changed = False
            for block in order:
                if block in exits:
                    continue
                candidates = [s for s in succs[block] if s in computed or s in exits]
                new_ipdom: Optional[BasicBlock] = None
                for succ in candidates:
                    if new_ipdom is None:
                        new_ipdom = succ
                    else:
                        new_ipdom = self._intersect(
                            ipdom, index, exits, new_ipdom, succ
                        )
                    if new_ipdom is None:
                        break
                if new_ipdom is not None:
                    computed.add(block)
                    if ipdom[block] is not new_ipdom:
                        ipdom[block] = new_ipdom
                        changed = True
                elif candidates:
                    # Successors post-dominated only by the virtual exit.
                    computed.add(block)
        self._ipdom = ipdom
        self._exits = set(exits)

    def _reverse_rpo(self, exits, preds) -> list[BasicBlock]:
        seen: set[BasicBlock] = set()
        order: list[BasicBlock] = []
        for root in exits:
            if root in seen:
                continue
            stack = [(root, 0)]
            seen.add(root)
            while stack:
                current, idx = stack.pop()
                ps = preds.get(current, [])
                if idx < len(ps):
                    stack.append((current, idx + 1))
                    nxt = ps[idx]
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, 0))
                else:
                    order.append(current)
        order.reverse()
        return order

    def _intersect(self, ipdom, index, exits, a, b):
        seen_limit = len(index) + 2
        steps = 0
        while a is not b:
            steps += 1
            if steps > seen_limit * 4:
                return None
            ia = index.get(a)
            ib = index.get(b)
            if ia is None or ib is None:
                return None
            while ia > ib:
                if a in exits:
                    return None
                a = ipdom.get(a)
                if a is None:
                    return None
                ia = index.get(a)
                if ia is None:
                    return None
            while ib > ia:
                if b in exits:
                    return None
                b = ipdom.get(b)
                if b is None:
                    return None
                ib = index.get(b)
                if ib is None:
                    return None
        return a

    def immediate_postdominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        """None means the (virtual) exit."""
        if block in self._exits:
            return None
        return self._ipdom.get(block)
