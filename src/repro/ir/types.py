"""Type system for the repro IR.

The IR is typed in the LLVM style: fixed-width integers (with an explicit
signedness hint used by the frontend and codegen), IEEE floats, opaque
pointers-to-pointee, fixed-size arrays, and named struct types with
precomputed layout (offset of every field).  Layout is computed with the
usual C rules (natural alignment, struct alignment = max member alignment,
tail padding) so that MiniC++ objects built from Python through ``repro.svm``
views and objects accessed from compiled kernels agree byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

POINTER_SIZE = 8
POINTER_ALIGN = 8


class Type:
    """Base class for all IR types."""

    def size(self) -> int:
        raise NotImplementedError

    def align(self) -> int:
        raise NotImplementedError

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_scalar(self) -> bool:
        return self.is_integer or self.is_float or self.is_pointer


@dataclass(frozen=True)
class VoidType(Type):
    def size(self) -> int:
        raise TypeError("void has no size")

    def align(self) -> int:
        raise TypeError("void has no alignment")

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """Fixed-width integer.  ``signed`` is a frontend hint (wrapping
    arithmetic is two's complement either way); comparisons and
    divisions come in explicitly signed/unsigned flavours at the
    instruction level, so the flag mostly matters for conversions and
    for printing."""

    bits: int
    signed: bool = True

    def size(self) -> int:
        return max(1, self.bits // 8)

    def align(self) -> int:
        return self.size()

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Wrap an arbitrary Python int to this type's range."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.signed and value >= (1 << (self.bits - 1)):
            value -= 1 << self.bits
        return value

    def __str__(self) -> str:
        return f"{'i' if self.signed else 'u'}{self.bits}"


@dataclass(frozen=True)
class FloatType(Type):
    bits: int

    def size(self) -> int:
        return self.bits // 8

    def align(self) -> int:
        return self.size()

    def __str__(self) -> str:
        return f"f{self.bits}"


@dataclass(frozen=True)
class PointerType(Type):
    pointee: Type

    def size(self) -> int:
        return POINTER_SIZE

    def align(self) -> int:
        return POINTER_ALIGN

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    count: int

    def size(self) -> int:
        return self.element.size() * self.count

    def align(self) -> int:
        return self.element.align()

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


@dataclass
class Field:
    name: str
    type: Type
    offset: int = 0


@dataclass
class StructType(Type):
    """A named struct with explicit layout.

    Struct identity is by name (the frontend mangles template
    instantiations and namespaces into the name), which lets recursive
    types like linked-list nodes refer to themselves through
    ``PointerType(StructType(...))`` without infinite recursion: pointer
    equality/size never inspects the pointee layout.
    """

    name: str
    fields: list[Field] = field(default_factory=list)
    _size: int = 0
    _align: int = 1
    complete: bool = False

    def finalize(self, fields: Iterable[tuple[str, Type]]) -> None:
        """Assign field offsets with C layout rules and seal the type."""
        offset = 0
        max_align = 1
        laid_out: list[Field] = []
        for fname, ftype in fields:
            a = ftype.align()
            offset = _round_up(offset, a)
            laid_out.append(Field(fname, ftype, offset))
            offset += ftype.size()
            max_align = max(max_align, a)
        self.fields = laid_out
        self._align = max_align
        self._size = _round_up(max(offset, 1), max_align)
        self.complete = True

    def size(self) -> int:
        if not self.complete:
            raise TypeError(f"size of incomplete struct {self.name}")
        return self._size

    def align(self) -> int:
        if not self.complete:
            raise TypeError(f"align of incomplete struct {self.name}")
        return self._align

    def field_named(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)

    def __str__(self) -> str:
        return f"%{self.name}"

    def __hash__(self) -> int:  # identity by name
        return hash(("struct", self.name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.name == self.name


@dataclass(frozen=True)
class FunctionType(Type):
    ret: Type
    params: tuple[Type, ...]

    def size(self) -> int:
        raise TypeError("function type has no size")

    def align(self) -> int:
        raise TypeError("function type has no alignment")

    def __str__(self) -> str:
        return f"{self.ret} ({', '.join(str(p) for p in self.params)})"


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


# Canonical shared instances --------------------------------------------------

VOID = VoidType()
BOOL = IntType(1, signed=False)
I8 = IntType(8)
U8 = IntType(8, signed=False)
I16 = IntType(16)
U16 = IntType(16, signed=False)
I32 = IntType(32)
U32 = IntType(32, signed=False)
I64 = IntType(64)
U64 = IntType(64, signed=False)
F32 = FloatType(32)
F64 = FloatType(64)
VOIDPTR = PointerType(I8)


def ptr(t: Type) -> PointerType:
    return PointerType(t)
