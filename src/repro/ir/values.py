"""Values, instructions, basic blocks, functions and modules of the IR.

The IR is SSA after the ``mem2reg`` pass: every instruction defines at most
one value, control flow is explicit through terminators, and ``phi``
instructions merge values at join points.  The frontend initially emits
``alloca``/``load``/``store`` for local variables (pre-SSA form), exactly as
CLANG does at -O0, and the pass pipeline promotes them.

Instruction opcodes
-------------------
Arithmetic      add sub mul sdiv udiv fadd fsub fmul fdiv srem urem
Bitwise         shl lshr ashr and or xor
Comparison      icmp (eq ne slt sle sgt sge ult ule ugt uge)
                fcmp (oeq one olt ole ogt oge)
Conversions     zext sext trunc sitofp uitofp fptosi fpext fptrunc
                bitcast ptrtoint inttoptr
Memory          alloca load store gep
Control         br condbr ret select phi unreachable
Calls           call vcall (virtual, expanded by the devirt pass)
Intrinsics      modelled as calls to ``Intrinsic`` callees; see
                :mod:`repro.ir.intrinsics`.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional

from .types import (
    BOOL,
    FunctionType,
    I64,
    IntType,
    PointerType,
    Type,
    VOID,
)

ICMP_PREDS = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")
FCMP_PREDS = ("oeq", "one", "olt", "ole", "ogt", "oge")

BINARY_OPS = frozenset(
    "add sub mul sdiv udiv fadd fsub fmul fdiv srem urem "
    "shl lshr ashr and or xor".split()
)
CAST_OPS = frozenset(
    "zext sext trunc sitofp uitofp fptosi fpext fptrunc "
    "bitcast ptrtoint inttoptr".split()
)
TERMINATOR_OPS = frozenset(("br", "condbr", "ret", "unreachable"))
# Binary ops that commute; used by CSE/constant folding for canonicalization.
COMMUTATIVE_OPS = frozenset("add mul fadd fmul and or xor".split())


class Value:
    """Anything usable as an instruction operand."""

    type: Type

    def short(self) -> str:
        raise NotImplementedError


class Constant(Value):
    """An immediate constant (int/float/bool/null pointer)."""

    __slots__ = ("type", "value")

    def __init__(self, type_: Type, value):
        self.type = type_
        self.value = value

    def short(self) -> str:
        return f"{self.type} {self.value}"

    def __repr__(self) -> str:
        return f"Constant({self.value}: {self.type})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


def const_int(value: int, type_: IntType = I64) -> Constant:
    return Constant(type_, type_.wrap(value))


def const_bool(value: bool) -> Constant:
    return Constant(BOOL, 1 if value else 0)


def null(type_: PointerType) -> Constant:
    return Constant(type_, 0)


class Argument(Value):
    __slots__ = ("type", "name", "function")

    def __init__(self, type_: Type, name: str, function: "Function"):
        self.type = type_
        self.name = name
        self.function = function

    def short(self) -> str:
        return f"{self.type} %{self.name}"

    def __repr__(self) -> str:
        return f"Argument(%{self.name}: {self.type})"


class GlobalVariable(Value):
    """A module-level variable placed in the SVM shared region at link time.

    ``address`` is assigned by the runtime when the program is loaded
    (the paper moves vtables and shared global symbols into the shared
    region; we do the same for every global).
    """

    __slots__ = ("type", "name", "value_type", "initializer", "address")

    def __init__(self, name: str, value_type: Type, initializer=None):
        self.name = name
        self.value_type = value_type
        self.type = PointerType(value_type)
        self.initializer = initializer
        self.address: Optional[int] = None

    def short(self) -> str:
        return f"{self.type} @{self.name}"

    def __repr__(self) -> str:
        return f"GlobalVariable(@{self.name}: {self.value_type})"


class Instruction(Value):
    """A single IR instruction.

    ``operands`` is the list of :class:`Value` inputs.  Extra static
    information (icmp predicate, gep scales, callee, phi incoming
    blocks) lives in dedicated attributes so operand iteration stays
    uniform for the passes.
    """

    _ids = itertools.count()

    __slots__ = (
        "op",
        "type",
        "operands",
        "name",
        "block",
        "pred",
        "alloc_type",
        "callee",
        "gep_offset",
        "gep_scales",
        "phi_blocks",
        "targets",
        "vslot",
        "vclass",
        "uid",
        "annotations",
        "loc",
    )

    def __init__(self, op: str, type_: Type, operands: list[Value], name: str = ""):
        self.op = op
        self.type = type_
        self.operands = list(operands)
        self.name = name
        self.block: Optional[BasicBlock] = None
        self.pred: Optional[str] = None  # icmp/fcmp predicate
        self.alloc_type: Optional[Type] = None  # alloca
        self.callee = None  # call: Function or Intrinsic
        self.gep_offset: int = 0  # gep: constant byte offset
        self.gep_scales: list[int] = []  # gep: byte scale per index operand
        self.phi_blocks: list[BasicBlock] = []  # phi: incoming block per operand
        self.targets: list[BasicBlock] = []  # br/condbr successor blocks
        self.vslot: Optional[int] = None  # vcall: vtable slot index
        self.vclass = None  # vcall: static class (sema ClassInfo)
        self.uid = next(Instruction._ids)
        self.annotations: dict = {}
        # Source location: tuple of (line, col) frames, innermost first.
        # Inlining appends the call site's frames, so an instruction carries
        # its whole call chain (the LLVM debug-info "inlinedAt" shape).
        self.loc: Optional[tuple] = None

    # -- structural helpers ----------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return self.op in TERMINATOR_OPS

    @property
    def has_side_effects(self) -> bool:
        if self.op in ("store", "vcall"):
            return True
        if self.op == "call":
            callee = self.callee
            if callee is None:
                return True
            return getattr(callee, "has_side_effects", True)
        return self.is_terminator

    def replace_uses_of(self, old: Value, new: Value) -> None:
        self.operands = [new if v is old else v for v in self.operands]

    def successors(self) -> list["BasicBlock"]:
        return list(self.targets)

    def short(self) -> str:
        if self.type is VOID or isinstance(self.type, type(VOID)):
            return self.op
        return f"{self.type} %{self.name or self.uid}"

    def __repr__(self) -> str:
        from .printer import format_instruction

        return format_instruction(self)


class BasicBlock:
    _ids = itertools.count()

    def __init__(self, name: str, function: "Function"):
        self.name = name
        self.function = function
        self.instructions: list[Instruction] = []
        self.uid = next(BasicBlock._ids)

    def append(self, instr: Instruction) -> Instruction:
        instr.block = self
        self.instructions.append(instr)
        return instr

    def insert(self, index: int, instr: Instruction) -> Instruction:
        instr.block = self
        self.instructions.insert(index, instr)
        return instr

    def remove(self, instr: Instruction) -> None:
        self.instructions.remove(instr)
        instr.block = None

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        return term.successors() if term else []

    def phis(self) -> list[Instruction]:
        return [i for i in self.instructions if i.op == "phi"]

    def non_phis(self) -> list[Instruction]:
        return [i for i in self.instructions if i.op != "phi"]

    def first_non_phi_index(self) -> int:
        for idx, instr in enumerate(self.instructions):
            if instr.op != "phi":
                return idx
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"BasicBlock({self.name})"


class Function:
    """An IR function: arguments plus a list of basic blocks.

    ``attributes`` carries frontend facts the passes and the runtime
    need: ``kernel`` (device entry point), ``device`` (callable from
    device code), ``body_class`` (the mangled Body class of a kernel),
    ``construct`` ('for'/'reduce'), and restriction-check verdicts.
    """

    def __init__(self, name: str, ftype: FunctionType, param_names: Iterable[str] = ()):
        self.name = name
        self.ftype = ftype
        names = list(param_names) or [f"arg{i}" for i in range(len(ftype.params))]
        self.args = [Argument(t, n, self) for t, n in zip(ftype.params, names)]
        self.blocks: list[BasicBlock] = []
        self.attributes: dict = {}
        self.module: Optional[Module] = None

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    @property
    def return_type(self) -> Type:
        return self.ftype.ret

    def new_block(self, name: str) -> BasicBlock:
        block = BasicBlock(_unique_name(name, {b.name for b in self.blocks}), self)
        self.blocks.append(block)
        return block

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)

    def compute_preds(self) -> dict[BasicBlock, list[BasicBlock]]:
        preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def __repr__(self) -> str:
        return f"Function(@{self.name}, {len(self.blocks)} blocks)"


class Intrinsic:
    """A runtime/device intrinsic callable from IR (not itself IR).

    ``has_side_effects`` drives DCE/CSE; e.g. ``svm.to_gpu`` is pure and
    freely removable, while ``atomic.add`` is not.
    """

    def __init__(self, name: str, ftype: FunctionType, has_side_effects: bool):
        self.name = name
        self.ftype = ftype
        self.has_side_effects = has_side_effects

    @property
    def return_type(self) -> Type:
        return self.ftype.ret

    def __repr__(self) -> str:
        return f"Intrinsic({self.name})"


class Module:
    """A compilation unit: functions, globals, vtables and named structs."""

    def __init__(self, name: str = "module"):
        self.name = name
        #: original source text when lowered from MiniC++ (line profiler
        #: uses it to print source excerpts); empty for hand-built IR.
        self.source_text: str = ""
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVariable] = {}
        self.structs: dict[str, Type] = {}
        # vtables: mangled class name -> list of Function (slot order);
        # materialized into globals in the shared region at load time.
        self.vtables: dict[str, list[Function]] = {}

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name}")
        function.module = self
        self.functions[function.name] = function
        return function

    def add_global(self, gvar: GlobalVariable) -> GlobalVariable:
        if gvar.name in self.globals:
            raise ValueError(f"duplicate global {gvar.name}")
        self.globals[gvar.name] = gvar
        return gvar

    def kernels(self) -> list[Function]:
        return [f for f in self.functions.values() if f.attributes.get("kernel")]

    def __repr__(self) -> str:
        return f"Module({self.name}, {len(self.functions)} functions)"


def _unique_name(base: str, taken: set[str]) -> str:
    if base not in taken:
        return base
    for i in itertools.count(1):
        candidate = f"{base}.{i}"
        if candidate not in taken:
            return candidate
    raise AssertionError("unreachable")
