"""Textual form of the IR, for debugging, tests and golden files."""

from __future__ import annotations

from .types import VOID, VoidType
from .values import (
    Argument,
    BasicBlock,
    Constant,
    Function,
    GlobalVariable,
    Instruction,
    Intrinsic,
    Module,
    Value,
)


def value_ref(value: Value) -> str:
    if isinstance(value, Constant):
        return str(value.value)
    if isinstance(value, Argument):
        return f"%{value.name}"
    if isinstance(value, GlobalVariable):
        return f"@{value.name}"
    if isinstance(value, Instruction):
        return f"%{value.name or 't' + str(value.uid)}"
    return repr(value)


def format_instruction(instr: Instruction) -> str:
    ops = ", ".join(value_ref(o) for o in instr.operands)
    result = "" if isinstance(instr.type, VoidType) else f"{value_ref(instr)} = "
    if instr.op in ("icmp", "fcmp"):
        return f"{result}{instr.op} {instr.pred} {ops}"
    if instr.op == "alloca":
        return f"{result}alloca {instr.alloc_type}"
    if instr.op == "gep":
        parts = [value_ref(instr.operands[0])]
        if instr.gep_offset:
            parts.append(f"+{instr.gep_offset}")
        for value, scale in zip(instr.operands[1:], instr.gep_scales):
            parts.append(f"+{value_ref(value)}*{scale}")
        return f"{result}gep {' '.join(parts)} -> {instr.type}"
    if instr.op == "call":
        callee = instr.callee
        cname = callee.name if callee is not None else "?"
        return f"{result}call @{cname}({ops})"
    if instr.op == "vcall":
        return (
            f"{result}vcall slot={instr.vslot} "
            f"class={getattr(instr.vclass, 'name', instr.vclass)}({ops})"
        )
    if instr.op == "phi":
        pairs = ", ".join(
            f"[{value_ref(v)}, {b.name}]"
            for v, b in zip(instr.operands, instr.phi_blocks)
        )
        return f"{result}phi {instr.type} {pairs}"
    if instr.op == "br":
        return f"br {instr.targets[0].name}"
    if instr.op == "condbr":
        return (
            f"condbr {value_ref(instr.operands[0])}, "
            f"{instr.targets[0].name}, {instr.targets[1].name}"
        )
    if instr.op == "ret":
        return f"ret {ops}" if ops else "ret"
    if instr.op == "store":
        return f"store {value_ref(instr.operands[0])} -> {value_ref(instr.operands[1])}"
    suffix = f" : {instr.type}" if not isinstance(instr.type, VoidType) else ""
    return f"{result}{instr.op} {ops}{suffix}"


def format_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    lines.extend(f"  {format_instruction(i)}" for i in block.instructions)
    return "\n".join(lines)


def format_function(function: Function) -> str:
    args = ", ".join(f"{a.type} %{a.name}" for a in function.args)
    attrs = " ".join(
        f"[{k}]" for k, v in sorted(function.attributes.items(), key=lambda kv: kv[0]) if v
    )
    head = f"func @{function.name}({args}) -> {function.ftype.ret} {attrs}".rstrip()
    body = "\n".join(format_block(b) for b in function.blocks)
    return f"{head} {{\n{body}\n}}"


def format_module(module: Module) -> str:
    chunks = []
    for gvar in module.globals.values():
        chunks.append(f"global @{gvar.name} : {gvar.value_type}")
    for cls, slots in module.vtables.items():
        entries = ", ".join(f.name for f in slots)
        chunks.append(f"vtable {cls} = [{entries}]")
    chunks.extend(format_function(f) for f in module.functions.values())
    return "\n\n".join(chunks)
