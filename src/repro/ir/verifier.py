"""IR structural verifier.

Run after the frontend and between passes in debug/test configurations to
catch malformed IR early: missing terminators, phi/predecessor mismatches,
type errors on memory ops, uses that do not dominate definitions (only
checked for SSA-form functions, i.e. those without allocas of promoted
scalars), and dangling block references.
"""

from __future__ import annotations

from .cfg import DominatorTree
from .types import IntType, PointerType, VoidType
from .values import Argument, Constant, Function, GlobalVariable, Instruction, Module


class VerificationError(Exception):
    pass


def verify_module(module: Module) -> None:
    for function in module.functions.values():
        if function.blocks:
            verify_function(function)


#: ops that must keep ``loc`` metadata in functions lowered from source
#: (``attributes["source_locs"]``) — the profiler's attribution anchors.
_LOC_REQUIRED_OPS = frozenset({"load", "store", "call", "vcall"})


def verify_function(function: Function) -> None:
    blocks = set(function.blocks)
    defined: set[Instruction] = set()
    has_locs = bool(function.attributes.get("source_locs"))
    for block in function.blocks:
        if block.terminator is None:
            raise VerificationError(
                f"{function.name}: block {block.name} has no terminator"
            )
        for idx, instr in enumerate(block.instructions):
            if instr.is_terminator and idx != len(block.instructions) - 1:
                raise VerificationError(
                    f"{function.name}: terminator {instr.op} not at end of {block.name}"
                )
            if instr.op == "phi" and idx > block.first_non_phi_index() - 1 and (
                block.instructions[idx - 1].op != "phi" if idx else False
            ):
                raise VerificationError(
                    f"{function.name}: phi not grouped at head of {block.name}"
                )
            for target in instr.targets:
                if target not in blocks:
                    raise VerificationError(
                        f"{function.name}: {block.name} branches to removed block "
                        f"{target.name}"
                    )
            _check_types(function, instr)
            if has_locs and instr.op in _LOC_REQUIRED_OPS and instr.loc is None:
                raise VerificationError(
                    f"{function.name}: {instr.op} in {block.name} lost its "
                    f"source location (function is marked source_locs)"
                )
            defined.add(instr)

    preds = function.compute_preds()
    for block in function.blocks:
        expected = preds[block]
        for phi in block.phis():
            if not phi.operands:
                raise VerificationError(
                    f"{function.name}: phi in {block.name} has no incoming values"
                )
            if len(phi.operands) != len(phi.phi_blocks):
                raise VerificationError(
                    f"{function.name}: phi operand/block arity mismatch in {block.name}"
                )
            # One entry per predecessor block.  A block reached twice by the
            # same condbr (both targets equal) still lists that predecessor
            # once; duplicate entries would make the incoming value
            # ambiguous (the engines take the first match).
            if len(set(phi.phi_blocks)) != len(phi.phi_blocks):
                dupes = sorted(
                    b.name
                    for b in set(phi.phi_blocks)
                    if phi.phi_blocks.count(b) > 1
                )
                raise VerificationError(
                    f"{function.name}: phi in {block.name} lists incoming "
                    f"block(s) {dupes} more than once"
                )
            incoming = set(phi.phi_blocks)
            if incoming != set(expected):
                names = sorted(b.name for b in incoming)
                want = sorted(set(b.name for b in expected))
                raise VerificationError(
                    f"{function.name}: phi in {block.name} has incoming {names}, "
                    f"preds are {want}"
                )

    _check_dominance(function, defined)


def _check_types(function: Function, instr: Instruction) -> None:
    if instr.op == "load":
        ptr = instr.operands[0]
        if not isinstance(ptr.type, PointerType):
            raise VerificationError(
                f"{function.name}: load from non-pointer in {instr!r}"
            )
    elif instr.op == "store":
        ptr = instr.operands[1]
        if not isinstance(ptr.type, PointerType):
            raise VerificationError(
                f"{function.name}: store to non-pointer in {instr!r}"
            )
        value = instr.operands[0]
        pointee = ptr.type.pointee
        if not isinstance(pointee, VoidType) and value.type.size() != pointee.size():
            raise VerificationError(
                f"{function.name}: store of {value.type} ({value.type.size()}B) "
                f"through pointer to {pointee} ({pointee.size()}B) in {instr!r}"
            )
    elif instr.op == "condbr":
        if len(instr.targets) != 2:
            raise VerificationError(f"{function.name}: condbr needs two targets")
        cond = instr.operands[0]
        if not isinstance(cond.type, IntType):
            raise VerificationError(
                f"{function.name}: condbr condition has non-integer type "
                f"{cond.type}"
            )
    elif instr.op == "br":
        if len(instr.targets) != 1:
            raise VerificationError(f"{function.name}: br needs exactly one target")
    elif instr.op == "ret":
        wants_value = not isinstance(function.return_type, VoidType)
        if wants_value and not instr.operands:
            raise VerificationError(
                f"{function.name}: ret without value in non-void function"
            )
        if not wants_value and instr.operands:
            raise VerificationError(
                f"{function.name}: ret with value in void function"
            )
    elif instr.op == "gep":
        if len(instr.gep_scales) != len(instr.operands) - 1:
            raise VerificationError(
                f"{function.name}: gep scale/operand arity mismatch"
            )


def _check_dominance(function: Function, defined: set[Instruction]) -> None:
    domtree = DominatorTree(function)
    reachable = domtree.reachable()
    positions: dict[Instruction, int] = {}
    for block in function.blocks:
        for idx, instr in enumerate(block.instructions):
            positions[instr] = idx
    for block in function.blocks:
        if block not in reachable:
            continue
        for instr in block.instructions:
            operands = instr.operands
            for op_index, operand in enumerate(operands):
                if isinstance(operand, (Constant, Argument, GlobalVariable)):
                    continue
                if not isinstance(operand, Instruction):
                    continue
                if operand not in defined:
                    raise VerificationError(
                        f"{function.name}: {instr!r} uses value from removed "
                        f"instruction {operand.op}"
                    )
                def_block = operand.block
                if def_block is None or def_block not in reachable:
                    continue
                if instr.op == "phi":
                    incoming = instr.phi_blocks[op_index]
                    if not domtree.dominates(def_block, incoming):
                        raise VerificationError(
                            f"{function.name}: phi incoming value does not dominate "
                            f"edge from {incoming.name}"
                        )
                    continue
                if def_block is instr.block:
                    if positions[operand] >= positions[instr]:
                        raise VerificationError(
                            f"{function.name}: use before def of {operand.op} "
                            f"in {block.name}"
                        )
                elif not domtree.dominates(def_block, instr.block):
                    raise VerificationError(
                        f"{function.name}: def in {def_block.name} does not dominate "
                        f"use in {block.name} ({instr!r})"
                    )
