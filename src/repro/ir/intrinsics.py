"""The intrinsic functions known to the compiler, runtime and simulators.

Three families:

* ``svm.*`` — shared-virtual-memory pointer translation markers inserted by
  the SVM lowering pass (paper section 3.1).  They are pure arithmetic
  (``to_gpu`` adds the runtime constant ``svm_const``; ``to_cpu`` subtracts
  it), so CSE/DCE and the PTROPT placement pass may move or delete them.
* ``gpu.*`` — work-item identity and device queries available in kernels.
* ``math.*`` / ``atomic.*`` — device math library and atomics.
"""

from __future__ import annotations

import math

from .builder import make_intrinsic
from .types import F32, F64, I32, PointerType, VOID, VOIDPTR
from .values import Intrinsic


def _svm(name: str) -> Intrinsic:
    return make_intrinsic(name, VOIDPTR, [VOIDPTR], side_effects=False)


SVM_TO_GPU = _svm("svm.to_gpu")
SVM_TO_CPU = _svm("svm.to_cpu")

GPU_GLOBAL_ID = make_intrinsic("gpu.global_id", I32, [], side_effects=False)
GPU_NUM_CORES = make_intrinsic("gpu.num_cores", I32, [], side_effects=False)
GPU_BARRIER = make_intrinsic("gpu.barrier", VOID, [], side_effects=True)

ATOMIC_ADD_I32 = make_intrinsic("atomic.add.i32", I32, [PointerType(I32), I32], True)
ATOMIC_MIN_I32 = make_intrinsic("atomic.min.i32", I32, [PointerType(I32), I32], True)
ATOMIC_MAX_I32 = make_intrinsic("atomic.max.i32", I32, [PointerType(I32), I32], True)
ATOMIC_CAS_I32 = make_intrinsic(
    "atomic.cas.i32", I32, [PointerType(I32), I32, I32], True
)
ATOMIC_ADD_F32 = make_intrinsic("atomic.add.f32", F32, [PointerType(F32), F32], True)

_UNARY_F32 = ("sqrt", "fabs", "floor", "ceil", "exp", "log", "sin", "cos", "tan", "rsqrt")
_BINARY_F32 = ("pow", "fmin", "fmax", "atan2")

MATH_INTRINSICS: dict[str, Intrinsic] = {}
for _name in _UNARY_F32:
    MATH_INTRINSICS[f"math.{_name}.f32"] = make_intrinsic(
        f"math.{_name}.f32", F32, [F32], side_effects=False
    )
    MATH_INTRINSICS[f"math.{_name}.f64"] = make_intrinsic(
        f"math.{_name}.f64", F64, [F64], side_effects=False
    )
for _name in _BINARY_F32:
    MATH_INTRINSICS[f"math.{_name}.f32"] = make_intrinsic(
        f"math.{_name}.f32", F32, [F32, F32], side_effects=False
    )
    MATH_INTRINSICS[f"math.{_name}.f64"] = make_intrinsic(
        f"math.{_name}.f64", F64, [F64, F64], side_effects=False
    )

ALL_INTRINSICS: dict[str, Intrinsic] = {
    SVM_TO_GPU.name: SVM_TO_GPU,
    SVM_TO_CPU.name: SVM_TO_CPU,
    GPU_GLOBAL_ID.name: GPU_GLOBAL_ID,
    GPU_NUM_CORES.name: GPU_NUM_CORES,
    GPU_BARRIER.name: GPU_BARRIER,
    ATOMIC_ADD_I32.name: ATOMIC_ADD_I32,
    ATOMIC_MIN_I32.name: ATOMIC_MIN_I32,
    ATOMIC_MAX_I32.name: ATOMIC_MAX_I32,
    ATOMIC_CAS_I32.name: ATOMIC_CAS_I32,
    ATOMIC_ADD_F32.name: ATOMIC_ADD_F32,
    **MATH_INTRINSICS,
}


def _rsqrt(x: float) -> float:
    return 1.0 / math.sqrt(x)


# Host/interpreter evaluation table for the pure math intrinsics.
MATH_EVAL = {
    "sqrt": math.sqrt,
    "fabs": abs,
    "floor": math.floor,
    "ceil": math.ceil,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "rsqrt": _rsqrt,
    "pow": math.pow,
    "fmin": min,
    "fmax": max,
    "atan2": math.atan2,
}


def is_svm_translate(callee) -> bool:
    return isinstance(callee, Intrinsic) and callee.name in (
        SVM_TO_GPU.name,
        SVM_TO_CPU.name,
    )
