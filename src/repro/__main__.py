"""Command-line compiler driver.

Usage::

    python -m repro compile FILE.cpp [--config GPU|GPU+PTROPT|GPU+L3OPT|GPU+ALL]
                                      [--emit ir|opencl|stats|kernels]
    python -m repro run FILE.cpp --body CLASS --n N [--on-cpu] [--system ultrabook|desktop]
                                      [--policy cpu|gpu|auto|hybrid] [--graph]
                                      [--engine compiled|reference|vector]
                                      [--flight-record DIR]
                                      [--declared-check off|warn|trap]
    python -m repro profile WORKLOAD [--scale S] [--engine compiled|reference|vector]
                                      [--system ultrabook|desktop] [--on-cpu]
                                      [--policy cpu|gpu|auto|hybrid] [--graph]
                                      [--format json|csv] [--output FILE]
                                      [--trace FILE.json]
    python -m repro annotate WORKLOAD [--scale S] [--engine compiled|reference|vector]
                                      [--system ultrabook|desktop] [--on-cpu]
                                      [--top N] [--format text|json] [--output FILE]
    python -m repro bench [--scale S] [--repeats N] [--dir DIR] [--check] [--graph]
                          [--workloads NAME ...] [--engine compiled|reference|vector]
    python -m repro fuzz [--seed N] [--iterations K]
                         [--target all|frontend|ir|passes|engines|sched|vector|graph|compile-cache]
                         [--corpus DIR] [--no-reduce] [--max-divergences M]
                         [--trace FILE.json] [--flight-record DIR]
    python -m repro watch [--dir DIR] [--check] [--threshold F]
                          [--format text|json] [--output FILE]
    python -m repro serve [--store DIR] [--host H] [--port P]
                          [--byte-budget BYTES] [--verbose]
                          [--selftest] [--clients N] [--sources K]
                          [--stats-output FILE]

``compile`` parses and compiles a MiniC++ translation unit and prints the
requested artifact for every heterogeneous body class found.  ``run``
additionally executes a kernel over a zero-initialized body (useful for
smoke-testing kernels whose body needs no host setup).  ``profile`` runs
one of the nine registered evaluation workloads under the observability
layer and emits its per-kernel profile document (JSON by default; see
``docs/OBSERVABILITY.md`` for the schema).  ``annotate`` attributes the
modeled execution cost of a workload to MiniC++ source lines and prints a
hot-line report; ``bench`` sweeps the evaluation workloads and appends a
``BENCH_<n>.json`` entry to the benchmark ledger, optionally gating on
regressions (see ``docs/PROFILING.md``).  ``--trace FILE`` on ``profile``
and ``fuzz`` additionally writes a Chrome ``trace_event`` file loadable
in about://tracing or Perfetto.  ``fuzz`` runs a deterministic
differential-fuzzing campaign (see ``docs/FUZZING.md``), exits non-zero
on any divergence, and writes reduced reproducers to ``--corpus``.
``--graph`` routes submissions through the task-graph runtime
(``docs/GRAPH.md``): ``run`` and ``profile`` report the overlap stats,
``bench`` appends the overlap-pipeline ledger rows.

``--flight-record DIR`` arms the flight recorder (``docs/TELEMETRY.md``):
any trap or fuzz divergence dumps a postmortem bundle — last-N telemetry
events, live counters, open spans, and the trapping kernel + source line
— into DIR.  ``watch`` aggregates the whole committed ``BENCH_*.json``
history into per-(workload, config) trend series and prints a regression
verdict; ``bench --check`` gates on the same full-history trend.
"""

from __future__ import annotations

import argparse
import os
import sys

from .analysis import kernel_mix
from .ir import format_function
from .passes import OptConfig
from .runtime import ConcordRuntime, compile_source, desktop, ultrabook

CONFIGS = {
    "GPU": OptConfig.gpu,
    "GPU+PTROPT": OptConfig.gpu_ptropt,
    "GPU+L3OPT": OptConfig.gpu_l3opt,
    "GPU+ALL": OptConfig.gpu_all,
}


def _policy_names() -> list:
    from .sched import POLICIES

    return sorted(POLICIES)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro")
    sub = parser.add_subparsers(dest="command", required=True)

    compile_parser = sub.add_parser("compile", help="compile a MiniC++ file")
    compile_parser.add_argument("file")
    compile_parser.add_argument("--config", choices=sorted(CONFIGS), default="GPU+ALL")
    compile_parser.add_argument(
        "--emit", choices=["ir", "opencl", "stats", "kernels"], default="opencl"
    )

    run_parser = sub.add_parser("run", help="compile and execute one kernel")
    run_parser.add_argument("file")
    run_parser.add_argument("--body", required=True, help="body class name")
    run_parser.add_argument("--n", type=int, default=16)
    run_parser.add_argument("--on-cpu", action="store_true")
    run_parser.add_argument("--config", choices=sorted(CONFIGS), default="GPU+ALL")
    run_parser.add_argument(
        "--system", choices=["ultrabook", "desktop"], default="ultrabook"
    )
    run_parser.add_argument(
        "--engine",
        choices=["compiled", "reference", "vector"],
        default="compiled",
        help="execution engine for kernel lanes",
    )
    run_parser.add_argument(
        "--policy",
        choices=_policy_names(),
        default=None,
        help="scheduler placement policy (overrides --on-cpu)",
    )
    run_parser.add_argument(
        "--graph",
        action="store_true",
        help="submit through the task-graph runtime and report overlap stats",
    )
    run_parser.add_argument(
        "--flight-record",
        default=None,
        metavar="DIR",
        help="dump a postmortem bundle into DIR if the kernel traps",
    )
    run_parser.add_argument(
        "--declared-check",
        choices=["off", "warn", "trap"],
        default="off",
        help="validate graph-mode accesses against declared sets",
    )

    profile_parser = sub.add_parser(
        "profile", help="run a registered workload under the observability layer"
    )
    profile_parser.add_argument("workload", help="workload name, e.g. bfs")
    profile_parser.add_argument("--scale", type=float, default=1.0)
    profile_parser.add_argument(
        "--engine", choices=["compiled", "reference", "vector"], default="compiled"
    )
    profile_parser.add_argument(
        "--system", choices=["ultrabook", "desktop"], default="ultrabook"
    )
    profile_parser.add_argument("--on-cpu", action="store_true")
    profile_parser.add_argument(
        "--policy",
        choices=_policy_names(),
        default=None,
        help="scheduler placement policy (overrides --on-cpu)",
    )
    profile_parser.add_argument(
        "--graph",
        action="store_true",
        help="run the workload through the task-graph runtime",
    )
    profile_parser.add_argument("--no-validate", action="store_true")
    profile_parser.add_argument("--format", choices=["json", "csv"], default="json")
    profile_parser.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )
    profile_parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="also write a Chrome trace_event JSON file",
    )
    profile_parser.add_argument(
        "--flight-record",
        default=None,
        metavar="DIR",
        help="dump a postmortem bundle into DIR if the workload traps",
    )
    profile_parser.add_argument(
        "--events",
        default=None,
        metavar="FILE",
        help="stream telemetry events to FILE as JSON lines",
    )

    annotate_parser = sub.add_parser(
        "annotate", help="attribute modeled cost to source lines"
    )
    annotate_parser.add_argument("workload", help="workload name, e.g. bfs")
    annotate_parser.add_argument("--scale", type=float, default=1.0)
    annotate_parser.add_argument(
        "--engine", choices=["compiled", "reference", "vector"], default="compiled"
    )
    annotate_parser.add_argument(
        "--system", choices=["ultrabook", "desktop"], default="ultrabook"
    )
    annotate_parser.add_argument("--on-cpu", action="store_true")
    annotate_parser.add_argument("--no-validate", action="store_true")
    annotate_parser.add_argument(
        "--top", type=int, default=20, help="lines to show in the text report"
    )
    annotate_parser.add_argument("--format", choices=["text", "json"], default="text")
    annotate_parser.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    bench_parser = sub.add_parser(
        "bench", help="sweep workloads into the benchmark ledger"
    )
    bench_parser.add_argument("--scale", type=float, default=0.2)
    bench_parser.add_argument(
        "--repeats", type=int, default=1, help="keep the best wall clock of N runs"
    )
    bench_parser.add_argument(
        "--engine", choices=["compiled", "reference", "vector"], default="compiled"
    )
    bench_parser.add_argument(
        "--system", choices=["ultrabook", "desktop"], default="ultrabook"
    )
    bench_parser.add_argument(
        "--dir", default=".", help="ledger directory (default: current directory)"
    )
    bench_parser.add_argument(
        "--workloads",
        nargs="+",
        default=None,
        metavar="NAME",
        help="subset of workloads (default: the paper's nine)",
    )
    bench_parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on a normalized-throughput regression against "
        "the full ledger history trend",
    )
    bench_parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="regression threshold as a fraction (default 0.15)",
    )
    bench_parser.add_argument(
        "--graph",
        action="store_true",
        help="append task-graph overlap pipeline rows to the entry",
    )

    fuzz_parser = sub.add_parser(
        "fuzz", help="run a differential fuzzing campaign"
    )
    fuzz_parser.add_argument("--seed", type=int, default=0)
    fuzz_parser.add_argument("--iterations", type=int, default=200)
    fuzz_parser.add_argument(
        "--target",
        choices=[
            "all",
            "frontend",
            "ir",
            "passes",
            "engines",
            "sched",
            "vector",
            "graph",
            "compile-cache",
        ],
        default="all",
    )
    fuzz_parser.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="write reduced reproducers into DIR (created if missing)",
    )
    fuzz_parser.add_argument(
        "--no-reduce",
        action="store_true",
        help="report divergences without shrinking them",
    )
    fuzz_parser.add_argument(
        "--max-divergences",
        type=int,
        default=5,
        help="stop the campaign after this many divergences",
    )
    fuzz_parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="also write a Chrome trace_event JSON file",
    )
    fuzz_parser.add_argument(
        "--flight-record",
        default=None,
        metavar="DIR",
        help="write postmortem bundles for divergences into DIR "
        "(defaults to the corpus directory when --corpus is given)",
    )
    fuzz_parser.add_argument(
        "--no-flight-record",
        action="store_true",
        help="disable the campaign's default flight recorder",
    )

    watch_parser = sub.add_parser(
        "watch", help="trend report over the whole benchmark ledger"
    )
    watch_parser.add_argument(
        "--dir", default=".", help="ledger directory (default: current directory)"
    )
    watch_parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when the trend verdict is a regression",
    )
    watch_parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="regression threshold as a fraction (default 0.15)",
    )
    watch_parser.add_argument("--format", choices=["text", "json"], default="text")
    watch_parser.add_argument(
        "--output", default=None, help="write to FILE instead of stdout"
    )

    serve_parser = sub.add_parser(
        "serve", help="run the persistent compile service daemon"
    )
    serve_parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="artifact store directory (default: .repro-store under the cwd)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=0, help="port to bind (0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--byte-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="LRU-evict store artifacts beyond this total size",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve_parser.add_argument(
        "--selftest",
        action="store_true",
        help="start the daemon, run the synthetic many-client load test "
        "against it, report warm-vs-cold latency, and exit non-zero if "
        "the run proves nothing (no warm hits / failed requests)",
    )
    serve_parser.add_argument(
        "--clients", type=int, default=4, help="selftest: concurrent clients"
    )
    serve_parser.add_argument(
        "--sources", type=int, default=6, help="selftest: distinct programs"
    )
    serve_parser.add_argument(
        "--stats-output",
        default=None,
        metavar="FILE",
        help="selftest: also write the load report + daemon stats as JSON",
    )

    args = parser.parse_args(argv)
    if args.command == "profile":
        return _profile(args)
    if args.command == "annotate":
        return _annotate(args)
    if args.command == "bench":
        return _bench(args)
    if args.command == "fuzz":
        return _fuzz(args)
    if args.command == "watch":
        return _watch(args)
    if args.command == "serve":
        return _serve(args)
    try:
        with open(args.file) as handle:
            source = handle.read()
    except OSError as exc:
        print(f"error: cannot read {args.file}: {exc.strerror}", file=sys.stderr)
        return 1
    config = CONFIGS[args.config]()
    from .minicpp import LexError, LowerError, ParseError, SemaError

    try:
        program = compile_source(source, config)
    except (LexError, ParseError, SemaError, LowerError) as exc:
        print(f"{args.file}: error: {exc}", file=sys.stderr)
        return 1

    if args.command == "compile":
        if args.emit == "kernels":
            for name, kinfo in program.kernels.items():
                marker = " (CPU-only: restriction fallback)" if kinfo.cpu_only else ""
                print(f"{name}: {kinfo.construct}{marker}")
            return 0
        if not program.kernels:
            print("no heterogeneous body classes found", file=sys.stderr)
            return 1
        for name, kinfo in program.kernels.items():
            print(f"// ===== {name} [{args.config}] =====")
            if args.emit == "ir":
                print(format_function(kinfo.gpu_kernel))
            elif args.emit == "opencl":
                print(kinfo.opencl_source)
            elif args.emit == "stats":
                mix = kernel_mix(program, name)
                print(
                    f"control {mix.control_pct:.1f}%  memory {mix.memory_pct:.1f}%  "
                    f"remaining {mix.remaining_pct:.1f}%  "
                    f"(irregularity {mix.irregularity_pct:.1f}%)"
                )
        return 0

    # run
    from .exec import ExecutionError
    from .runtime.graph import DeclaredSetViolation
    from .svm import MemoryFault

    system = ultrabook() if args.system == "ultrabook" else desktop()
    observer = None
    recorder = None
    if args.flight_record:
        from .obs import FlightRecorder, Observer, Telemetry

        observer = Observer()
        observer.attach_telemetry(Telemetry())
        recorder = FlightRecorder(args.flight_record, observer=observer)
    rt = ConcordRuntime(
        program,
        system,
        engine=args.engine,
        policy=args.policy or "gpu",
        graph=args.graph,
        observer=observer,
        declared_check=args.declared_check,
    )
    try:
        body = rt.new(args.body)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    try:
        report = rt.parallel_for_hetero(
            args.n, body, on_cpu=args.on_cpu and args.policy is None
        )
    except (MemoryFault, ExecutionError, DeclaredSetViolation) as exc:
        if recorder is not None:
            bundle = recorder.record(
                exc,
                runtime=rt,
                context={"command": "run", "body": args.body, "n": args.n},
            )
            print(f"flight bundle: {bundle}", file=sys.stderr)
        print(
            f"error: kernel faulted: {exc}\n"
            f"note: `repro run` launches over a zero-initialized {args.body}; "
            "bodies that dereference pointer fields need host-side setup "
            "(see examples/) and cannot be driven from this command",
            file=sys.stderr,
        )
        return 1
    print(
        f"{args.body}: device={report.device} n={args.n} "
        f"time={report.seconds:.3e}s energy={report.energy_joules:.3e}J"
    )
    if args.graph:
        stats = rt.wait()
        print(
            f"graph: {stats.executed} construct(s), {stats.waves} wave(s), "
            f"{sum(stats.edges.values())} edge(s), "
            f"wall {stats.wall_seconds:.3e}s "
            f"(sync {stats.sync_seconds:.3e}s, {stats.speedup:.2f}x)"
        )
    return 0


def _profile(args) -> int:
    import json

    from .obs import (
        Observer,
        ProfileSchemaError,
        profile_to_csv,
        profile_workload,
        validate_profile,
        write_trace,
    )

    system = ultrabook() if args.system == "ultrabook" else desktop()
    observer = Observer()
    telemetry = None
    recorder = None
    if args.flight_record or args.events:
        from .obs import FlightRecorder, JsonLinesSink, Telemetry

        sinks = [JsonLinesSink(args.events)] if args.events else []
        telemetry = Telemetry(sinks=sinks)
        observer.attach_telemetry(telemetry)
        if args.flight_record:
            recorder = FlightRecorder(args.flight_record, observer=observer)
    try:
        doc = profile_workload(
            args.workload,
            scale=args.scale,
            system=system,
            engine=args.engine,
            on_cpu=args.on_cpu,
            validate=not args.no_validate,
            observer=observer,
            policy=args.policy,
            graph=args.graph,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    except Exception as exc:
        if recorder is not None:
            bundle = recorder.record(
                exc, context={"command": "profile", "workload": args.workload}
            )
            print(f"flight bundle: {bundle}", file=sys.stderr)
        raise
    finally:
        if telemetry is not None:
            telemetry.close()
            if args.events:
                print(f"events: {args.events}", file=sys.stderr)
    try:
        validate_profile(doc)
    except ProfileSchemaError as exc:
        print(f"error: emitted profile failed validation: {exc}", file=sys.stderr)
        return 1
    if args.trace:
        write_trace(observer, args.trace, meta=doc["meta"])
        print(f"trace: {args.trace}", file=sys.stderr)
    if args.format == "csv":
        rendered = profile_to_csv(doc)
    else:
        rendered = json.dumps(doc, indent=2, sort_keys=False) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered)
        totals = doc["totals"]
        print(
            f"{doc['meta']['workload']}: {totals['constructs']} constructs, "
            f"{totals['seconds']:.3e}s simulated "
            f"({totals['attributed_fraction']:.1%} attributed) -> {args.output}"
        )
    else:
        sys.stdout.write(rendered)
    return 0


def _annotate(args) -> int:
    import json

    from .obs import annotate_workload, render_line_report

    system = ultrabook() if args.system == "ultrabook" else desktop()
    try:
        doc = annotate_workload(
            args.workload,
            scale=args.scale,
            system=system,
            engine=args.engine,
            on_cpu=args.on_cpu,
            validate=not args.no_validate,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    if args.format == "json":
        rendered = json.dumps(doc, indent=2) + "\n"
    else:
        rendered = render_line_report(doc, top=args.top) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered)
        totals = doc["totals"]
        print(
            f"{doc['meta']['workload']}: {totals['attributed_fraction']:.1%} of "
            f"{totals['units']:,.0f} modeled units attributed -> {args.output}"
        )
    else:
        sys.stdout.write(rendered)
    return 0


def _bench(args) -> int:
    from .eval.runner import WORKLOAD_ORDER
    from .obs.ledger import (
        REGRESSION_THRESHOLD,
        diff_ledgers,
        format_diff,
        geomean_delta,
        load_latest,
        regressions,
        run_benchmarks,
        write_entry,
    )

    if args.workloads:
        unknown = sorted(set(args.workloads) - set(WORKLOAD_ORDER))
        if unknown:
            print(
                f"error: unknown workload(s) {unknown}; "
                f"available: {sorted(WORKLOAD_ORDER)}",
                file=sys.stderr,
            )
            return 1
    system = ultrabook() if args.system == "ultrabook" else desktop()
    threshold = args.threshold if args.threshold is not None else REGRESSION_THRESHOLD
    previous = load_latest(args.dir)
    doc = run_benchmarks(
        scale=args.scale,
        repeats=args.repeats,
        system=system,
        engine=args.engine,
        workloads=args.workloads,
        progress=lambda line: print(line, flush=True),
        graph=args.graph,
    )
    path = write_entry(doc, args.dir)
    print(f"ledger entry: {path}")
    if previous is None:
        print("no previous ledger entry; nothing to diff against")
        return 0
    diffs = diff_ledgers(previous, doc)
    if diffs:
        print(format_diff(diffs, threshold))
    # Individual cells are noisy at smoke scales; per-cell drops are
    # surfaced as warnings, and the gate judges the full-history trend
    # through the watch module — the fresh entry against the best
    # sustained level of every committed BENCH_<n>.json, so slow
    # multi-PR drifts fail too, not just single-step regressions.
    failing = regressions(diffs, threshold)
    if failing:
        print(
            f"warning: {len(failing)} cell(s) dropped more than "
            f"{threshold:.0%} in normalized kernel throughput vs the "
            "previous entry",
            file=sys.stderr,
        )
    overall = geomean_delta(diffs)
    if overall < -threshold:
        print(
            f"warning: {overall:+.1%} geomean vs the previous entry",
            file=sys.stderr,
        )
    from .obs.watch import build_watch_report, render_watch_report

    report = build_watch_report(args.dir, threshold)
    verdict = report["verdict"]
    print(render_watch_report(report))
    if not verdict["ok"]:
        print(
            f"error: normalized kernel throughput regressed "
            f"{verdict['geomean_drift']:+.1%} geomean against the ledger "
            f"history trend (threshold -{threshold:.0%})",
            file=sys.stderr,
        )
        if args.check:
            return 1
    return 0


def _watch(args) -> int:
    import json

    from .obs.ledger import REGRESSION_THRESHOLD
    from .obs.watch import (
        build_watch_report,
        render_watch_report,
        validate_watch_report,
    )

    threshold = args.threshold if args.threshold is not None else REGRESSION_THRESHOLD
    report = build_watch_report(args.dir, threshold)
    validate_watch_report(report)
    if args.format == "json":
        rendered = json.dumps(report, indent=2) + "\n"
    else:
        rendered = render_watch_report(report) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered)
        verdict = report["verdict"]
        print(
            f"watch: {verdict['series']} series over {verdict['entries']} "
            f"entr{'y' if verdict['entries'] == 1 else 'ies'}, "
            f"{'OK' if verdict['ok'] else 'REGRESSED'} -> {args.output}"
        )
    else:
        sys.stdout.write(rendered)
    if args.check and not report["verdict"]["ok"]:
        print(
            f"error: ledger history trend regressed "
            f"{report['verdict']['geomean_drift']:+.1%} geomean "
            f"(threshold -{threshold:.0%})",
            file=sys.stderr,
        )
        return 1
    return 0


def _serve(args) -> int:
    import json
    import threading

    from .service import (
        ServiceClient,
        render_report,
        run_load,
        serve,
        validate_report,
    )

    store_dir = args.store or os.path.join(os.getcwd(), ".repro-store")
    server, service = serve(
        store_dir,
        host=args.host,
        port=args.port,
        byte_budget=args.byte_budget,
        quiet=not args.verbose,
    )
    host, port = server.server_address[:2]
    print(f"repro serve: listening on http://{host}:{port} (store: {store_dir})")

    if not args.selftest:
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
        return 0

    # Selftest: drive the daemon we just started with the synthetic
    # many-client load, then report and gate on what it proved.
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        report = run_load(
            lambda: ServiceClient(host, port),
            clients=args.clients,
            sources=args.sources,
        )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
    print(render_report(report))
    if args.stats_output:
        with open(args.stats_output, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"stats: {args.stats_output}")
    problems = validate_report(report)
    for problem in problems:
        print(f"error: selftest: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _fuzz(args) -> int:
    from .fuzz import FuzzDriver
    from .obs import FlightRecorder, Observer, Telemetry

    observer = Observer()
    observer.attach_telemetry(Telemetry())
    # The campaign driver arms the flight recorder by default whenever
    # there is somewhere to put bundles, so reduced reproducers ship with
    # their postmortem context; --no-flight-record opts out.
    flight_dir = args.flight_record or args.corpus
    recorder = None
    if flight_dir and not args.no_flight_record:
        recorder = FlightRecorder(flight_dir, observer=observer)
    driver = FuzzDriver(
        seed=args.seed,
        iterations=args.iterations,
        target=args.target,
        corpus_dir=args.corpus,
        observer=observer,
        reduce=not args.no_reduce,
        max_divergences=args.max_divergences,
        flight_recorder=recorder,
    )
    report = driver.run(progress=lambda line: print(line, flush=True))
    print(report.summary())
    if args.trace:
        from .obs import write_trace

        write_trace(
            observer,
            args.trace,
            meta={"command": "fuzz", "seed": args.seed, "target": args.target},
        )
        print(f"trace: {args.trace}")
    counters = observer.counters
    detail = ", ".join(
        f"{name}={int(counters.get(name))}"
        for name in (
            "fuzz.iterations",
            "fuzz.divergences",
            "fuzz.reduction_attempts",
        )
        if name in counters
    )
    if detail:
        print(f"counters: {detail}")
    for path in report.corpus_files:
        print(f"reproducer: {path}")
    if not report.ok:
        for divergence in report.divergences:
            print(
                f"divergence (target={divergence.target}, "
                f"iteration={divergence.iteration}):",
                file=sys.stderr,
            )
            for diff in divergence.diffs:
                print(f"  {diff}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
