"""Shared-heap allocator.

Concord redirects ``malloc``/``free`` to specialized routines that allocate
inside the shared region, so any heap object is GPU-visible by
construction.  We implement a first-fit free-list allocator with coalescing
over the shared region: simple, deterministic, and adequate for the
workloads' allocation patterns (bulk arrays plus many small nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

from .region import SharedRegion

DEFAULT_ALIGN = 16


class OutOfSharedMemory(Exception):
    pass


@dataclass
class _FreeBlock:
    offset: int
    size: int


class SharedAllocator:
    """First-fit allocator with address-ordered free list + coalescing."""

    def __init__(self, region: SharedRegion, reserve: int = 0):
        self.region = region
        # ``reserve`` bytes at the region start are kept for the loader
        # (vtables, global symbols — paper section 3.2 moves those there).
        start = _align_up(reserve, DEFAULT_ALIGN)
        self._free: list[_FreeBlock] = [_FreeBlock(start, region.size - start)]
        self._live: dict[int, int] = {}  # cpu address -> size
        self.total_allocated = 0
        self.peak_usage = 0
        self._usage = 0

    def malloc(self, size: int, align: int = DEFAULT_ALIGN) -> int:
        """Allocate ``size`` bytes; returns the CPU virtual address."""
        if size <= 0:
            raise ValueError(f"malloc of non-positive size {size}")
        for index, block in enumerate(self._free):
            aligned = _align_up(self.region.cpu_base + block.offset, align)
            pad = aligned - (self.region.cpu_base + block.offset)
            if block.size < size + pad:
                continue
            offset = block.offset + pad
            remaining = block.size - size - pad
            if pad:
                block.size = pad  # leading pad stays free
                if remaining:
                    self._free.insert(
                        index + 1, _FreeBlock(offset + size, remaining)
                    )
            else:
                if remaining:
                    block.offset = offset + size
                    block.size = remaining
                else:
                    del self._free[index]
            address = self.region.cpu_base + offset
            self._live[address] = size
            self.total_allocated += size
            self._usage += size
            self.peak_usage = max(self.peak_usage, self._usage)
            return address
        raise OutOfSharedMemory(
            f"shared region exhausted allocating {size} bytes "
            f"(in use: {self._usage}/{self.region.size})"
        )

    def calloc(self, size: int, align: int = DEFAULT_ALIGN) -> int:
        address = self.malloc(size, align)
        self.region.write_bytes(address, b"\x00" * size)
        return address

    def free(self, address: int) -> None:
        size = self._live.pop(address, None)
        if size is None:
            raise ValueError(f"free of unallocated address {address:#x}")
        self._usage -= size
        offset = address - self.region.cpu_base
        self._insert_free(_FreeBlock(offset, size))

    def allocated_size(self, address: int) -> int:
        return self._live[address]

    @property
    def live_bytes(self) -> int:
        return self._usage

    def _insert_free(self, block: _FreeBlock) -> None:
        # Keep address order; coalesce with neighbours.
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid].offset < block.offset:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, block)
        # coalesce with next
        if lo + 1 < len(self._free):
            nxt = self._free[lo + 1]
            if block.offset + block.size == nxt.offset:
                block.size += nxt.size
                del self._free[lo + 1]
        # coalesce with previous
        if lo > 0:
            prev = self._free[lo - 1]
            if prev.offset + prev.size == block.offset:
                prev.size += block.size
                del self._free[lo]


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


class DeviceBumpAllocator:
    """Device-side heap: the future-work extension the paper plans.

    Real GPU mallocs are atomic bump allocators over a pre-reserved slab;
    we model exactly that.  The bump cursor itself lives *in shared
    memory* (first 16 bytes of the slab), so allocations made by kernels
    are observable by the host and survive across launches.  ``free`` is
    deliberately a no-op: per-allocation free on a bump heap is deferred
    to slab reset, the standard discipline for device heaps.
    """

    CURSOR_BYTES = 16

    def __init__(self, region: SharedRegion, base: int, size: int):
        self.region = region
        self.base = base
        self.size = size
        region.write_int(base, 8, self.CURSOR_BYTES, signed=False)

    def _cursor(self) -> int:
        return self.region.read_int(self.base, 8, signed=False)

    def calloc(self, size: int, align: int = DEFAULT_ALIGN) -> int:
        # atomic fetch-and-add in the real implementation; the simulator
        # executes lanes sequentially so a read-modify-write suffices
        offset = _align_up(self._cursor(), align)
        if offset + size > self.size:
            raise OutOfSharedMemory(
                f"device heap exhausted allocating {size} bytes "
                f"({offset}/{self.size} used)"
            )
        self.region.write_int(self.base, 8, offset + size, signed=False)
        address = self.base + offset
        self.region.write_bytes(address, b"\x00" * size)
        return address

    def malloc(self, size: int, align: int = DEFAULT_ALIGN) -> int:
        return self.calloc(size, align)

    def free(self, address: int) -> None:
        """No-op: bump heaps reclaim by resetting the whole slab."""

    def reset(self) -> None:
        self.region.write_int(self.base, 8, self.CURSOR_BYTES, signed=False)

    @property
    def used_bytes(self) -> int:
        return self._cursor() - self.CURSOR_BYTES
