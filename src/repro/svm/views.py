"""Typed Python views over objects in the shared region.

The paper's host code is C++: it builds trees/graphs of objects with
ordinary ``new`` (redirected into the shared region) and field writes.  Our
host code is Python, so these views provide the same capability — allocate
a struct or array in SVM, then read and write fields by name with the exact
layout the compiler computed for the device code.

``StructView`` and ``ArrayView`` are deliberately thin: attribute access
maps straight to typed loads/stores at ``base + field.offset``.  Pointer
fields accept either a raw CPU address (int) or another view.
"""

from __future__ import annotations

from typing import Iterator, Union

from ..ir.types import (
    ArrayType,
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
)
from .allocator import SharedAllocator
from .region import SharedRegion

Addressable = Union[int, "StructView", "ArrayView"]


def address_of(value: Addressable) -> int:
    if isinstance(value, (StructView, ArrayView)):
        return value.addr
    if value is None:
        return 0
    return int(value)


class StructView:
    """A window onto one struct instance in shared memory."""

    __slots__ = ("_region", "_type", "addr")

    def __init__(self, region: SharedRegion, struct_type: StructType, addr: int):
        object.__setattr__(self, "_region", region)
        object.__setattr__(self, "_type", struct_type)
        object.__setattr__(self, "addr", addr)

    @property
    def struct_type(self) -> StructType:
        return self._type

    def field_address(self, name: str) -> int:
        offset, _ = _find_field_recursive(self._type, name)
        return self.addr + offset

    def __getattr__(self, name: str):
        try:
            offset, ftype = _find_field_recursive(self._type, name)
        except KeyError as exc:
            raise AttributeError(str(exc)) from exc
        return read_typed(self._region, self.addr + offset, ftype)

    def __setattr__(self, name: str, value) -> None:
        if name in StructView.__slots__:
            object.__setattr__(self, name, value)
            return
        offset, ftype = _find_field_recursive(self._type, name)
        write_typed(self._region, self.addr + offset, ftype, value)

    def view(self, name: str):
        """A sub-view of an embedded struct/array field (no indirection)."""
        offset, ftype = _find_field_recursive(self._type, name)
        return make_view(self._region, ftype, self.addr + offset)

    def deref(self, name: str):
        """Follow a pointer field, returning a view of the pointee."""
        offset, ftype = _find_field_recursive(self._type, name)
        if not isinstance(ftype, PointerType):
            raise TypeError(f"{name} is not a pointer field")
        target = read_typed(self._region, self.addr + offset, ftype)
        if target == 0:
            return None
        return make_view(self._region, ftype.pointee, target)

    def __repr__(self) -> str:
        return f"StructView({self._type.name} @ {self.addr:#x})"


class ArrayView:
    """A window onto a contiguous array of elements in shared memory."""

    __slots__ = ("_region", "element", "addr", "count")

    def __init__(self, region: SharedRegion, element: Type, addr: int, count: int):
        self._region = region
        self.element = element
        self.addr = addr
        self.count = count

    def element_address(self, index: int) -> int:
        self._check(index)
        return self.addr + index * self.element.size()

    def _check(self, index: int) -> None:
        if not 0 <= index < self.count:
            raise IndexError(f"index {index} out of range [0, {self.count})")

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, index: int):
        self._check(index)
        offset = self.addr + index * self.element.size()
        if isinstance(self.element, StructType):
            return StructView(self._region, self.element, offset)
        return read_typed(self._region, offset, self.element)

    def __setitem__(self, index: int, value) -> None:
        self._check(index)
        offset = self.addr + index * self.element.size()
        write_typed(self._region, offset, self.element, value)

    def __iter__(self) -> Iterator:
        return (self[i] for i in range(self.count))

    def fill_from(self, values) -> None:
        for index, value in enumerate(values):
            self[index] = value

    def to_list(self) -> list:
        return [self[i] for i in range(self.count)]

    def __repr__(self) -> str:
        return f"ArrayView({self.count} x {self.element} @ {self.addr:#x})"


def _find_field_recursive(struct: StructType, name: str) -> tuple[int, Type]:
    """(offset, type) of ``name``, searching embedded base subobjects
    (fields named ``__base_*``) so views of derived-class instances can
    touch inherited fields and the vtable pointer."""
    if struct.has_field(name):
        field = struct.field_named(name)
        return field.offset, field.type
    for field in struct.fields:
        if field.name.startswith("__base_") and isinstance(field.type, StructType):
            try:
                inner_offset, inner_type = _find_field_recursive(field.type, name)
            except KeyError:
                continue
            return field.offset + inner_offset, inner_type
    raise KeyError(f"struct {struct.name} has no field {name!r}")


def make_view(region: SharedRegion, type_: Type, addr: int):
    if isinstance(type_, StructType):
        return StructView(region, type_, addr)
    if isinstance(type_, ArrayType):
        return ArrayView(region, type_.element, addr, type_.count)
    return ScalarView(region, type_, addr)


class ScalarView:
    __slots__ = ("_region", "type", "addr")

    def __init__(self, region: SharedRegion, type_: Type, addr: int):
        self._region = region
        self.type = type_
        self.addr = addr

    @property
    def value(self):
        return read_typed(self._region, self.addr, self.type)

    @value.setter
    def value(self, new_value) -> None:
        write_typed(self._region, self.addr, self.type, new_value)


def read_typed(region: SharedRegion, addr: int, type_: Type):
    if isinstance(type_, IntType):
        return region.read_int(addr, type_.size(), type_.signed)
    if isinstance(type_, FloatType):
        return region.read_float(addr, type_.size())
    if isinstance(type_, PointerType):
        return region.read_int(addr, type_.size(), signed=False)
    raise TypeError(f"cannot read aggregate type {type_} as a scalar")


def write_typed(region: SharedRegion, addr: int, type_: Type, value) -> None:
    if isinstance(type_, IntType):
        region.write_int(addr, type_.size(), int(value), type_.signed)
    elif isinstance(type_, FloatType):
        region.write_float(addr, type_.size(), float(value))
    elif isinstance(type_, PointerType):
        region.write_int(addr, type_.size(), address_of(value), signed=False)
    else:
        raise TypeError(f"cannot write aggregate type {type_} as a scalar")


class SvmHeap:
    """Allocator + view factory bundle the runtime hands to host code."""

    def __init__(self, region: SharedRegion, allocator: SharedAllocator):
        self.region = region
        self.allocator = allocator

    def new_struct(self, struct_type: StructType) -> StructView:
        addr = self.allocator.calloc(struct_type.size(), struct_type.align())
        return StructView(self.region, struct_type, addr)

    def new_array(self, element: Type, count: int) -> ArrayView:
        if count <= 0:
            raise ValueError("array count must be positive")
        addr = self.allocator.calloc(element.size() * count, element.align())
        return ArrayView(self.region, element, addr, count)

    def free(self, view: Addressable) -> None:
        self.allocator.free(address_of(view))
