"""Simulated physical memory.

One flat byte array stands in for the physical memory that an integrated
processor shares between CPU and GPU.  Typed accessors read and write
scalars at *physical offsets*; the address-space logic (CPU virtual
addresses, GPU surface-relative addresses) lives in
:mod:`repro.svm.region`.
"""

from __future__ import annotations

import struct


class MemoryFault(Exception):
    """Out-of-range or misaligned access in the simulated memory."""


_SCALAR_FORMATS = {
    ("int", 1, True): "b",
    ("int", 1, False): "B",
    ("int", 2, True): "h",
    ("int", 2, False): "H",
    ("int", 4, True): "i",
    ("int", 4, False): "I",
    ("int", 8, True): "q",
    ("int", 8, False): "Q",
    ("float", 4, True): "f",
    ("float", 8, True): "d",
}


class PhysicalMemory:
    """A fixed-size byte array with typed little-endian accessors."""

    def __init__(self, size: int):
        self.size = size
        self.data = bytearray(size)

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.size:
            raise MemoryFault(
                f"physical access [{offset}, {offset + nbytes}) outside "
                f"[0, {self.size})"
            )

    def read_int(self, offset: int, nbytes: int, signed: bool) -> int:
        self._check(offset, nbytes)
        return int.from_bytes(
            self.data[offset : offset + nbytes], "little", signed=signed
        )

    def write_int(self, offset: int, nbytes: int, value: int, signed: bool) -> None:
        self._check(offset, nbytes)
        mask = (1 << (nbytes * 8)) - 1
        value &= mask
        if signed and value >= 1 << (nbytes * 8 - 1):
            value -= 1 << (nbytes * 8)
        self.data[offset : offset + nbytes] = value.to_bytes(
            nbytes, "little", signed=signed
        )

    def read_float(self, offset: int, nbytes: int) -> float:
        self._check(offset, nbytes)
        fmt = "<f" if nbytes == 4 else "<d"
        return struct.unpack_from(fmt, self.data, offset)[0]

    def write_float(self, offset: int, nbytes: int, value: float) -> None:
        self._check(offset, nbytes)
        fmt = "<f" if nbytes == 4 else "<d"
        struct.pack_into(fmt, self.data, offset, value)

    def read_bytes(self, offset: int, nbytes: int) -> bytes:
        self._check(offset, nbytes)
        return bytes(self.data[offset : offset + nbytes])

    def write_bytes(self, offset: int, payload: bytes) -> None:
        self._check(offset, len(payload))
        self.data[offset : offset + len(payload)] = payload

    def fill(self, offset: int, nbytes: int, byte: int = 0) -> None:
        self._check(offset, nbytes)
        self.data[offset : offset + nbytes] = bytes([byte]) * nbytes
