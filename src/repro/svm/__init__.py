"""Software shared virtual memory (paper section 3.1)."""

from .allocator import OutOfSharedMemory, SharedAllocator
from .memory import MemoryFault, PhysicalMemory
from .region import DEFAULT_CPU_BASE, DEFAULT_GPU_BASE, SharedRegion, Surface
from .views import (
    ArrayView,
    ScalarView,
    StructView,
    SvmHeap,
    address_of,
    make_view,
    read_typed,
    write_typed,
)

__all__ = [
    "ArrayView",
    "DEFAULT_CPU_BASE",
    "DEFAULT_GPU_BASE",
    "MemoryFault",
    "OutOfSharedMemory",
    "PhysicalMemory",
    "ScalarView",
    "SharedAllocator",
    "SharedRegion",
    "StructView",
    "Surface",
    "SvmHeap",
    "address_of",
    "make_view",
    "read_typed",
    "write_typed",
]
