"""The shared virtual memory region (paper section 3.1).

At program startup Concord creates one virtual memory region shared between
the CPU and the GPU.  The CPU sees it at ``cpu_base`` in its virtual address
space; the GPU sees the same physical bytes through a *surface* referenced
by a binding-table entry, at ``gpu_base`` in its address space.  The runtime
constant

    svm_const = gpu_base - cpu_base

translates a CPU pointer into a GPU pointer with a single add.  Pointers
stored inside shared data structures are always in CPU representation, so
the same bytes mean the same thing on both devices.

We model both address spaces explicitly and make the GPU side *strict*: a
GPU access with an address outside the surface window raises a
:class:`~repro.svm.memory.MemoryFault`, exactly as dereferencing an
untranslated CPU pointer would fault a real kernel.  This gives the SVM
lowering pass observable teeth — tests assert that skipping translation
faults and that translated programs do not.
"""

from __future__ import annotations

from dataclasses import dataclass

from .memory import MemoryFault, PhysicalMemory

#: Default CPU virtual base of the shared heap (arbitrary, looks like a
#: user-space mmap address).
DEFAULT_CPU_BASE = 0x0000_7F00_0000_0000
#: Default GPU virtual base: binding-table surfaces live low in the GPU's
#: segmented address space.
DEFAULT_GPU_BASE = 0x0000_0000_4000_0000


@dataclass(frozen=True)
class Surface:
    """A GPU surface backing the shared region.

    On Gen7.5 a GPU pointer is a binding-table index plus an offset; the
    shared region is pinned for the duration of kernel execution and its
    binding-table entry is constant, which is what makes the cheap
    add-a-constant translation scheme valid.
    """

    binding_table_index: int
    base: int
    size: int
    pinned: bool = True

    def contains(self, address: int, nbytes: int = 1) -> bool:
        return self.base <= address and address + nbytes <= self.base + self.size


class SharedRegion:
    """CPU/GPU views over one physically shared allocation."""

    def __init__(
        self,
        size: int = 1 << 24,
        cpu_base: int = DEFAULT_CPU_BASE,
        gpu_base: int = DEFAULT_GPU_BASE,
        binding_table_index: int = 0,
    ):
        self.physical = PhysicalMemory(size)
        self.cpu_base = cpu_base
        self.gpu_base = gpu_base
        self.size = size
        self.surface = Surface(binding_table_index, gpu_base, size)

    @property
    def svm_const(self) -> int:
        """The runtime constant the compiler bakes into kernels."""
        return self.gpu_base - self.cpu_base

    # -- address translation ------------------------------------------------

    def cpu_to_gpu(self, cpu_address: int) -> int:
        return cpu_address + self.svm_const

    def gpu_to_cpu(self, gpu_address: int) -> int:
        return gpu_address - self.svm_const

    def cpu_to_physical(self, cpu_address: int, nbytes: int = 1) -> int:
        offset = cpu_address - self.cpu_base
        if offset < 0 or offset + nbytes > self.size:
            raise MemoryFault(
                f"CPU address {cpu_address:#x} (+{nbytes}) outside the shared "
                f"region [{self.cpu_base:#x}, {self.cpu_base + self.size:#x})"
            )
        return offset

    def gpu_to_physical(self, gpu_address: int, nbytes: int = 1) -> int:
        """Strict GPU-side check: addresses must fall inside the surface.

        An untranslated CPU pointer lands far outside the surface window
        and faults — the simulated equivalent of a GPU page fault.
        """
        if not self.surface.contains(gpu_address, nbytes):
            raise MemoryFault(
                f"GPU address {gpu_address:#x} (+{nbytes}) outside surface "
                f"[{self.surface.base:#x}, "
                f"{self.surface.base + self.surface.size:#x}) — "
                f"untranslated shared pointer?"
            )
        return gpu_address - self.gpu_base

    def contains_cpu(self, cpu_address: int, nbytes: int = 1) -> bool:
        offset = cpu_address - self.cpu_base
        return 0 <= offset and offset + nbytes <= self.size

    # -- typed access through the CPU view -----------------------------------

    def read_int(self, cpu_address: int, nbytes: int, signed: bool) -> int:
        return self.physical.read_int(
            self.cpu_to_physical(cpu_address, nbytes), nbytes, signed
        )

    def write_int(self, cpu_address: int, nbytes: int, value: int, signed: bool) -> None:
        self.physical.write_int(
            self.cpu_to_physical(cpu_address, nbytes), nbytes, value, signed
        )

    def read_float(self, cpu_address: int, nbytes: int) -> float:
        return self.physical.read_float(self.cpu_to_physical(cpu_address, nbytes), nbytes)

    def write_float(self, cpu_address: int, nbytes: int, value: float) -> None:
        self.physical.write_float(
            self.cpu_to_physical(cpu_address, nbytes), nbytes, value
        )

    def read_bytes(self, cpu_address: int, nbytes: int) -> bytes:
        return self.physical.read_bytes(self.cpu_to_physical(cpu_address, nbytes), nbytes)

    def write_bytes(self, cpu_address: int, payload: bytes) -> None:
        self.physical.write_bytes(self.cpu_to_physical(cpu_address, len(payload)), payload)
