"""The construct scheduler (dispatch, history, hybrid split machinery).

The scheduler sits between ``ConcordRuntime``'s public constructs and the
device backends.  Single-device policies delegate to a backend's
construct-level path unchanged (bit-identical to the pre-refactor
monolith); the ``auto``/``hybrid`` policies use :meth:`Scheduler.run_split`
to partition one index space across both backends with greedy
earliest-completion-time chunk dispatch:

* Functional execution stays **sequential in global index order**: chunks
  are carved off the front of the remaining range one at a time and run
  immediately on whichever device the dispatcher picked, so a split
  construct mutates the shared region in exactly the order a
  single-device launch would — that is what makes hybrid runs
  bit-identical to ``gpu`` runs.

* Modeled *time* overlaps: each device keeps a virtual clock that
  advances by its chunks' modeled seconds, a chunk goes to the device
  with the earliest estimated completion, and the construct's wall time
  is the later of the two final clocks.  Each backend's chunks price
  against a cache model threaded through the whole construct, so a split
  launch warms the L3/LLC like one big launch.

* Measured chunk throughput feeds the per-kernel history (shared across
  constructs and seedable from a prior profile); the CPU:GPU throughput
  ratio sizes GPU chunks, prices the one-time CPU probe, and backs the
  end-game guard that keeps a slow device from overhanging the finish.
  ``sched.repartition`` counts calibration moves beyond
  :data:`REPARTITION_DELTA`.
"""

from __future__ import annotations

from typing import Optional

from ..gpu.cache import CacheModel
from ..gpu.timing import DeviceReport
from ..svm import address_of

#: Policy used when a runtime is built without an explicit one —
#: paper-faithful GPU offload.
DEFAULT_POLICY = "gpu"

#: A chunk whose recalibrated GPU share moved by more than this counts as
#: a re-partition event (``sched.repartition``).
REPARTITION_DELTA = 0.1

#: Prior CPU slowdown vs the GPU, used to price the CPU probe before any
#: CPU measurement exists for a kernel.
PRIOR_CPU_SLOWDOWN = 8.0

#: A CPU chunk is only dispatched when its estimated completion, padded
#: by this safety factor (chunk cost varies across the index space),
#: still beats the GPU alternative — the end-game guard that keeps the
#: slower device from overhanging the construct's finish.
CPU_SAFETY = 1.25

#: GPU chunks are the CPU chunk size times the calibrated throughput
#: ratio, capped here (keeps launch counts sane on extreme ratios).
MAX_GPU_CHUNK_RATIO = 64


def parallel_report(parts, device: str = "hybrid") -> DeviceReport:
    """Merge per-device totals modeled as executing *concurrently*: wall
    seconds/cycles take the max (the devices overlap), while event counts
    and energy sum.  Compare ``DeviceReport.__add__``, which models
    *sequential* composition by summing seconds."""
    parts = [part for part in parts if part is not None]
    if not parts:
        return DeviceReport(device=device, seconds=0.0, energy_joules=0.0)
    return DeviceReport(
        device=device,
        seconds=max(part.seconds for part in parts),
        energy_joules=sum(part.energy_joules for part in parts),
        cycles=max(part.cycles for part in parts),
        instructions=sum(part.instructions for part in parts),
        issue_slots=sum(part.issue_slots for part in parts),
        mem_transactions=sum(part.mem_transactions for part in parts),
        l3_hits=sum(part.l3_hits for part in parts),
        l3_misses=sum(part.l3_misses for part in parts),
        contention_events=sum(part.contention_events for part in parts),
        contention_cycles=sum(part.contention_cycles for part in parts),
        divergence_waste=sum(part.divergence_waste for part in parts),
        translations=sum(part.translations for part in parts),
    )


class Scheduler:
    """Dispatches constructs through a pluggable placement policy."""

    def __init__(self, rt, policy: str = DEFAULT_POLICY):
        from .policies import POLICIES

        if policy not in POLICIES:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; choose from "
                f"{sorted(POLICIES)}"
            )
        self.rt = rt
        self.policy = policy
        self._policies = {name: cls() for name, cls in POLICIES.items()}
        #: (body-class name, device) -> [items, device seconds] observed,
        #: plus an engine-qualified (key, device, engine) row per
        #: observation; every recorded launch/chunk refines the estimates.
        #: The engine rows let placement prefer measurements from the lane
        #: engine actually running (columnar vector vs threaded-code) and
        #: keep profiles seeded from one engine from mispricing another.
        self.history: dict[tuple, list] = {}
        self.repartitions = 0

    # -- plumbing ----------------------------------------------------------

    @property
    def counters(self):
        obs = self.rt.obs
        return obs.counters if obs is not None else None

    def backend(self, name: str):
        return self.rt.backends[name]

    def key_of(self, kinfo) -> str:
        """History key: the body class is stable across the CPU/GPU kernel
        forms (whose IR function names differ)."""
        return kinfo.body_class.name

    def engine_of(self, device: str) -> str:
        """The lane engine executing on ``device`` in this runtime.  The
        vector engine only replaces the GPU backend; CPU lanes (and the
        vector backend's own per-kernel fallback) run threaded code."""
        engine = self.rt.engine
        if device != "gpu" and engine == "vector":
            return "compiled"
        return engine

    # -- dispatch ----------------------------------------------------------

    def run(self, kinfo, n, body, construct, on_cpu=False, policy=None):
        name = policy if policy is not None else self.policy
        if name not in self._policies:
            raise ValueError(
                f"unknown scheduling policy {name!r}; choose from "
                f"{sorted(self._policies)}"
            )
        fallback = ""
        if on_cpu:
            # paper-faithful on_cpu=True: force the CPU path, no fallback
            name = "cpu"
        elif kinfo.cpu_only and name != "cpu":
            name = "cpu"
            fallback = "restriction fallback"
        counters = self.counters
        if counters is not None:
            counters.add("sched.constructs")
            counters.add(f"sched.policy.{name}")
            telemetry = self.rt.obs.telemetry
            if telemetry is not None:
                telemetry.emit(
                    "sched",
                    self.key_of(kinfo),
                    decision="policy",
                    policy=name,
                    construct=construct,
                    n=n,
                    fallback=fallback,
                )
        chosen = self._policies[name]
        if construct == "reduce":
            report = chosen.run_reduce(self, kinfo, n, body)
        else:
            report = chosen.run_for(self, kinfo, n, body)
        if fallback:
            report.fallback_reason = fallback
        return report

    # -- throughput history ------------------------------------------------

    def record(
        self,
        key: str,
        device: str,
        items: int,
        seconds: float,
        engine: Optional[str] = None,
    ) -> None:
        if items <= 0 or seconds <= 0.0:
            return
        if engine is None:
            engine = self.engine_of(device)
        for hkey in ((key, device), (key, device, engine)):
            entry = self.history.setdefault(hkey, [0, 0.0])
            entry[0] += items
            entry[1] += seconds

    def throughput(
        self, key: str, device: str, engine: Optional[str] = None
    ) -> Optional[float]:
        """Observed items/second for one kernel on one device, or ``None``
        before any measurement.  Measurements taken under the engine that
        will actually run (``engine``, defaulting to this runtime's) are
        preferred; the per-device aggregate is the fallback, so history
        seeded by an older profile without engine rows still primes the
        estimate."""
        if engine is None:
            engine = self.engine_of(device)
        entry = self.history.get((key, device, engine))
        if entry is None:
            entry = self.history.get((key, device))
        if entry is None or entry[1] <= 0.0:
            return None
        return entry[0] / entry[1]

    def gpu_share(self, key: str, default: float = 0.5) -> float:
        """The calibrated GPU fraction of the index space: with measured
        throughputs ``tg``/``tc``, splitting ``tg/(tg+tc)`` of the items
        to the GPU makes both devices finish together."""
        tg = self.throughput(key, "gpu")
        tc = self.throughput(key, "cpu")
        if tg is None or tc is None:
            return default
        return tg / (tg + tc)

    def seed_from_profile(self, doc: dict) -> int:
        """Seed the throughput history from a prior ``repro.obs`` profile
        document (``repro.obs.profile/v1``), so ``auto``/``hybrid`` start
        calibrated instead of probing.  Returns the number of construct
        records absorbed."""
        names = {}
        for kinfo in self.rt.program.kernels.values():
            key = self.key_of(kinfo)
            names[kinfo.kernel.name] = key
            names[kinfo.gpu_kernel.name] = key
        # Profiles record which lane engine produced them (meta.engine);
        # seed the matching engine-qualified rows so a vector-engine
        # profile doesn't skew placement for a threaded-code runtime (or
        # vice versa).  CPU lanes always ran threaded code under vector.
        profile_engine = (doc.get("meta") or {}).get("engine")
        seeded = 0
        for construct in doc.get("constructs", []):
            device = construct.get("device")
            key = names.get(construct.get("kernel"))
            if device not in ("cpu", "gpu") or key is None:
                continue
            n = construct.get("n") or 0
            phases = construct.get("phases") or {}
            seconds = phases.get("launch", construct.get("seconds", 0.0))
            if n and seconds:
                engine = profile_engine or "unknown"
                if engine == "vector" and device != "gpu":
                    engine = "compiled"
                self.record(key, device, n, seconds, engine=engine)
                seeded += 1
        return seeded

    # -- split (hybrid / auto warm-up) execution ---------------------------

    def run_split(self, kinfo, n, body, construct, chunk_items, policy_name):
        """One construct partitioned across both backends (see module
        docstring).  ``chunk_items`` is the CPU-side chunk granularity;
        GPU chunks scale up by the calibrated throughput ratio.  Each
        chunk is dispatched to the device with the earliest estimated
        completion, with a cold-start CPU probe and an end-game guard."""
        rt = self.rt
        gpu = self.backend("gpu")
        cpu = self.backend("cpu")
        key = self.key_of(kinfo)
        kernel_name = kinfo.gpu_kernel.name
        counters = self.counters
        # One cache model per device per construct: chunks price like
        # consecutive slices of a single launch.
        gdev, cdev = rt.system.gpu, rt.system.cpu
        caches = {
            "gpu": CacheModel(gdev.l3_size_bytes, gdev.l3_line_bytes, gdev.l3_assoc),
            "cpu": CacheModel(cdev.llc_size_bytes, cdev.llc_line_bytes, cdev.llc_assoc),
        }
        budget = rt.mem_event_cap  # construct-global mem-event budget
        # Per-device virtual clocks and in-construct throughput (fresher
        # than the cross-construct history, so it wins when present).
        clock = {"gpu": 0.0, "cpu": 0.0}
        items = {"gpu": 0, "cpu": 0}
        totals = {"gpu": None, "cpu": None}
        traces = {"gpu": [], "cpu": []}

        def est(device):
            if clock[device] > 0.0 and items[device] > 0:
                return items[device] / clock[device]
            return self.throughput(key, device)

        # Chunks are rounded up to warp (SIMD-width) multiples so GPU
        # chunks keep the exact lane grouping a single launch would have —
        # a misaligned chunk boundary would change the divergence model's
        # warp packing and break timing comparability with ``gpu`` runs.
        warp = max(1, rt.system.gpu.simd_width)
        chunk_items = -(-max(1, chunk_items) // warp) * warp
        with rt._span(
            f"construct:{kernel_name}",
            "construct",
            device="hybrid",
            n=n,
            policy=policy_name,
        ) as cspan:
            with rt._span("jit", "phase") as jit_span:
                jit_seconds = gpu.prepare(kinfo)
            addr = address_of(body)
            copies = None
            if construct == "reduce":
                copies = gpu.alloc_copies(kinfo, addr, n)
            with rt._span("launch", "phase") as launch_span:
                lo = 0
                index = 0
                last_share = None
                while lo < n:
                    remaining = n - lo
                    device, size = self._pick(
                        est("gpu"), est("cpu"), clock, remaining,
                        chunk_items, counters,
                    )
                    span = range(lo, lo + size)
                    backend = gpu if device == "gpu" else cpu
                    with rt._span(
                        f"launch:{device}",
                        "phase",
                        chunk=index,
                        lo=lo,
                        items=size,
                    ) as chunk_span:
                        if construct == "reduce":
                            result = backend.reduce(
                                kinfo, span, copies,
                                timing_cache=caches[device], budget=budget,
                            )
                        else:
                            result = backend.launch(
                                kinfo, span, addr,
                                timing_cache=caches[device], budget=budget,
                            )
                    budget = max(0, budget - result.kept_events)
                    report = result.report
                    if chunk_span is not None:
                        chunk_span.sim_seconds = report.seconds
                    clock[device] += report.seconds
                    items[device] += size
                    totals[device] = (
                        report if totals[device] is None
                        else totals[device] + report
                    )
                    traces[device].extend(result.traces)
                    self.record(key, device, size, report.seconds)
                    if counters is not None:
                        counters.add(f"sched.chunks.{device}")
                        counters.add(f"sched.items.{device}", size)
                        telemetry = rt.obs.telemetry
                        if telemetry is not None:
                            telemetry.emit(
                                "sched",
                                key,
                                decision="chunk",
                                device=device,
                                chunk=index,
                                lo=lo,
                                items=size,
                            )
                    share = self.gpu_share(key)
                    if (
                        last_share is not None
                        and abs(share - last_share) > REPARTITION_DELTA
                    ):
                        self.repartitions += 1
                        if counters is not None:
                            counters.add("sched.repartition")
                    last_share = share
                    lo += size
                    index += 1
            total = parallel_report([totals["gpu"], totals["cpu"]])
            launch_seconds = total.seconds
            join = None
            if construct == "reduce":
                join = gpu.join_copies(kinfo, addr, copies)
                if join.joined:
                    total.cycles += join.local_cycles
                    total.seconds += join.local_seconds
                gpu.free_copies(copies)

        if totals["gpu"] is not None:
            rt.total_gpu_report += totals["gpu"]
        if totals["cpu"] is not None:
            rt.total_cpu_report += totals["cpu"]
        if rt.obs is not None:
            from ..cpu.timing import time_cpu_execution

            host_join_seconds = 0.0
            host_trace = join.host_trace if join is not None else None
            if host_trace is not None:
                host_join_seconds = time_cpu_execution(
                    rt.system.cpu, [host_trace]
                ).seconds
            seconds = total.seconds + jit_seconds + host_join_seconds
            phases = {"jit": jit_seconds, "launch": launch_seconds}
            span_seconds = [(jit_span, jit_seconds), (launch_span, launch_seconds)]
            all_traces = traces["gpu"] + traces["cpu"]
            line_samples = []
            if traces["gpu"]:
                line_samples.append((kinfo.gpu_kernel, "gpu", traces["gpu"]))
            if traces["cpu"]:
                line_samples.append((kinfo.kernel, "cpu", traces["cpu"]))
            if construct == "reduce":
                phases["reduce_tree"] = join.local_seconds
                phases["host_join"] = host_join_seconds
                span_seconds.append((join.tree_span, join.local_seconds))
                span_seconds.append((join.host_span, host_join_seconds))
                if host_trace is not None:
                    all_traces = all_traces + [host_trace]
                    line_samples.append((join.host_fn, "cpu", [host_trace]))
            rt._record_construct(
                cspan,
                kernel_name,
                construct,
                "hybrid",
                n,
                seconds=seconds,
                energy_joules=total.energy_joules,
                phases=phases,
                traces=all_traces,
                span_seconds=span_seconds,
                line_samples=line_samples,
            )
        from ..runtime.runtime import ExecutionReport

        # The final virtual clocks are each device's launch occupancy —
        # the task graph uses them to overlap this construct's halves
        # with other constructs instead of conservatively blocking both
        # devices for the merged wall time.
        device_seconds = {
            device: clock[device] for device in clock if items[device] > 0
        }
        if construct == "reduce" and join is not None and join.joined:
            device_seconds["gpu"] = (
                device_seconds.get("gpu", 0.0) + join.local_seconds
            )
        return ExecutionReport(
            device="hybrid",
            n=n,
            report=total,
            jit_seconds=jit_seconds,
            device_seconds=device_seconds,
        )

    def _pick(self, tg, tc, clock, remaining, chunk_items, counters):
        """Choose ``(device, size)`` for the next chunk off the front of
        the remaining range — greedy earliest estimated completion with a
        cold-start probe and the end-game guard."""
        if tg is None:
            # Nothing measured yet: a small GPU chunk calibrates the
            # paper's default device first.
            return "gpu", min(remaining, chunk_items)
        if tc is None:
            # CPU still unmeasured.  Probe it once with one chunk, priced
            # at the pessimistic prior — unless the GPU is estimated to
            # finish everything before the probe would land.
            probe_cost = chunk_items * PRIOR_CPU_SLOWDOWN / tg
            if remaining > chunk_items and probe_cost <= remaining / tg:
                if counters is not None:
                    counters.add("sched.probes")
                return "cpu", chunk_items
            return "gpu", min(remaining, chunk_items * int(PRIOR_CPU_SLOWDOWN))
        ratio = max(1, min(MAX_GPU_CHUNK_RATIO, round(tg / tc)))
        cpu_size = min(chunk_items, remaining)
        gpu_size = min(remaining, chunk_items * ratio)
        cpu_finish = clock["cpu"] + cpu_size / tc
        gpu_finish = clock["gpu"] + gpu_size / tg
        gpu_alone = clock["gpu"] + remaining / tg
        if (
            # end-game: the GPU must keep at least one full chunk of work
            # to overlap this CPU chunk — a tail chunk whose real cost
            # exceeds the estimate (chunk cost is index-dependent) would
            # otherwise overhang the construct's finish with nothing left
            # to hide it behind
            remaining - cpu_size >= gpu_size
            and cpu_finish * CPU_SAFETY <= gpu_finish
            and cpu_finish * CPU_SAFETY <= gpu_alone
        ):
            return "cpu", cpu_size
        return "gpu", gpu_size
