"""Construct scheduler: pluggable placement policies over device backends.

Every ``parallel_for_hetero`` / ``parallel_reduce_hetero`` construct is
dispatched through a :class:`Scheduler`, which owns the policy registry
(``cpu``, ``gpu``, ``auto``, ``hybrid`` — see :mod:`repro.sched.policies`),
the per-kernel throughput history that calibrates the ``auto``/``hybrid``
decisions, and the machinery for splitting one index space across both
backends.  See ``docs/RUNTIME.md``.
"""

from .policies import (
    POLICIES,
    AutoPolicy,
    CpuPolicy,
    GpuPolicy,
    HybridPolicy,
    Policy,
    register_policy,
)
from .scheduler import DEFAULT_POLICY, Scheduler, parallel_report

__all__ = [
    "AutoPolicy",
    "CpuPolicy",
    "DEFAULT_POLICY",
    "GpuPolicy",
    "HybridPolicy",
    "POLICIES",
    "Policy",
    "Scheduler",
    "parallel_report",
    "register_policy",
]
