"""Placement policies: where does a construct's index space run?

``cpu`` and ``gpu`` are the paper-faithful single-device paths — they
delegate to the backend's construct-level entry points and stay
bit-identical to the pre-refactor runtime.  ``auto`` picks the faster
device per kernel, warming up through a split first construct when it
has no measurements; ``hybrid`` splits every large enough construct
across both backends with the scheduler's earliest-completion chunk
dispatch.  All four feed the scheduler's throughput history, so
decisions sharpen over a run and can be pre-seeded from a prior profile
(``Scheduler.seed_from_profile``).

New policies register with :func:`register_policy` and become selectable
through ``make_runtime(policy=...)`` and the CLI without touching the
runtime.
"""

from __future__ import annotations

#: Below this many work-items a hybrid split cannot pay for itself —
#: degrade to the best known single device.
MIN_SPLIT_ITEMS = 4

#: Smallest chunk granularity (work-items) for split dispatch.
MIN_CHUNK = 16

#: CPU-side chunk size is ``max(MIN_CHUNK, n // CHUNK_DIVISOR)`` — about
#: CHUNK_DIVISOR dispatch decisions per construct, enough for the
#: calibration to steer mid-construct without drowning in tiny launches.
CHUNK_DIVISOR = 64

#: name -> Policy subclass
POLICIES: dict = {}


def register_policy(name: str):
    """Class decorator adding a policy to the registry under ``name``."""

    def _register(cls):
        cls.name = name
        POLICIES[name] = cls
        return cls

    return _register


def _chunk_size(n: int) -> int:
    return max(MIN_CHUNK, n // CHUNK_DIVISOR)


class Policy:
    """One placement strategy.  Stateless across constructs — anything a
    policy wants to remember lives in the scheduler's history."""

    name: str = ""

    def run_for(self, sched, kinfo, n, body):
        raise NotImplementedError

    def run_reduce(self, sched, kinfo, n, body):
        raise NotImplementedError


def _single(sched, device: str, kinfo, n, body, construct: str):
    """Whole construct on one backend's construct-level path, with the
    observed launch time fed back into the throughput history."""
    backend = sched.backend(device)
    if construct == "reduce":
        result = backend.run_reduce(kinfo, n, body)
    else:
        result = backend.run_for(kinfo, n, body)
    sched.record(sched.key_of(kinfo), device, n, result.report.seconds)
    return result


def _best_known(sched, kinfo, default: str = "gpu") -> str:
    """The faster device per the history, or ``default`` when either side
    is still unmeasured."""
    key = sched.key_of(kinfo)
    tg = sched.throughput(key, "gpu")
    tc = sched.throughput(key, "cpu")
    if tg is None or tc is None:
        return default
    return "gpu" if tg >= tc else "cpu"


@register_policy("cpu")
class CpuPolicy(Policy):
    """Everything on the multicore CPU (the paper's ``on_cpu=True``)."""

    def run_for(self, sched, kinfo, n, body):
        return _single(sched, "cpu", kinfo, n, body, "for")

    def run_reduce(self, sched, kinfo, n, body):
        return _single(sched, "cpu", kinfo, n, body, "reduce")


@register_policy("gpu")
class GpuPolicy(Policy):
    """Everything offloaded to the integrated GPU (paper-faithful
    default)."""

    def run_for(self, sched, kinfo, n, body):
        return _single(sched, "gpu", kinfo, n, body, "for")

    def run_reduce(self, sched, kinfo, n, body):
        return _single(sched, "gpu", kinfo, n, body, "reduce")


@register_policy("auto")
class AutoPolicy(Policy):
    """Profile-guided single-device placement.

    With throughput history for both devices (from earlier constructs of
    the same kernel, from a split warm-up, or seeded from a prior
    ``repro.obs`` profile), the whole construct goes to the faster one.
    Cold kernels with enough items warm up through one split construct —
    the chunk dispatcher measures both devices as a side effect and the
    winner dominates from the second construct on; tiny cold constructs
    just take the paper's GPU default.
    """

    def run_for(self, sched, kinfo, n, body):
        key = sched.key_of(kinfo)
        known = (
            sched.throughput(key, "gpu") is not None
            and sched.throughput(key, "cpu") is not None
        )
        if known or n < 2 * MIN_CHUNK:
            return _single(sched, _best_known(sched, kinfo), kinfo, n, body, "for")
        return sched.run_split(kinfo, n, body, "for", _chunk_size(n), "auto")

    def run_reduce(self, sched, kinfo, n, body):
        # Reductions carry per-item scratch copies; keep them whole on the
        # best known device rather than paying a split warm-up.
        return _single(sched, _best_known(sched, kinfo), kinfo, n, body, "reduce")


@register_policy("hybrid")
class HybridPolicy(Policy):
    """Split each construct across CPU and GPU by calibrated throughput.

    Chunks are dispatched to the device with the earliest estimated
    completion (see ``Scheduler.run_split``); the CPU:GPU throughput
    ratio from the accumulated history sizes GPU chunks and gates CPU
    participation.  Constructs under :data:`MIN_SPLIT_ITEMS` items
    degrade to the best known single device.
    """

    def run_for(self, sched, kinfo, n, body):
        if n < MIN_SPLIT_ITEMS:
            return self._degrade(sched, kinfo, n, body, "for")
        return sched.run_split(kinfo, n, body, "for", _chunk_size(n), "hybrid")

    def run_reduce(self, sched, kinfo, n, body):
        if n < MIN_SPLIT_ITEMS:
            return self._degrade(sched, kinfo, n, body, "reduce")
        return sched.run_split(kinfo, n, body, "reduce", _chunk_size(n), "hybrid")

    def _degrade(self, sched, kinfo, n, body, construct):
        counters = sched.counters
        if counters is not None:
            counters.add("sched.degraded")
        return _single(sched, _best_known(sched, kinfo), kinfo, n, body, construct)
