"""OpenCL C emission for device kernels (paper Figure 1, right side).

The static compiler embeds OpenCL source in the executable; the runtime
hands it to the vendor JIT.  In this reproduction the simulator executes
the finalized kernel IR directly (standing in for the vendor JIT's GPU
ISA), and this module produces the OpenCL C *artifact* so the pipeline
shape — and the generated code a user would inspect — matches the paper:

* the kernel signature takes ``__global char *gpu_base``, ``CpuPtr
  cpu_base`` and the body pointer as a ``CpuPtr``;
* ``svm_const`` is computed once at kernel entry;
* ``svm.to_gpu`` translations print as the paper's ``AS_GPU_PTR`` macro.

Control flow is emitted as labeled blocks with gotos.  OpenCL C has no
``goto``; a production backend would restructure to loops (reducible CFGs
always allow it).  We keep the direct form for readability of the artifact
and note it in DESIGN.md.
"""

from __future__ import annotations

from ..ir import Constant, Function, GlobalVariable, Instruction, Module
from ..ir.types import (
    FloatType,
    IntType,
    PointerType,
    StructType,
    Type,
    VoidType,
)

PRELUDE = """\
typedef unsigned long CpuPtr;
#define AS_GPU_PTR(T, p) ((__global T *)((p) + svm_const))
"""


def emit_kernel_opencl(module: Module, kernel: Function) -> str:
    namer = _Namer()
    lines: list[str] = [PRELUDE]
    lines.append(_struct_decls(module))
    args = ", ".join(
        f"{_ctype(a.type)} {a.name}" for a in kernel.args
    )
    lines.append(
        f"__kernel void {_csym(kernel.name)}(__global char *gpu_base, "
        f"CpuPtr cpu_base, {args})"
    )
    lines.append("{")
    lines.append("    const long svm_const = (long)(gpu_base - (char*)cpu_base);")
    lines.append("    uint __gid = get_global_id(0);")
    for block in kernel.blocks:
        lines.append(f"  {_blabel(block)}: ;")
        for instr in block.instructions:
            for text in _emit_instruction(instr, namer):
                lines.append(f"    {text}")
    lines.append("}")
    return "\n".join(lines) + "\n"


class _Namer:
    def __init__(self):
        self._names: dict[int, str] = {}
        self._counter = 0

    def name(self, instr: Instruction) -> str:
        if instr.uid not in self._names:
            base = instr.name or "t"
            self._names[instr.uid] = f"{_csym(base)}_{instr.uid}"
        return self._names[instr.uid]


def _ref(value, namer: _Namer) -> str:
    if isinstance(value, Constant):
        if isinstance(value.type, FloatType):
            return f"{value.value!r}f" if value.type.bits == 32 else repr(value.value)
        return str(value.value)
    if isinstance(value, Instruction):
        return namer.name(value)
    if isinstance(value, GlobalVariable):
        return f"__global_{_csym(value.name)}"
    return f"{_csym(getattr(value, 'name', '?'))}"


def _emit_instruction(instr: Instruction, namer: _Namer) -> list[str]:
    op = instr.op
    if op == "phi":
        # Phis become assignments on incoming edges in real OpenCL output;
        # for the artifact we note them explicitly.
        incoming = ", ".join(
            f"{_ref(v, namer)} from {_blabel(b)}"
            for v, b in zip(instr.operands, instr.phi_blocks)
        )
        return [f"{_decl(instr, namer)} = PHI({incoming});"]
    if op == "br":
        return [f"goto {_blabel(instr.targets[0])};"]
    if op == "condbr":
        return [
            f"if ({_ref(instr.operands[0], namer)}) goto "
            f"{_blabel(instr.targets[0])}; else goto {_blabel(instr.targets[1])};"
        ]
    if op == "ret":
        if instr.operands:
            return [f"return /* {_ref(instr.operands[0], namer)} */;"]
        return ["return;"]
    if op == "load":
        ptr_text = _as_gpu_pointer(instr.operands[0], instr.type, namer)
        return [f"{_decl(instr, namer)} = *{ptr_text};"]
    if op == "store":
        ptr_text = _as_gpu_pointer(instr.operands[1], instr.operands[0].type, namer)
        return [f"*{ptr_text} = {_ref(instr.operands[0], namer)};"]
    if op == "gep":
        parts = [f"(CpuPtr){_ref(instr.operands[0], namer)}"]
        if instr.gep_offset:
            parts.append(f"{instr.gep_offset}")
        for value, scale in zip(instr.operands[1:], instr.gep_scales):
            parts.append(f"(CpuPtr){_ref(value, namer)} * {scale}")
        return [f"{_decl(instr, namer)} = {' + '.join(parts)};"]
    if op == "call":
        callee = instr.callee
        name = getattr(callee, "name", "?")
        args = ", ".join(_ref(o, namer) for o in instr.operands)
        if name == "svm.to_gpu":
            # The paper's pointer translation: add the runtime constant.
            return [
                f"{_decl(instr, namer)} = (CpuPtr)AS_GPU_PTR(char, "
                f"{_ref(instr.operands[0], namer)});"
            ]
        if name == "svm.to_cpu":
            return [
                f"{_decl(instr, namer)} = ({_ref(instr.operands[0], namer)})"
                f" - svm_const;"
            ]
        if name == "gpu.global_id":
            return [f"{_decl(instr, namer)} = __gid;"]
        if name == "gpu.num_cores":
            return [f"{_decl(instr, namer)} = CONCORD_NUM_CORES;"]
        builtin = _intrinsic_to_opencl(name)
        if isinstance(instr.type, VoidType):
            return [f"{builtin}({args});"]
        return [f"{_decl(instr, namer)} = {builtin}({args});"]
    if op in ("icmp", "fcmp"):
        cop = {
            "eq": "==", "ne": "!=", "slt": "<", "sle": "<=", "sgt": ">",
            "sge": ">=", "ult": "<", "ule": "<=", "ugt": ">", "uge": ">=",
            "oeq": "==", "one": "!=", "olt": "<", "ole": "<=", "ogt": ">",
            "oge": ">=",
        }[instr.pred]
        unsigned = instr.op == "icmp" and instr.pred.startswith("u")
        cast = "(ulong)" if unsigned else ""
        return [
            f"{_decl(instr, namer)} = {cast}{_ref(instr.operands[0], namer)} "
            f"{cop} {cast}{_ref(instr.operands[1], namer)};"
        ]
    if op == "select":
        return [
            f"{_decl(instr, namer)} = {_ref(instr.operands[0], namer)} ? "
            f"{_ref(instr.operands[1], namer)} : {_ref(instr.operands[2], namer)};"
        ]
    if op == "alloca":
        return [f"{_ctype_alloca(instr)} {namer.name(instr)}_buf; "
                f"CpuPtr {namer.name(instr)} = (CpuPtr)&{namer.name(instr)}_buf;"]
    binop = {
        "add": "+", "sub": "-", "mul": "*", "sdiv": "/", "udiv": "/",
        "srem": "%", "urem": "%", "fadd": "+", "fsub": "-", "fmul": "*",
        "fdiv": "/", "shl": "<<", "lshr": ">>", "ashr": ">>", "and": "&",
        "or": "|", "xor": "^",
    }.get(op)
    if binop is not None:
        return [
            f"{_decl(instr, namer)} = {_ref(instr.operands[0], namer)} "
            f"{binop} {_ref(instr.operands[1], namer)};"
        ]
    cast_ops = {
        "zext", "sext", "trunc", "bitcast", "sitofp", "uitofp", "fptosi",
        "fpext", "fptrunc", "ptrtoint", "inttoptr",
    }
    if op in cast_ops:
        return [
            f"{_decl(instr, namer)} = ({_ctype(instr.type)})"
            f"{_ref(instr.operands[0], namer)};"
        ]
    return [f"/* {op} unhandled */"]


def _as_gpu_pointer(pointer_value, pointee: Type, namer: _Namer) -> str:
    text = _ref(pointer_value, namer)
    return f"(({_pointee_ctype(pointee)} __global *)({text}))"


def _decl(instr: Instruction, namer: _Namer) -> str:
    return f"{_ctype(instr.type)} {namer.name(instr)}"


def _struct_decls(module: Module) -> str:
    lines = []
    for struct in module.structs.values():
        if not isinstance(struct, StructType) or not struct.complete:
            continue
        lines.append(f"/* struct {struct.name}: size {struct.size()} */")
    return "\n".join(lines)


def _ctype(type_: Type) -> str:
    if isinstance(type_, PointerType):
        return "CpuPtr"
    if isinstance(type_, IntType):
        if type_.bits == 1:
            return "bool"
        base = {8: "char", 16: "short", 32: "int", 64: "long"}[type_.bits]
        return base if type_.signed else f"unsigned {base}"
    if isinstance(type_, FloatType):
        return "float" if type_.bits == 32 else "double"
    if isinstance(type_, VoidType):
        return "void"
    return "/*aggregate*/ CpuPtr"


def _pointee_ctype(type_: Type) -> str:
    if isinstance(type_, (PointerType,)):
        return "CpuPtr"
    return _ctype(type_)


def _ctype_alloca(instr: Instruction) -> str:
    alloc = instr.alloc_type
    if isinstance(alloc, StructType):
        return f"char /*{alloc.name}*/ [{alloc.size()}]"
    return _ctype(alloc)


def _intrinsic_to_opencl(name: str) -> str:
    table = {
        "math.sqrt.f32": "sqrt", "math.sqrt.f64": "sqrt",
        "math.fabs.f32": "fabs", "math.fabs.f64": "fabs",
        "math.floor.f32": "floor", "math.ceil.f32": "ceil",
        "math.exp.f32": "exp", "math.log.f32": "log",
        "math.sin.f32": "sin", "math.cos.f32": "cos", "math.tan.f32": "tan",
        "math.pow.f32": "pow", "math.fmin.f32": "fmin", "math.fmax.f32": "fmax",
        "math.rsqrt.f32": "rsqrt", "math.atan2.f32": "atan2",
        "atomic.add.i32": "atomic_add", "atomic.min.i32": "atomic_min",
        "atomic.max.i32": "atomic_max", "atomic.cas.i32": "atomic_cmpxchg",
        "atomic.add.f32": "atomic_add_float",
        "gpu.barrier": "barrier",
    }
    return table.get(name, _csym(name))


def _csym(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    return "".join(out)


def _blabel(block) -> str:
    return f"BB_{_csym(block.name)}"


def emit_reduce_wrapper_opencl(
    module: Module,
    body_struct_name: str,
    body_size: int,
    operator_kernel: Function,
    join_kernel: Function,
    group_size: int = 16,
) -> str:
    """The reduction wrapper of paper section 3.3.

    The compiler generates wrapper OpenCL that (a) copies the shared Body
    object into each work-item's private memory, (b) runs ``operator()``
    to produce the work-item's partial value, (c) moves the private copies
    to local memory, and (d) tree-reduces in local memory with barriers
    until one value per work-group remains; group leaders are joined
    sequentially by the runtime.  This emits that wrapper as the artifact
    a user would inspect; the simulator executes the equivalent staged
    reduction directly (see ``ConcordRuntime._offload_reduce``).
    """
    lines = [PRELUDE]
    lines.append(f"/* hierarchical reduction wrapper for {body_struct_name} */")
    lines.append(
        f"typedef struct {{ char body[{body_size}]; }} "
        f"{_csym(body_struct_name)}_bytes;"
    )
    lines.append(
        f"__kernel void reduce_{_csym(body_struct_name)}("
        "__global char *gpu_base, CpuPtr cpu_base,\n"
        f"        CpuPtr shared_body, __global char *group_results)"
    )
    lines.append("{")
    lines.append("    const long svm_const = (long)(gpu_base - (char*)cpu_base);")
    lines.append("    uint gid = get_global_id(0);")
    lines.append("    uint lid = get_local_id(0);")
    lines.append(
        f"    __local {_csym(body_struct_name)}_bytes _local_copies[{group_size}];"
    )
    lines.append(f"    {_csym(body_struct_name)}_bytes _private;")
    lines.append("    // (a) private copy of the shared Body")
    lines.append(
        f"    for (int b = 0; b < {body_size}; b++)"
        " _private.body[b] = *AS_GPU_PTR(char, shared_body + b);"
    )
    lines.append("    // (b) this work-item's contribution")
    lines.append(
        f"    {_csym(operator_kernel.name)}_body((CpuPtr)&_private, (int)gid);"
    )
    lines.append("    // (c) private -> local")
    lines.append(f"    _local_copies[lid] = _private;")
    lines.append("    barrier(CLK_LOCAL_MEM_FENCE);")
    lines.append("    // (d) tree reduction in local memory")
    lines.append(f"    for (uint stride = 1; stride < {group_size}; stride *= 2) {{")
    lines.append("        if (lid % (2 * stride) == 0 && lid + stride < get_local_size(0))")
    lines.append(
        f"            {_csym(join_kernel.name)}_body("
        "(CpuPtr)&_local_copies[lid], (CpuPtr)&_local_copies[lid + stride]);"
    )
    lines.append("        barrier(CLK_LOCAL_MEM_FENCE);")
    lines.append("    }")
    lines.append("    if (lid == 0)")
    lines.append(
        f"        for (int b = 0; b < {body_size}; b++)"
        " group_results[get_group_id(0) * "
        f"{body_size} + b] = _local_copies[0].body[b];"
    )
    lines.append("}")
    return "\n".join(lines) + "\n"
