"""Code generation backends (OpenCL C kernel emission)."""

from .opencl import emit_kernel_opencl

__all__ = ["emit_kernel_opencl"]
