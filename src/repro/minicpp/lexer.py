"""Lexer for MiniC++, the C++ subset accepted by the reproduction compiler.

Covers the lexical needs of the paper's workloads: identifiers, keywords,
integer/float/char/bool literals, the full C++ operator set used by
expression code (including ``->``, ``::``, ``<<``/``>>``, compound
assignments, increment/decrement), and both comment styles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

KEYWORDS = frozenset(
    """
    bool break char class const continue delete do double else false float
    for if int long namespace new operator private protected public return
    short signed sizeof static static_cast struct template this true typename
    unsigned virtual void while using
    """.split()
)

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=", "->*", "...",
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^", "?",
    ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


class LexError(Exception):
    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'keyword' | 'int' | 'float' | 'char' | 'op' | 'eof'
    text: str
    line: int
    column: int
    value: object = None

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r} @{self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    pos = 0
    line = 1
    col = 1
    length = len(source)

    def advance(n: int) -> None:
        nonlocal pos, line, col
        for _ in range(n):
            if pos < length and source[pos] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            pos += 1

    while pos < length:
        ch = source[pos]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            advance((end - pos) if end != -1 else (length - pos))
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise LexError("unterminated block comment", line, col)
            advance(end + 2 - pos)
            continue
        if ch.isalpha() or ch == "_":
            start = pos
            start_line, start_col = line, col
            while pos < length and (source[pos].isalnum() or source[pos] == "_"):
                advance(1)
            text = source[start:pos]
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, start_line, start_col)
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < length and source[pos + 1].isdigit()):
            yield _number(source, pos, line, col, advance)
            continue
        if ch == "'":
            start_line, start_col = line, col
            advance(1)
            if pos < length and source[pos] == "\\":
                advance(1)
                escape = source[pos]
                mapping = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}
                if escape not in mapping:
                    raise LexError(f"unknown escape \\{escape}", line, col)
                value = mapping[escape]
                advance(1)
            else:
                value = ord(source[pos])
                advance(1)
            if pos >= length or source[pos] != "'":
                raise LexError("unterminated character literal", line, col)
            advance(1)
            yield Token("char", source[pos - 3 : pos], start_line, start_col, value)
            continue
        matched = False
        for operator in _OPERATORS:
            if source.startswith(operator, pos):
                yield Token("op", operator, line, col)
                advance(len(operator))
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {ch!r}", line, col)
    yield Token("eof", "", line, col)


def _number(source: str, pos: int, line: int, col: int, advance) -> Token:
    start = pos
    length = len(source)
    is_float = False
    if source.startswith(("0x", "0X"), pos):
        end = pos + 2
        while end < length and source[end] in "0123456789abcdefABCDEF":
            end += 1
        text = source[start:end]
        advance(end - pos)
        _skip_int_suffix(source, advance)
        return Token("int", text, line, col, int(text, 16))
    end = pos
    while end < length and source[end].isdigit():
        end += 1
    if end < length and source[end] == "." and not source.startswith("..", end):
        is_float = True
        end += 1
        while end < length and source[end].isdigit():
            end += 1
    if end < length and source[end] in "eE":
        mark = end + 1
        if mark < length and source[mark] in "+-":
            mark += 1
        if mark < length and source[mark].isdigit():
            is_float = True
            end = mark
            while end < length and source[end].isdigit():
                end += 1
    text = source[start:end]
    advance(end - pos)
    if is_float:
        suffix_f = False
        # optional f/F suffix
        # (we peek via the original source — advance already consumed digits)
        nonlocal_pos = end
        if nonlocal_pos < length and source[nonlocal_pos] in "fF":
            suffix_f = True
            advance(1)
        return Token("float", text + ("f" if suffix_f else ""), line, col, float(text))
    value = int(text)
    _skip_int_suffix(source, advance, at=end)
    return Token("int", text, line, col, value)


def _skip_int_suffix(source: str, advance, at: int = -1) -> None:
    # Accept (and ignore) u/U/l/L suffixes such as 10u, 3UL, 7LL.
    # ``advance`` tracks position internally, so we just consume greedily.
    # We cannot read the position back from advance, so callers pass ``at``.
    if at == -1:
        return
    pos = at
    count = 0
    while pos < len(source) and source[pos] in "uUlL" and count < 3:
        pos += 1
        count += 1
    for _ in range(count):
        advance(1)
