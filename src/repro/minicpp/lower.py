"""AST -> IR lowering for MiniC++.

Lowering style mirrors CLANG at -O0: every local variable (including
parameters and ``this``) gets an ``alloca``; mem2reg promotes them later.
Class-typed expressions are represented by their *address* (C++ lvalue
semantics); small-struct returns use a hidden sret pointer; struct
assignment copies field-by-field.

Virtual method calls emit ``vcall`` pseudo-instructions carrying the static
class and vtable slot; the devirtualization pass expands them (section 3.2
of the paper).  Object construction stores the vtable *global symbol
address* into ``__vptr`` — the loader materializes vtables in the shared
region.
"""

from __future__ import annotations

import struct
from typing import Optional

from .. import ir
from ..ir import IRBuilder, add_phi_incoming
from ..ir.intrinsics import ALL_INTRINSICS, MATH_INTRINSICS
from ..ir.types import (
    BOOL,
    F32,
    F64,
    FloatType,
    FunctionType,
    I8,
    I32,
    I64,
    IntType,
    PointerType,
    StructType,
    Type,
    U32,
    U64,
    VOID,
    VoidType,
    ptr,
)
from . import ast
from .sema import (
    ClassInfo,
    FreeFunctionInfo,
    MethodInfo,
    PRIMITIVES,
    Sema,
    SemaError,
    VPTR_FIELD,
)

BUILTIN_MATH = {
    # C math library names -> (intrinsic key base, float bits)
    "sqrtf": ("sqrt", 32), "sqrt": ("sqrt", 64),
    "fabsf": ("fabs", 32), "fabs": ("fabs", 64),
    "floorf": ("floor", 32), "floor": ("floor", 64),
    "ceilf": ("ceil", 32), "ceil": ("ceil", 64),
    "expf": ("exp", 32), "exp": ("exp", 64),
    "logf": ("log", 32), "log": ("log", 64),
    "sinf": ("sin", 32), "sin": ("sin", 64),
    "cosf": ("cos", 32), "cos": ("cos", 64),
    "tanf": ("tan", 32), "tan": ("tan", 64),
    "powf": ("pow", 32), "pow": ("pow", 64),
    "fminf": ("fmin", 32), "fmin": ("fmin", 64),
    "fmaxf": ("fmax", 32), "fmax": ("fmax", 64),
    "rsqrtf": ("rsqrt", 32),
    "atan2f": ("atan2", 32), "atan2": ("atan2", 64),
}

BUILTIN_ATOMICS = {
    "atomic_add": "atomic.add.i32",
    "atomic_min": "atomic.min.i32",
    "atomic_max": "atomic.max.i32",
    "atomic_cas": "atomic.cas.i32",
    "atomic_add_float": "atomic.add.f32",
}


class LowerError(Exception):
    pass


class UnitLowerer:
    """Lowers every concrete function/method of a translation unit."""

    def __init__(self, sema: Sema, module: Optional[ir.Module] = None):
        self.sema = sema
        self.module = module or ir.Module("minicpp")
        self._pending: list = []

    def lower_unit(self) -> ir.Module:
        # Globals first so function bodies can reference them.
        for qualified, gdecl in self.sema.globals.items():
            gtype = self.sema.resolve_type(gdecl.type, namespace=gdecl.namespace)
            gvar = ir.GlobalVariable(qualified.replace("::", "."), gtype)
            if gdecl.init is not None:
                gvar.initializer = _const_initializer(gdecl.init)
            self.module.add_global(gvar)

        for info in list(self.sema.classes.values()):
            self._declare_class(info)
        for overloads in list(self.sema.functions.values()):
            for fn_info in overloads:
                self._declare_free(fn_info)

        # Lower bodies (the worklist grows as templates instantiate).
        progress = True
        while progress:
            progress = False
            for info in list(self.sema.classes.values()):
                if not getattr(info, "_declared", False):
                    self._declare_class(info)
                    progress = True
            for overloads in list(self.sema.functions.values()):
                for fn_info in overloads:
                    if fn_info.ir_function is None:
                        self._declare_free(fn_info)
                        progress = True
            while self._pending:
                kind, payload = self._pending.pop()
                if kind == "method":
                    self._lower_method_body(payload)
                else:
                    self._lower_free_body(payload)
                progress = True

        # vtables + hierarchy for the devirtualization pass.  Every
        # polymorphic class gets a vtable global in the shared region even
        # when no compiled constructor references it — host code may
        # construct instances directly (paper: vtables and RTTI move to the
        # shared region at load time).
        for info in self.sema.classes.values():
            if info.vtable:
                self.module.vtables[info.name] = [
                    m.ir_function for m in info.vtable if m.ir_function is not None
                ]
                name = f"__vtable.{info.struct_type.name}"
                if name not in self.module.globals:
                    gvar = ir.GlobalVariable(
                        name, ir.ArrayType(ir.I64, max(len(info.vtable), 1))
                    )
                    gvar.initializer = ("vtable", info.name)
                    self.module.add_global(gvar)
        self.module.class_hierarchy = self.sema.class_hierarchy()
        self.module.sema = self.sema
        return self.module

    # -- declaration ---------------------------------------------------------

    def _declare_class(self, info: ClassInfo) -> None:
        if getattr(info, "_declared", False):
            return
        info._declared = True
        self.module.structs.setdefault(info.struct_type.name, info.struct_type)
        for method in info.all_methods():
            if method.ir_function is not None or method.decl.body is None:
                continue
            fn = self._declare_signature(
                method.mangled,
                method.decl,
                this_type=ptr(info.struct_type),
                namespace=info.decl.namespace,
                bindings=info.template_bindings,
            )
            method.ir_function = fn
            fn.attributes["method_of"] = info.name
            self._pending.append(("method", (info, method)))
        for index, ctor in enumerate(info.constructors):
            mangled = f"{info.struct_type.name}.ctor.{index}"
            if mangled in self.module.functions:
                continue
            decl = ast.FunctionDecl(
                line=ctor.line,
                name=f"ctor{index}",
                return_type=ast.TypeRef(name="void"),
                params=ctor.params,
                body=ctor.body,
            )
            fn = self._declare_signature(
                mangled,
                decl,
                this_type=ptr(info.struct_type),
                namespace=info.decl.namespace,
                bindings=info.template_bindings,
            )
            fn.attributes["constructor_of"] = info.name
            info_ctor = MethodInfo(owner=info, decl=decl, mangled=mangled)
            info_ctor.ir_function = fn
            info_ctor._ctor = ctor
            self._pending.append(("method", (info, info_ctor)))
            if not hasattr(info, "ctor_functions"):
                info.ctor_functions = []
            info.ctor_functions.append(fn)

    def _declare_free(self, fn_info: FreeFunctionInfo) -> None:
        if fn_info.ir_function is not None or fn_info.decl.body is None:
            return
        fn = self._declare_signature(
            fn_info.mangled,
            fn_info.decl,
            this_type=None,
            namespace=fn_info.decl.namespace,
            bindings={},
        )
        fn_info.ir_function = fn
        self._pending.append(("free", fn_info))

    def _declare_signature(
        self, mangled, decl: ast.FunctionDecl, this_type, namespace, bindings
    ) -> ir.Function:
        if mangled in self.module.functions:
            return self.module.functions[mangled]
        ret = self.sema.resolve_type(decl.return_type, bindings, namespace)
        params: list[Type] = []
        names: list[str] = []
        sret = isinstance(ret, StructType)
        if sret:
            params.append(ptr(ret))
            names.append("sret")
            ret = VOID
        if this_type is not None:
            params.append(this_type)
            names.append("this")
        for param in decl.params:
            ptype = self.sema.resolve_type(param.type, bindings, namespace)
            if isinstance(ptype, StructType):
                ptype = ptr(ptype)  # byval: caller passes a copy's address
            params.append(ptype)
            names.append(param.name)
        fn = ir.Function(mangled, FunctionType(ret, tuple(params)), names)
        fn.attributes["sret"] = sret
        self.module.add_function(fn)
        return fn

    # -- bodies -----------------------------------------------------------------

    def _lower_method_body(self, payload) -> None:
        info, method = payload
        fn = method.ir_function
        if fn.blocks:
            return
        lowerer = FunctionLowerer(
            self,
            fn,
            method.decl,
            this_class=info,
            namespace=info.decl.namespace,
            bindings=info.template_bindings,
        )
        ctor = getattr(method, "_ctor", None)
        lowerer.lower(ctor_initializers=ctor.initializers if ctor else None)

    def _lower_free_body(self, fn_info: FreeFunctionInfo) -> None:
        fn = fn_info.ir_function
        if fn.blocks:
            return
        lowerer = FunctionLowerer(
            self,
            fn,
            fn_info.decl,
            this_class=None,
            namespace=fn_info.decl.namespace,
            bindings={},
        )
        lowerer.lower()

    # -- on-demand method/function lowering for call sites ------------------------

    def require_method(self, info: ClassInfo, method: MethodInfo) -> ir.Function:
        self._declare_class(info)
        if method.ir_function is None:
            raise LowerError(
                f"method {method.mangled} has no body to lower"
            )
        return method.ir_function

    def require_free(self, fn_info: FreeFunctionInfo) -> ir.Function:
        self._declare_free(fn_info)
        if fn_info.ir_function is None:
            raise LowerError(f"function {fn_info.qualified} has no body")
        return fn_info.ir_function


class _Local:
    __slots__ = ("alloca", "type", "is_reference")

    def __init__(self, alloca, type_, is_reference: bool = False):
        self.alloca = alloca
        self.type = type_
        self.is_reference = is_reference


class FunctionLowerer:
    def __init__(
        self,
        unit: UnitLowerer,
        fn: ir.Function,
        decl: ast.FunctionDecl,
        this_class: Optional[ClassInfo],
        namespace: tuple[str, ...],
        bindings: dict[str, Type],
    ):
        self.unit = unit
        self.sema = unit.sema
        self.module = unit.module
        self.fn = fn
        self.decl = decl
        self.this_class = this_class
        self.namespace = namespace
        self.bindings = bindings
        self.builder = IRBuilder()
        self.locals: dict[str, _Local] = {}
        self.loop_stack: list[tuple] = []  # (continue_block, break_block)
        self.sret_arg = None
        self.ret_type = self.sema.resolve_type(decl.return_type, bindings, namespace)

    # -- driver ---------------------------------------------------------------

    def lower(self, ctor_initializers=None) -> None:
        entry = self.fn.new_block("entry")
        self.builder.position_at_end(entry)
        # Prologue (argument spills, vtable install) is charged to the
        # declaration line; statements re-stamp as they lower.
        self.builder.set_loc(self.decl.line, self.decl.col)
        self.fn.attributes["source_locs"] = True
        arg_iter = iter(self.fn.args)
        if self.fn.attributes.get("sret"):
            self.sret_arg = next(arg_iter)
        if self.this_class is not None:
            this_arg = next(arg_iter)
            slot = self.builder.alloca(this_arg.type, "this.addr")
            self.builder.store(this_arg, slot)
            self.locals["this"] = _Local(slot, this_arg.type)
        for param, arg in zip(self.decl.params, arg_iter):
            slot = self.builder.alloca(arg.type, f"{param.name}.addr")
            self.builder.store(arg, slot)
            self.locals[param.name] = _Local(slot, arg.type)
            if param.type.is_reference:
                self.locals[param.name].is_reference = True

        if ctor_initializers is not None:
            self._lower_ctor_preamble(ctor_initializers)

        self.lower_block(self.decl.body)
        if self.builder.block.terminator is None:
            if isinstance(self.fn.return_type, VoidType):
                self.builder.ret()
            else:
                self.builder.ret(_zero(self.fn.return_type))

    def _lower_ctor_preamble(self, initializers) -> None:
        info = self.this_class
        this_value, _ = self.rvalue_name_this()
        # Install the vtable pointer first, as a real constructor would.
        if info.polymorphic:
            gvar = self._vtable_global(info)
            addr = self.builder.gep(
                this_value, ptr(ptr(I64)),
                offset=info.find_field(VPTR_FIELD)[0],
                name="vptr.slot",
            )
            self.builder.store(gvar, addr)
        for member, args in initializers:
            found = info.find_field(member)
            if found is None:
                raise LowerError(
                    f"constructor initializes unknown member {member} "
                    f"of {info.name}"
                )
            offset, ftype = found
            if isinstance(ftype, StructType):
                raise LowerError(
                    "constructor member-initializers for embedded structs "
                    "are not supported; assign fields in the body"
                )
            if len(args) != 1:
                raise LowerError(f"initializer for {member} takes one value")
            value, vtype = self.rvalue(args[0])
            value = self.convert(value, vtype, ftype)
            addr = self.builder.gep(
                this_value, ptr(ftype), offset=offset, name=f"{member}.addr"
            )
            self.builder.store(value, addr)

    def rvalue_name_this(self):
        local = self.locals["this"]
        return self.builder.load(local.alloca, "this"), local.type

    def _vtable_global(self, info: ClassInfo) -> ir.GlobalVariable:
        name = f"__vtable.{info.struct_type.name}"
        gvar = self.module.globals.get(name)
        if gvar is None:
            slots = len(info.vtable)
            gvar = ir.GlobalVariable(name, ir.ArrayType(I64, max(slots, 1)))
            gvar.initializer = ("vtable", info.name)
            self.module.add_global(gvar)
        return gvar

    # -- statements ---------------------------------------------------------------

    def lower_block(self, block: ast.Block) -> None:
        saved = dict(self.locals)
        for stmt in block.statements:
            self.lower_stmt(stmt)
            if self.builder.block.terminator is not None:
                break  # dead code after return/break/continue
        self.locals = saved

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if stmt.line:
            self.builder.set_loc(stmt.line, stmt.col)
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr_any(stmt.expr)
        elif isinstance(stmt, ast.VarDecl):
            self.lower_vardecl(stmt)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self.lower_dowhile(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self.lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise LowerError(f"line {stmt.line}: break outside loop")
            self.builder.br(self.loop_stack[-1][1])
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise LowerError(f"line {stmt.line}: continue outside loop")
            self.builder.br(self.loop_stack[-1][0])
        else:
            raise LowerError(f"unhandled statement {type(stmt).__name__}")

    def lower_vardecl(self, stmt: ast.VarDecl) -> None:
        vtype = self.sema.resolve_type(stmt.type, self.bindings, self.namespace)
        if stmt.array_size is not None:
            from .sema import _const_int

            count = _const_int(stmt.array_size)
            vtype = ir.ArrayType(vtype, count)
        slot = self.builder.alloca(vtype, stmt.name)
        self.locals[stmt.name] = _Local(slot, vtype)
        if stmt.init is not None:
            if isinstance(vtype, StructType):
                # Class-typed expressions evaluate to an address (an lvalue
                # or an sret temporary from an operator/method call).
                src_addr, stype = self.rvalue(stmt.init)
                if stype != vtype:
                    raise LowerError(
                        f"line {stmt.line}: cannot initialize {vtype} from {stype}"
                    )
                self.emit_struct_copy(slot, src_addr, vtype)
            else:
                value, itype = self.rvalue(stmt.init)
                self.builder.store(self.convert(value, itype, vtype), slot)
        elif stmt.ctor_args is not None and isinstance(vtype, StructType):
            self.emit_constructor_call(slot, vtype, stmt.ctor_args, stmt.line)

    def lower_if(self, stmt: ast.If) -> None:
        then_block = self.fn.new_block("if.then")
        else_block = self.fn.new_block("if.else") if stmt.otherwise else None
        join = self.fn.new_block("if.end")
        self.lower_condition(stmt.cond, then_block, else_block or join)
        self.builder.position_at_end(then_block)
        self.lower_stmt(stmt.then)
        if self.builder.block.terminator is None:
            self.builder.br(join)
        if else_block is not None:
            self.builder.position_at_end(else_block)
            self.lower_stmt(stmt.otherwise)
            if self.builder.block.terminator is None:
                self.builder.br(join)
        self.builder.position_at_end(join)

    def lower_while(self, stmt: ast.While) -> None:
        header = self.fn.new_block("while.cond")
        body = self.fn.new_block("while.body")
        exit_block = self.fn.new_block("while.end")
        self.builder.br(header)
        self.builder.position_at_end(header)
        self.lower_condition(stmt.cond, body, exit_block)
        self.builder.position_at_end(body)
        self.loop_stack.append((header, exit_block))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(header)
        self.builder.position_at_end(exit_block)

    def lower_dowhile(self, stmt: ast.DoWhile) -> None:
        body = self.fn.new_block("do.body")
        cond_block = self.fn.new_block("do.cond")
        exit_block = self.fn.new_block("do.end")
        self.builder.br(body)
        self.builder.position_at_end(body)
        self.loop_stack.append((cond_block, exit_block))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(cond_block)
        self.builder.position_at_end(cond_block)
        self.lower_condition(stmt.cond, body, exit_block)
        self.builder.position_at_end(exit_block)

    def lower_for(self, stmt: ast.For) -> None:
        saved = dict(self.locals)
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        header = self.fn.new_block("for.cond")
        body = self.fn.new_block("for.body")
        step_block = self.fn.new_block("for.step")
        exit_block = self.fn.new_block("for.end")
        self.builder.br(header)
        self.builder.position_at_end(header)
        if stmt.cond is not None:
            self.lower_condition(stmt.cond, body, exit_block)
        else:
            self.builder.br(body)
        self.builder.position_at_end(body)
        self.loop_stack.append((step_block, exit_block))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        if self.builder.block.terminator is None:
            self.builder.br(step_block)
        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self.lower_expr_any(stmt.step)
        self.builder.br(header)
        self.builder.position_at_end(exit_block)
        self.locals = saved

    def lower_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            self.builder.ret()
            return
        if self.sret_arg is not None:
            src_addr, stype = self.lvalue(stmt.value)
            self.emit_struct_copy(self.sret_arg, src_addr, stype)
            self.builder.ret()
            return
        value, vtype = self.rvalue(stmt.value)
        self.builder.ret(self.convert(value, vtype, self.fn.return_type))

    def lower_condition(self, expr: ast.Expr, true_block, false_block) -> None:
        """Lower a boolean context with short-circuit && / ||."""
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            mid = self.fn.new_block("and.rhs")
            self.lower_condition(expr.lhs, mid, false_block)
            self.builder.position_at_end(mid)
            self.lower_condition(expr.rhs, true_block, false_block)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            mid = self.fn.new_block("or.rhs")
            self.lower_condition(expr.lhs, true_block, mid)
            self.builder.position_at_end(mid)
            self.lower_condition(expr.rhs, true_block, false_block)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.lower_condition(expr.operand, false_block, true_block)
            return
        value, vtype = self.rvalue(expr)
        cond = self.to_bool(value, vtype)
        self.builder.condbr(cond, true_block, false_block)

    # -- expressions -----------------------------------------------------------------

    def lower_expr_any(self, expr: ast.Expr) -> None:
        """Expression statement: evaluate for side effects."""
        self.rvalue_or_void(expr)

    def rvalue_or_void(self, expr: ast.Expr):
        result = self._lower_expr(expr, want_lvalue=False, allow_void=True)
        return result

    def rvalue(self, expr: ast.Expr):
        value, vtype = self._lower_expr(expr, want_lvalue=False, allow_void=False)
        return value, vtype

    def lvalue(self, expr: ast.Expr):
        """Returns (address, value_type)."""
        return self._lower_expr(expr, want_lvalue=True, allow_void=False)

    def _lower_expr(self, expr, want_lvalue: bool, allow_void: bool = False):
        method = getattr(self, f"_lower_{type(expr).__name__}", None)
        if method is None:
            raise LowerError(f"unhandled expression {type(expr).__name__}")
        # Charge instructions to the innermost expression being lowered;
        # restore the parent's location afterwards so an operator's own
        # instructions are stamped with the operator, not its last operand.
        saved = self.builder.loc
        if expr.line:
            self.builder.set_loc(expr.line, expr.col)
        try:
            result = method(expr, want_lvalue)
        finally:
            self.builder.loc = saved if saved is not None else self.builder.loc
        if result is None and not allow_void:
            raise LowerError(
                f"line {expr.line}: void value used in an expression"
            )
        return result

    # literals

    def _lower_IntLiteral(self, expr: ast.IntLiteral, want_lvalue):
        self._no_lvalue(want_lvalue, expr)
        return ir.const_int(expr.value, I32 if -(2**31) <= expr.value < 2**31 else I64), (
            I32 if -(2**31) <= expr.value < 2**31 else I64
        )

    def _lower_FloatLiteral(self, expr: ast.FloatLiteral, want_lvalue):
        self._no_lvalue(want_lvalue, expr)
        if expr.is_double:
            return ir.Constant(F64, expr.value), F64
        # An f32 literal denotes the nearest single-precision value; quantize
        # now so the register form matches what an f32 store/load round-trip
        # would produce.
        value = struct.unpack("f", struct.pack("f", expr.value))[0]
        return ir.Constant(F32, value), F32

    def _lower_BoolLiteral(self, expr, want_lvalue):
        self._no_lvalue(want_lvalue, expr)
        return ir.const_bool(expr.value), BOOL

    def _lower_CharLiteral(self, expr, want_lvalue):
        self._no_lvalue(want_lvalue, expr)
        return ir.const_int(expr.value, I8), I8

    def _lower_NullLiteral(self, expr, want_lvalue):
        self._no_lvalue(want_lvalue, expr)
        return ir.Constant(ptr(I8), 0), ptr(I8)

    def _lower_ThisExpr(self, expr, want_lvalue):
        if self.this_class is None:
            raise LowerError(f"line {expr.line}: 'this' outside a method")
        local = self.locals["this"]
        if want_lvalue:
            return local.alloca, local.type
        return self.builder.load(local.alloca, "this"), local.type

    def _lower_Name(self, expr: ast.Name, want_lvalue):
        simple = expr.simple
        if simple is not None and simple in self.locals:
            local = self.locals[simple]
            if getattr(local, "is_reference", False):
                # reference parameter: the slot holds a pointer to the value
                pointer = self.builder.load(local.alloca, simple)
                pointee = local.type.pointee
                if want_lvalue:
                    return pointer, pointee
                if isinstance(pointee, StructType):
                    return pointer, pointee
                return self.builder.load(pointer, simple), pointee
            if want_lvalue:
                return local.alloca, local.type
            if isinstance(local.type, StructType):
                return local.alloca, local.type
            if isinstance(local.type, ir.ArrayType):
                # arrays decay to element pointers
                decay = self.builder.gep(
                    local.alloca, ptr(local.type.element), name=f"{simple}.decay"
                )
                return decay, ptr(local.type.element)
            return self.builder.load(local.alloca, simple), local.type
        # implicit this->field
        if self.this_class is not None and simple is not None:
            found = self.this_class.find_field(simple)
            if found is not None:
                return self._member_through_this(simple, found, want_lvalue)
        # global variable
        qualified = self._lookup_global(expr)
        if qualified is not None:
            gvar, gtype = qualified
            if want_lvalue:
                return gvar, gtype
            if isinstance(gtype, StructType):
                return gvar, gtype
            return self.builder.load(gvar, str(expr)), gtype
        raise LowerError(f"line {expr.line}: unknown name {expr}")

    def _lookup_global(self, expr: ast.Name):
        name = str(expr)
        from .sema import _search_names

        for qualified in _search_names(self.namespace, name):
            gdecl = self.sema.globals.get(qualified)
            if gdecl is not None:
                gvar = self.module.globals[qualified.replace("::", ".")]
                return gvar, gvar.value_type
        return None

    def _member_through_this(self, name, found, want_lvalue):
        offset, ftype = found
        this_value, this_type = self.rvalue_name_this()
        if isinstance(ftype, ir.ArrayType):
            addr = self.builder.gep(
                this_value, ptr(ftype.element), offset=offset, name=f"{name}.addr"
            )
            return addr, ptr(ftype.element)
        addr = self.builder.gep(this_value, ptr(ftype), offset=offset, name=f"{name}.addr")
        if want_lvalue or isinstance(ftype, StructType):
            return addr, ftype
        return self.builder.load(addr, name), ftype

    # unary / binary

    def _lower_Unary(self, expr: ast.Unary, want_lvalue):
        op = expr.op
        if op == "*":
            pointer, ptype = self.rvalue(expr.operand)
            if not isinstance(ptype, PointerType):
                raise LowerError(f"line {expr.line}: dereference of non-pointer")
            pointee = ptype.pointee
            if want_lvalue or isinstance(pointee, StructType):
                return pointer, pointee
            return self.builder.load(pointer, "deref"), pointee
        if op == "&":
            addr, vtype = self.lvalue(expr.operand)
            self._no_lvalue(want_lvalue, expr)
            return addr, ptr(vtype)
        if op in ("++pre", "--pre", "post++", "post--"):
            addr, vtype = self.lvalue(expr.operand)
            old = self.builder.load(addr, "crement.old")
            one = (
                ir.Constant(vtype, 1)
                if isinstance(vtype, IntType)
                else ir.Constant(I64, vtype.pointee.size())
                if isinstance(vtype, PointerType)
                else ir.Constant(vtype, 1.0)
            )
            binop = "add" if "++" in op else "sub"
            if isinstance(vtype, FloatType):
                binop = "f" + binop
            new = self.builder.binop(binop, old, one, "crement.new")
            self.builder.store(new, addr)
            self._no_lvalue(want_lvalue, expr)
            return (old if op.startswith("post") else new), vtype
        self._no_lvalue(want_lvalue, expr)
        value, vtype = self.rvalue(expr.operand)
        if op == "-":
            zero = _zero(vtype)
            sub_op = "fsub" if isinstance(vtype, FloatType) else "sub"
            return self.builder.binop(sub_op, zero, value, "neg"), vtype
        if op == "!":
            cond = self.to_bool(value, vtype)
            return self.builder.binop("xor", cond, ir.const_bool(True), "not"), BOOL
        if op == "~":
            return (
                self.builder.binop("xor", value, ir.Constant(vtype, -1 & ((1 << vtype.bits) - 1)), "bnot"),
                vtype,
            )
        raise LowerError(f"unhandled unary {op}")

    _CMP_PREDS = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
    _ARITH = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem"}
    _BITWISE = {"&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr"}

    def _lower_Binary(self, expr: ast.Binary, want_lvalue):
        self._no_lvalue(want_lvalue, expr)
        op = expr.op
        if op in ("&&", "||"):
            return self._lower_logical(expr)

        # operator overloading on class operands
        lhs_type = self._static_type(expr.lhs)
        if isinstance(lhs_type, StructType):
            return self._lower_overloaded_binary(expr, lhs_type)

        lhs, ltype = self.rvalue(expr.lhs)
        rhs, rtype = self.rvalue(expr.rhs)

        # pointer arithmetic
        if isinstance(ltype, PointerType) and op in ("+", "-") and isinstance(rtype, IntType):
            scale = ltype.pointee.size()
            index = rhs
            if op == "-":
                index = self.builder.binop("sub", _zero(rtype), rhs, "p.negidx")
            return (
                self.builder.gep(lhs, ltype, indices=[(index, scale)], name="p.arith"),
                ltype,
            )
        if isinstance(ltype, PointerType) and isinstance(rtype, PointerType):
            if op in self._CMP_PREDS:
                li = self.builder.cast("ptrtoint", lhs, U64, "p.l")
                ri = self.builder.cast("ptrtoint", rhs, U64, "p.r")
                pred = self._CMP_PREDS[op]
                pred = pred if pred in ("eq", "ne") else "u" + pred
                return self.builder.icmp(pred, li, ri, "pcmp"), BOOL
            if op == "-":
                li = self.builder.cast("ptrtoint", lhs, I64, "p.l")
                ri = self.builder.cast("ptrtoint", rhs, I64, "p.r")
                diff = self.builder.binop("sub", li, ri, "p.diff")
                return (
                    self.builder.binop(
                        "sdiv", diff, ir.const_int(ltype.pointee.size(), I64), "p.dist"
                    ),
                    I64,
                )

        common = self.common_type(ltype, rtype, expr)
        lhs = self.convert(lhs, ltype, common)
        rhs = self.convert(rhs, rtype, common)

        if op in self._CMP_PREDS:
            pred = self._CMP_PREDS[op]
            if isinstance(common, FloatType):
                return self.builder.fcmp("o" + (pred if pred not in ("lt","le","gt","ge") else pred), lhs, rhs, "fcmp"), BOOL
            if pred in ("eq", "ne"):
                return self.builder.icmp(pred, lhs, rhs, "icmp"), BOOL
            prefix = "u" if isinstance(common, IntType) and not common.signed else "s"
            return self.builder.icmp(prefix + pred, lhs, rhs, "icmp"), BOOL
        if op in self._ARITH:
            base = self._ARITH[op]
            if isinstance(common, FloatType):
                if base == "rem":
                    base = "rem"
                return self.builder.binop("f" + base, lhs, rhs, "arith"), common
            if base == "div":
                base = "sdiv" if common.signed else "udiv"
            elif base == "rem":
                base = "srem" if common.signed else "urem"
            return self.builder.binop(base, lhs, rhs, "arith"), common
        if op in self._BITWISE:
            base = self._BITWISE[op]
            if base == "shr":
                base = "ashr" if common.signed else "lshr"
            return self.builder.binop(base, lhs, rhs, "bits"), common
        raise LowerError(f"unhandled binary {op}")

    def _lower_logical(self, expr: ast.Binary):
        true_block = self.fn.new_block("log.true")
        false_block = self.fn.new_block("log.false")
        join = self.fn.new_block("log.join")
        self.lower_condition(expr, true_block, false_block)
        self.builder.position_at_end(true_block)
        self.builder.br(join)
        self.builder.position_at_end(false_block)
        self.builder.br(join)
        self.builder.position_at_end(join)
        phi = self.builder.phi(BOOL, "log.val")
        add_phi_incoming(phi, ir.const_bool(True), true_block)
        add_phi_incoming(phi, ir.const_bool(False), false_block)
        return phi, BOOL

    def _lower_overloaded_binary(self, expr: ast.Binary, lhs_type: StructType):
        info = self._class_of(lhs_type, expr.line)
        method_name = f"operator{expr.op}"
        candidates = info.find_methods(method_name)
        if not candidates:
            raise LowerError(
                f"line {expr.line}: no {method_name} on class {info.name}"
            )
        return self._emit_method_call(
            expr, info, candidates, receiver_expr=expr.lhs, args=[expr.rhs],
            method_name=method_name, force_direct=False,
        )

    def _lower_Assign(self, expr: ast.Assign, want_lvalue):
        target_type = self._static_type(expr.target)
        if isinstance(target_type, StructType) and expr.op == "=":
            info = self._class_of(target_type, expr.line)
            overloads = info.find_methods("operator=") if info else []
            if overloads:
                return self._emit_method_call(
                    expr, info, overloads, receiver_expr=expr.target,
                    args=[expr.value], method_name="operator=", force_direct=False,
                )
            dst, dtype = self.lvalue(expr.target)
            src, stype = self.rvalue(expr.value)
            if stype != dtype:
                raise LowerError(f"line {expr.line}: struct assignment type mismatch")
            self.emit_struct_copy(dst, src, dtype)
            return dst, dtype

        addr, vtype = self.lvalue(expr.target)
        if expr.op == "=":
            value, rtype = self.rvalue(expr.value)
            converted = self.convert(value, rtype, vtype)
            self.builder.store(converted, addr)
            result = converted
        else:
            binary_op = expr.op[:-1]  # "+=" -> "+"
            synthetic = ast.Binary(
                line=expr.line, op=binary_op, lhs=expr.target, rhs=expr.value
            )
            value, rtype = self.rvalue(synthetic)
            converted = self.convert(value, rtype, vtype)
            self.builder.store(converted, addr)
            result = converted
        if want_lvalue:
            return addr, vtype
        return result, vtype

    def _lower_Conditional(self, expr: ast.Conditional, want_lvalue):
        self._no_lvalue(want_lvalue, expr)
        then_block = self.fn.new_block("sel.then")
        else_block = self.fn.new_block("sel.else")
        join = self.fn.new_block("sel.join")
        self.lower_condition(expr.cond, then_block, else_block)
        self.builder.position_at_end(then_block)
        tval, ttype = self.rvalue(expr.then)
        then_end = self.builder.block
        self.builder.position_at_end(else_block)
        fval, ftype = self.rvalue(expr.otherwise)
        else_end = self.builder.block
        common = self.common_type(ttype, ftype, expr)
        self.builder.position_at_end(then_end)
        tval = self.convert(tval, ttype, common)
        self.builder.br(join)
        self.builder.position_at_end(else_end)
        fval = self.convert(fval, ftype, common)
        self.builder.br(join)
        self.builder.position_at_end(join)
        phi = self.builder.phi(common, "sel.val")
        add_phi_incoming(phi, tval, then_end)
        add_phi_incoming(phi, fval, else_end)
        return phi, common

    # member access / indexing

    def _lower_Member(self, expr: ast.Member, want_lvalue):
        if expr.arrow:
            base, btype = self.rvalue(expr.receiver)
            if not isinstance(btype, PointerType) or not isinstance(
                btype.pointee, StructType
            ):
                raise LowerError(f"line {expr.line}: -> on non-class-pointer")
            struct = btype.pointee
        else:
            base, struct = self.lvalue(expr.receiver)
            if not isinstance(struct, StructType):
                raise LowerError(f"line {expr.line}: . on non-class value")
        info = self._class_of(struct, expr.line)
        found = info.find_field(expr.member) if info else (
            (struct.field_named(expr.member).offset, struct.field_named(expr.member).type)
            if struct.has_field(expr.member)
            else None
        )
        if found is None:
            raise LowerError(
                f"line {expr.line}: class {struct.name} has no field {expr.member}"
            )
        offset, ftype = found
        if isinstance(ftype, ir.ArrayType):
            addr = self.builder.gep(
                base, ptr(ftype.element), offset=offset, name=f"{expr.member}.addr"
            )
            return addr, ptr(ftype.element)
        addr = self.builder.gep(base, ptr(ftype), offset=offset, name=f"{expr.member}.addr")
        if want_lvalue or isinstance(ftype, StructType):
            return addr, ftype
        return self.builder.load(addr, expr.member), ftype

    def _lower_Index(self, expr: ast.Index, want_lvalue):
        base_type = self._static_type(expr.base)
        if isinstance(base_type, StructType):
            info = self._class_of(base_type, expr.line)
            overloads = info.find_methods("operator[]") if info else []
            if overloads:
                return self._emit_method_call(
                    expr, info, overloads, receiver_expr=expr.base,
                    args=[expr.index], method_name="operator[]",
                    force_direct=False, want_lvalue=want_lvalue,
                )
        base, btype = self.rvalue(expr.base)
        if not isinstance(btype, PointerType):
            raise LowerError(f"line {expr.line}: subscript of non-pointer")
        index, itype = self.rvalue(expr.index)
        index = self.convert(index, itype, I64)
        elem = btype.pointee
        addr = self.builder.gep(
            base, ptr(elem), indices=[(index, elem.size())], name="elem.addr"
        )
        if want_lvalue or isinstance(elem, StructType):
            return addr, elem
        return self.builder.load(addr, "elem"), elem

    # calls

    def _lower_Call(self, expr: ast.Call, want_lvalue):
        self._no_lvalue(want_lvalue, expr)
        name = str(expr.name)
        simple = expr.name.simple

        # A local variable that is callable (functor) — obj(args).
        if simple is not None and simple in self.locals:
            local = self.locals[simple]
            base = local.type
            if isinstance(base, StructType):
                return self._lower_functor_call(expr, simple)
            if isinstance(base, PointerType) and isinstance(base.pointee, StructType):
                raise LowerError(
                    f"line {expr.line}: call through object pointer requires "
                    f"(*p)(...) or p->operator()(...)"
                )

        if simple in BUILTIN_MATH:
            return self._lower_math_builtin(expr, simple)
        if simple in BUILTIN_ATOMICS:
            return self._lower_atomic_builtin(expr, simple)
        if simple in ("min", "max"):
            return self._lower_minmax(expr, simple)
        if simple == "abs":
            value, vtype = self.rvalue(expr.args[0])
            if isinstance(vtype, FloatType):
                intr = MATH_INTRINSICS[f"math.fabs.f{vtype.bits}"]
                return self.builder.call(intr, [value], "abs"), vtype
            zero = _zero(vtype)
            neg = self.builder.binop("sub", zero, value, "abs.neg")
            cond = self.builder.icmp("slt", value, zero, "abs.lt")
            return self.builder.select(cond, neg, value, "abs"), vtype

        # Static method call Class::method(...)
        if len(expr.name.parts) == 2:
            cls_info = self.sema.lookup_class(expr.name.parts[0], self.namespace)
            if cls_info is not None:
                overloads = cls_info.find_methods(expr.name.parts[1])
                statics = [m for m in overloads if m.decl.is_static]
                if statics:
                    return self._emit_static_call(expr, cls_info, statics)

        # Method of the current class, called unqualified.
        if self.this_class is not None and simple is not None:
            overloads = self.this_class.find_methods(simple)
            if overloads:
                return self._emit_method_call(
                    expr, self.this_class, overloads, receiver_expr=None,
                    args=expr.args, method_name=simple, force_direct=False,
                )

        # Free function.
        arg_pairs = [self.rvalue(a) for a in expr.args]
        arg_types = [t for _, t in arg_pairs]
        overloads = self.sema.find_free_functions(name, self.namespace)
        if overloads:
            chosen = self.sema.resolve_overload(
                overloads,
                arg_types,
                lambda fi: self._free_param_types(fi),
            )
            if chosen is None:
                raise LowerError(
                    f"line {expr.line}: no matching overload of {name} for "
                    f"{[str(t) for t in arg_types]}"
                )
            fn = self.unit.require_free(chosen)
            return self._finish_direct_call(fn, chosen.decl, arg_pairs, expr.line)
        templates = self.sema.find_function_templates(name, self.namespace)
        if templates:
            chosen_t, bindings = self._deduce_template(templates, arg_types, expr)
            inst = self.sema.instantiate_function_template(chosen_t, bindings)
            fn = self.unit.require_free(inst)
            return self._finish_direct_call(fn, inst.decl, arg_pairs, expr.line)
        raise LowerError(f"line {expr.line}: unknown function {name}")

    def _free_param_types(self, fn_info: FreeFunctionInfo) -> list[Type]:
        return [
            self.sema.resolve_type(p.type, {}, fn_info.decl.namespace)
            for p in fn_info.decl.params
        ]

    def _deduce_template(self, templates, arg_types, expr):
        for template in templates:
            if len(template.params) != len(arg_types):
                continue
            bindings: dict[str, Type] = {}
            ok = True
            for param, have in zip(template.params, arg_types):
                want = param.type
                stripped = have
                depth = want.pointer_depth + (1 if want.is_reference else 0)
                for _ in range(depth):
                    if isinstance(stripped, PointerType):
                        stripped = stripped.pointee
                    else:
                        ok = False
                        break
                if not ok:
                    break
                if want.name in template.template_params:
                    existing = bindings.get(want.name)
                    if existing is not None and existing != stripped:
                        ok = False
                        break
                    bindings[want.name] = stripped
            if ok and len(bindings) == len(template.template_params):
                return template, bindings
        raise LowerError(
            f"line {expr.line}: cannot deduce template arguments for call"
        )

    def _lower_math_builtin(self, expr, simple):
        base, bits = BUILTIN_MATH[simple]
        intr = MATH_INTRINSICS[f"math.{base}.f{bits}"]
        ftype = F32 if bits == 32 else F64
        args = []
        for arg in expr.args:
            value, vtype = self.rvalue(arg)
            args.append(self.convert(value, vtype, ftype))
        return self.builder.call(intr, args, simple), ftype

    def _lower_atomic_builtin(self, expr, simple):
        intr = ALL_INTRINSICS[BUILTIN_ATOMICS[simple]]
        pointer, ptype = self.rvalue(expr.args[0])
        rest = []
        for arg, want in zip(expr.args[1:], intr.ftype.params[1:]):
            value, vtype = self.rvalue(arg)
            rest.append(self.convert(value, vtype, want))
        return self.builder.call(intr, [pointer, *rest], simple), intr.return_type

    def _lower_minmax(self, expr, simple):
        lhs, ltype = self.rvalue(expr.args[0])
        rhs, rtype = self.rvalue(expr.args[1])
        common = self.common_type(ltype, rtype, expr)
        lhs = self.convert(lhs, ltype, common)
        rhs = self.convert(rhs, rtype, common)
        if isinstance(common, FloatType):
            intr = MATH_INTRINSICS[f"math.f{simple}.f{common.bits}"]
            return self.builder.call(intr, [lhs, rhs], simple), common
        pred = ("slt" if common.signed else "ult") if simple == "min" else (
            "sgt" if common.signed else "ugt"
        )
        cond = self.builder.icmp(pred, lhs, rhs, f"{simple}.cmp")
        return self.builder.select(cond, lhs, rhs, simple), common

    def _lower_MethodCall(self, expr: ast.MethodCall, want_lvalue):
        if expr.arrow:
            receiver, rtype = self.rvalue(expr.receiver)
            if not isinstance(rtype, PointerType) or not isinstance(
                rtype.pointee, StructType
            ):
                raise LowerError(f"line {expr.line}: -> call on non-class-pointer")
            struct = rtype.pointee
            recv_value = receiver
        else:
            recv_value, struct = self.lvalue(expr.receiver)
            if not isinstance(struct, StructType):
                raise LowerError(f"line {expr.line}: . call on non-class value")
        info = self._class_of(struct, expr.line)
        if info is None:
            raise LowerError(f"line {expr.line}: unknown class {struct.name}")
        overloads = info.find_methods(expr.method)
        if not overloads:
            raise LowerError(
                f"line {expr.line}: class {info.name} has no method {expr.method}"
            )
        return self._emit_method_call(
            expr, info, overloads, receiver_expr=None, args=expr.args,
            method_name=expr.method, force_direct=False,
            receiver_value=(recv_value, info), want_lvalue=want_lvalue,
        )

    def _lower_CallOperator(self, expr: ast.CallOperator, want_lvalue):
        self._no_lvalue(want_lvalue, expr)
        recv_addr, struct = self.lvalue(expr.receiver)
        if not isinstance(struct, StructType):
            raise LowerError(f"line {expr.line}: call of non-functor")
        info = self._class_of(struct, expr.line)
        overloads = info.find_methods("operator()")
        if not overloads:
            raise LowerError(f"line {expr.line}: {info.name} has no operator()")
        return self._emit_method_call(
            expr, info, overloads, receiver_expr=None, args=expr.args,
            method_name="operator()", force_direct=False,
            receiver_value=(recv_addr, info),
        )

    def _lower_functor_call(self, expr: ast.Call, simple: str):
        local = self.locals[simple]
        info = self._class_of(local.type, expr.line)
        overloads = info.find_methods("operator()")
        if not overloads:
            raise LowerError(f"line {expr.line}: {info.name} has no operator()")
        return self._emit_method_call(
            expr, info, overloads, receiver_expr=None, args=expr.args,
            method_name="operator()", force_direct=False,
            receiver_value=(local.alloca, info),
        )

    def _emit_static_call(self, expr, info: ClassInfo, overloads):
        arg_pairs = [self.rvalue(a) for a in expr.args]
        arg_types = [t for _, t in arg_pairs]
        chosen = self.sema.resolve_overload(
            overloads, arg_types, lambda m: self._method_param_types(info, m)
        )
        if chosen is None:
            raise LowerError(f"line {expr.line}: no matching static overload")
        fn = self.unit.require_method(info, chosen)
        return self._finish_direct_call(fn, chosen.decl, arg_pairs, expr.line, this_value=None)

    def _method_param_types(self, info: ClassInfo, method: MethodInfo) -> list[Type]:
        return [
            self.sema.resolve_type(
                p.type, info.template_bindings, info.decl.namespace
            )
            for p in method.decl.params
        ]

    def _emit_method_call(
        self,
        expr,
        info: ClassInfo,
        overloads: list[MethodInfo],
        receiver_expr,
        args,
        method_name: str,
        force_direct: bool,
        receiver_value=None,
        want_lvalue: bool = False,
    ):
        if receiver_value is not None:
            recv, recv_info = receiver_value
        elif receiver_expr is not None:
            recv, struct = self.lvalue(receiver_expr)
            recv_info = self._class_of(struct, expr.line)
        else:
            recv, _ = self.rvalue_name_this()
            recv_info = self.this_class

        arg_pairs = [self.rvalue(a) for a in args]
        arg_types = [t for _, t in arg_pairs]
        chosen: MethodInfo = self.sema.resolve_overload(
            overloads, arg_types, lambda m: self._method_param_types(m.owner, m)
        )
        if chosen is None:
            raise LowerError(
                f"line {expr.line}: no matching overload of {method_name} on "
                f"{info.name} for {[str(t) for t in arg_types]}"
            )

        # ``this`` adjustment: the chosen method may live in a base class.
        owner = chosen.owner
        offset = recv_info.upcast_offset(owner) if recv_info else 0
        if offset is None:
            raise LowerError(
                f"line {expr.line}: {owner.name} is not a base of {recv_info.name}"
            )
        this_value = recv
        if offset:
            this_value = self.builder.gep(
                recv, ptr(owner.struct_type), offset=offset, name="this.adj"
            )

        if chosen.is_virtual and not force_direct:
            return self._finish_virtual_call(
                expr, recv_info, chosen, this_value, arg_pairs
            )
        fn = self.unit.require_method(owner, chosen)
        return self._finish_direct_call(
            fn, chosen.decl, arg_pairs, expr.line, this_value=this_value
        )

    def _finish_virtual_call(self, expr, recv_info, chosen: MethodInfo, this_value, arg_pairs):
        owner = chosen.owner
        ret = self.sema.resolve_type(
            chosen.decl.return_type, owner.template_bindings, owner.decl.namespace
        )
        if isinstance(ret, StructType):
            raise LowerError(
                f"line {expr.line}: virtual methods returning classes by value "
                "are not supported"
            )
        converted = []
        for (value, vtype), param in zip(arg_pairs, chosen.decl.params):
            want = self.sema.resolve_type(
                param.type, owner.template_bindings, owner.decl.namespace
            )
            if (
                isinstance(vtype, StructType)
                and isinstance(want, PointerType)
                and want.pointee == vtype
            ):
                # reference binding: a class value's representation IS its
                # address (same rule as _finish_direct_call)
                converted.append(value)
            else:
                converted.append(self.convert(value, vtype, want))
        # Dispatch class: the *static* receiver class — CHA explores its
        # subclasses (paper section 3.2).
        dispatch_info = recv_info or owner
        call = self.builder.vcall(
            this_value,
            dispatch_info,
            chosen.vtable_slot,
            ret,
            converted,
            name=f"v.{chosen.decl.name}",
        )
        return (call, ret) if not isinstance(ret, VoidType) else None

    def _finish_direct_call(self, fn: ir.Function, decl, arg_pairs, line, this_value="none"):
        converted: list[ir.Value] = []
        arg_index = 0
        sret_slot = None
        fn_params = list(fn.ftype.params)
        if fn.attributes.get("sret"):
            sret_type = fn_params[0].pointee
            sret_slot = self.builder.alloca(sret_type, "sret.tmp")
            converted.append(sret_slot)
            arg_index += 1
        if this_value != "none" and this_value is not None:
            converted.append(this_value)
            arg_index += 1
        elif this_value is None and len(fn_params) > arg_index and fn.args and fn.args[arg_index].name == "this":
            raise LowerError(f"line {line}: static call resolved to instance method")
        param_decls = list(decl.params) if decl is not None else []
        for pos, (value, vtype) in enumerate(arg_pairs):
            want = fn_params[arg_index]
            if isinstance(vtype, StructType):
                is_ref = pos < len(param_decls) and param_decls[pos].type.is_reference
                if is_ref:
                    # reference binding: pass the object's address directly
                    converted.append(value)
                else:
                    # byval: copy into a temp, pass its address
                    temp = self.builder.alloca(vtype, "byval.tmp")
                    self.emit_struct_copy(temp, value, vtype)
                    converted.append(temp)
            else:
                converted.append(self.convert(value, vtype, want))
            arg_index += 1
        call = self.builder.call(fn, converted, fn.name.split(".")[-1])
        if sret_slot is not None:
            return sret_slot, fn_params[0].pointee
        if isinstance(fn.return_type, VoidType):
            return None
        return call, fn.return_type

    # new / delete / casts / sizeof

    def _lower_NewExpr(self, expr: ast.NewExpr, want_lvalue):
        self._no_lvalue(want_lvalue, expr)
        base = self.sema.resolve_type(
            ast.TypeRef(
                line=expr.line,
                name=expr.type.name,
                template_args=expr.type.template_args,
                pointer_depth=expr.type.pointer_depth,
            ),
            self.bindings,
            self.namespace,
        )
        from ..ir.builder import make_intrinsic

        malloc = _malloc_intrinsic()
        if expr.array_size is not None:
            count, ctype = self.rvalue(expr.array_size)
            count = self.convert(count, ctype, I64)
            nbytes = self.builder.binop(
                "mul", count, ir.const_int(base.size(), I64), "new.bytes"
            )
            raw = self.builder.call(malloc, [nbytes], "new.arr")
            typed = self.builder.cast("bitcast", raw, ptr(base), "new.typed")
            return typed, ptr(base)
        raw = self.builder.call(malloc, [ir.const_int(base.size(), I64)], "new.obj")
        typed = self.builder.cast("bitcast", raw, ptr(base), "new.typed")
        if isinstance(base, StructType):
            info = self._class_of(base, expr.line)
            if info is not None and (info.constructors or info.polymorphic):
                self.emit_constructor_call(typed, base, expr.ctor_args, expr.line)
        return typed, ptr(base)

    def _lower_DeleteExpr(self, expr: ast.DeleteExpr, want_lvalue):
        pointer, ptype = self.rvalue(expr.operand)
        self.builder.call(_free_intrinsic(), [pointer], "")
        return None

    def _lower_Cast(self, expr: ast.Cast, want_lvalue):
        self._no_lvalue(want_lvalue, expr)
        value, vtype = self.rvalue(expr.operand)
        target = self.sema.resolve_type(expr.type, self.bindings, self.namespace)
        if isinstance(target, PointerType) and isinstance(vtype, PointerType):
            return self.builder.cast("bitcast", value, target, "cast"), target
        return self.convert(value, vtype, target, explicit=True), target

    def _lower_SizeofExpr(self, expr: ast.SizeofExpr, want_lvalue):
        self._no_lvalue(want_lvalue, expr)
        target = self.sema.resolve_type(expr.type, self.bindings, self.namespace)
        return ir.const_int(target.size(), U64), U64

    # -- helpers --------------------------------------------------------------------

    def emit_constructor_call(self, addr, struct: StructType, args, line) -> None:
        info = self._class_of(struct, line)
        if info is None:
            raise LowerError(f"line {line}: no class info for {struct.name}")
        self.unit._declare_class(info)
        ctor_fns = getattr(info, "ctor_functions", [])
        if not ctor_fns:
            if args:
                raise LowerError(f"line {line}: {info.name} has no constructor")
            if info.polymorphic:
                self._store_vptr(addr, info)
            return
        arg_pairs = [self.rvalue(a) for a in (args or [])]
        arg_types = [t for _, t in arg_pairs]
        matching = [
            (ctor, fn)
            for ctor, fn in zip(info.constructors, ctor_fns)
            if len(ctor.params) == len(arg_types)
        ]
        if not matching:
            raise LowerError(
                f"line {line}: no {len(arg_types)}-argument constructor on "
                f"{info.name}"
            )
        ctor, fn = matching[0]
        self._finish_direct_call(fn, None, arg_pairs, line, this_value=addr)

    def _store_vptr(self, addr, info: ClassInfo) -> None:
        gvar = self._vtable_global(info)
        slot = self.builder.gep(
            addr, ptr(ptr(I64)),
            offset=info.find_field(VPTR_FIELD)[0],
            name="vptr.slot",
        )
        self.builder.store(gvar, slot)

    def emit_struct_copy(self, dst, src, struct: StructType) -> None:
        """Field-wise copy (recursing into embedded structs/arrays)."""
        for field in struct.fields:
            ftype = field.type
            if isinstance(ftype, StructType):
                sub_dst = self.builder.gep(dst, ptr(ftype), offset=field.offset)
                sub_src = self.builder.gep(src, ptr(ftype), offset=field.offset)
                self.emit_struct_copy(sub_dst, sub_src, ftype)
                continue
            if isinstance(ftype, ir.ArrayType):
                for index in range(ftype.count):
                    off = field.offset + index * ftype.element.size()
                    s = self.builder.gep(src, ptr(ftype.element), offset=off)
                    d = self.builder.gep(dst, ptr(ftype.element), offset=off)
                    self.builder.store(self.builder.load(s), d)
                continue
            s = self.builder.gep(src, ptr(ftype), offset=field.offset)
            d = self.builder.gep(dst, ptr(ftype), offset=field.offset)
            self.builder.store(self.builder.load(s, field.name), d)

    def to_bool(self, value, vtype):
        if vtype == BOOL:
            return value
        if isinstance(vtype, IntType):
            return self.builder.icmp("ne", value, _zero(vtype), "tobool")
        if isinstance(vtype, FloatType):
            return self.builder.fcmp("one", value, _zero(vtype), "tobool")
        if isinstance(vtype, PointerType):
            as_int = self.builder.cast("ptrtoint", value, U64, "p.int")
            return self.builder.icmp("ne", as_int, ir.const_int(0, U64), "tobool")
        raise LowerError(f"cannot convert {vtype} to bool")

    def common_type(self, a: Type, b: Type, expr) -> Type:
        if a == b:
            return a
        if isinstance(a, FloatType) and isinstance(b, FloatType):
            return a if a.bits >= b.bits else b
        if isinstance(a, FloatType):
            return a
        if isinstance(b, FloatType):
            return b
        if isinstance(a, IntType) and isinstance(b, IntType):
            bits = max(a.bits, b.bits, 32)
            signed = a.signed and b.signed
            if bits == 32:
                return I32 if signed else U32
            return I64 if signed else U64
        if isinstance(a, PointerType) and isinstance(b, PointerType):
            return a
        if isinstance(a, PointerType) and isinstance(b, IntType):
            return a
        if isinstance(b, PointerType) and isinstance(a, IntType):
            return b
        raise LowerError(f"line {expr.line}: no common type of {a} and {b}")

    def convert(self, value, have: Type, want: Type, explicit: bool = False):
        if have == want:
            return value
        if isinstance(have, IntType) and isinstance(want, IntType):
            if want.bits > have.bits:
                op = "sext" if have.signed else "zext"
                return self.builder.cast(op, value, want, "conv")
            if want.bits < have.bits:
                return self.builder.cast("trunc", value, want, "conv")
            return self.builder.cast("bitcast", value, want, "conv")
        if isinstance(have, IntType) and isinstance(want, FloatType):
            op = "sitofp" if have.signed else "uitofp"
            return self.builder.cast(op, value, want, "conv")
        if isinstance(have, FloatType) and isinstance(want, IntType):
            return self.builder.cast("fptosi", value, want, "conv")
        if isinstance(have, FloatType) and isinstance(want, FloatType):
            op = "fpext" if want.bits > have.bits else "fptrunc"
            return self.builder.cast(op, value, want, "conv")
        if isinstance(have, PointerType) and isinstance(want, PointerType):
            hp, wp = have.pointee, want.pointee
            if isinstance(hp, StructType) and isinstance(wp, StructType):
                h_info = self.sema.class_of_struct(hp)
                w_info = self.sema.class_of_struct(wp)
                if h_info is not None and w_info is not None:
                    offset = h_info.upcast_offset(w_info)
                    if offset is not None:
                        if offset == 0:
                            return self.builder.cast("bitcast", value, want, "up")
                        return self.builder.gep(value, want, offset=offset, name="upcast")
                    # downcast (static_cast): offset in the other direction
                    offset = w_info.upcast_offset(h_info)
                    if offset is not None and explicit:
                        if offset == 0:
                            return self.builder.cast("bitcast", value, want, "down")
                        neg = self.builder.gep(value, want, offset=-offset, name="downcast")
                        return neg
            return self.builder.cast("bitcast", value, want, "pconv")
        if isinstance(have, PointerType) and isinstance(want, IntType):
            return self.builder.cast("ptrtoint", value, want, "conv")
        if isinstance(have, IntType) and isinstance(want, PointerType):
            return self.builder.cast("inttoptr", value, want, "conv")
        raise LowerError(f"cannot convert {have} to {want}")

    def _class_of(self, struct: StructType, line) -> Optional[ClassInfo]:
        for info in self.sema.classes.values():
            if info.struct_type is struct or info.struct_type == struct:
                return info
        return None

    def _static_type(self, expr: ast.Expr) -> Optional[Type]:
        """Cheap static type prediction to route overloaded operators.

        Returns the struct type for obviously class-typed expressions,
        otherwise None (scalar path).
        """
        if isinstance(expr, ast.Name) and expr.simple in self.locals:
            t = self.locals[expr.simple].type
            if getattr(self.locals[expr.simple], "is_reference", False):
                t = t.pointee
            return t if isinstance(t, StructType) else None
        if isinstance(expr, ast.Unary) and expr.op == "*":
            inner = self._static_pointer_type(expr.operand)
            if inner is not None and isinstance(inner.pointee, StructType):
                return inner.pointee
            return None
        if isinstance(expr, (ast.Member, ast.Index, ast.MethodCall, ast.CallOperator, ast.Binary, ast.Call)):
            t = self._predict_type(expr)
            return t if isinstance(t, StructType) else None
        return None

    def _static_pointer_type(self, expr) -> Optional[PointerType]:
        t = self._predict_type(expr)
        return t if isinstance(t, PointerType) else None

    def _predict_type(self, expr) -> Optional[Type]:
        """Best-effort type prediction without emitting code."""
        if isinstance(expr, ast.Name):
            if expr.simple in self.locals:
                local = self.locals[expr.simple]
                t = local.type
                if getattr(local, "is_reference", False):
                    t = t.pointee
                if isinstance(t, ir.ArrayType):
                    return ptr(t.element)
                return t
            if self.this_class is not None and expr.simple is not None:
                found = self.this_class.find_field(expr.simple)
                if found is not None:
                    t = found[1]
                    if isinstance(t, ir.ArrayType):
                        return ptr(t.element)
                    return t
            return None
        if isinstance(expr, ast.Member):
            recv = self._predict_type(expr.receiver)
            struct = None
            if expr.arrow and isinstance(recv, PointerType):
                struct = recv.pointee
            elif not expr.arrow and isinstance(recv, StructType):
                struct = recv
            if isinstance(struct, StructType):
                info = self._class_of(struct, expr.line)
                if info is not None:
                    found = info.find_field(expr.member)
                    if found:
                        t = found[1]
                        if isinstance(t, ir.ArrayType):
                            return ptr(t.element)
                        return t
            return None
        if isinstance(expr, ast.Index):
            base = self._predict_type(expr.base)
            if isinstance(base, PointerType):
                return base.pointee
            return None
        if isinstance(expr, ast.Unary) and expr.op == "*":
            base = self._predict_type(expr.operand)
            if isinstance(base, PointerType):
                return base.pointee
            return None
        if isinstance(expr, ast.Unary) and expr.op == "&":
            base = self._predict_type(expr.operand)
            return ptr(base) if base is not None else None
        if isinstance(expr, ast.ThisExpr) and self.this_class is not None:
            return ptr(self.this_class.struct_type)
        if isinstance(expr, (ast.MethodCall, ast.CallOperator, ast.Call)):
            return self._predict_call_type(expr)
        if isinstance(expr, ast.Binary):
            lt = self._predict_type(expr.lhs)
            if isinstance(lt, StructType):
                info = self._class_of(lt, expr.line)
                if info:
                    ms = info.find_methods(f"operator{expr.op}")
                    if ms:
                        return self.sema.resolve_type(
                            ms[0].decl.return_type,
                            ms[0].owner.template_bindings,
                            ms[0].owner.decl.namespace,
                        )
            return None
        if isinstance(expr, ast.Cast):
            try:
                return self.sema.resolve_type(expr.type, self.bindings, self.namespace)
            except SemaError:
                return None
        if isinstance(expr, ast.NewExpr):
            try:
                base = self.sema.resolve_type(
                    ast.TypeRef(name=expr.type.name, template_args=expr.type.template_args),
                    self.bindings,
                    self.namespace,
                )
                return ptr(base)
            except SemaError:
                return None
        return None

    def _predict_call_type(self, expr) -> Optional[Type]:
        info = None
        name = None
        if isinstance(expr, ast.MethodCall):
            recv = self._predict_type(expr.receiver)
            struct = recv.pointee if (expr.arrow and isinstance(recv, PointerType)) else recv
            if isinstance(struct, StructType):
                info = self._class_of(struct, expr.line)
                name = expr.method
        elif isinstance(expr, ast.CallOperator):
            recv = self._predict_type(expr.receiver)
            if isinstance(recv, StructType):
                info = self._class_of(recv, expr.line)
                name = "operator()"
        elif isinstance(expr, ast.Call):
            overloads = self.sema.find_free_functions(str(expr.name), self.namespace)
            if overloads:
                fi = overloads[0]
                return self.sema.resolve_type(
                    fi.decl.return_type, {}, fi.decl.namespace
                )
            return None
        if info is not None and name is not None:
            methods = info.find_methods(name)
            if methods:
                m = methods[0]
                return self.sema.resolve_type(
                    m.decl.return_type, m.owner.template_bindings, m.owner.decl.namespace
                )
        return None

    def _no_lvalue(self, want_lvalue: bool, expr) -> None:
        if want_lvalue:
            raise LowerError(
                f"line {expr.line}: expression is not assignable "
                f"({type(expr).__name__})"
            )


# -- module-level helpers ------------------------------------------------------------


_MALLOC = None
_FREE = None


def _malloc_intrinsic():
    global _MALLOC
    if _MALLOC is None:
        from ..ir.builder import make_intrinsic

        _MALLOC = make_intrinsic("svm.malloc", ptr(I8), [I64], side_effects=True)
    return _MALLOC


def _free_intrinsic():
    global _FREE
    if _FREE is None:
        from ..ir.builder import make_intrinsic

        _FREE = make_intrinsic("svm.free", VOID, [ptr(I8)], side_effects=True)
    return _FREE


def _zero(type_: Type):
    if isinstance(type_, FloatType):
        return ir.Constant(type_, 0.0)
    if isinstance(type_, PointerType):
        return ir.Constant(type_, 0)
    return ir.Constant(type_, 0)


def _const_initializer(expr: ast.Expr):
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.FloatLiteral):
        return expr.value
    if isinstance(expr, ast.BoolLiteral):
        return 1 if expr.value else 0
    if isinstance(expr, ast.Unary) and expr.op == "-":
        inner = _const_initializer(expr.operand)
        return -inner if inner is not None else None
    return None


def lower_translation_unit(sema: Sema) -> ir.Module:
    return UnitLowerer(sema).lower_unit()
