"""Restriction checking for device code (paper section 2.1).

Concord compiles most C++ to the GPU, but flags constructs the GPU cannot
execute; a flagged kernel produces a compile-time warning and the
``parallel_for_hetero`` / ``parallel_reduce_hetero`` runs on the CPU
instead.  Checked here, on the lowered IR after tail-recursion elimination
and inlining have had their chance:

* recursion that is not tail recursion (tail calls were already rewritten
  to loops by :mod:`repro.passes.tailrec`);
* calls through function pointers — unrepresentable in MiniC++, but an
  explicit check guards IR built by hand through the builder API;
* taking the address of a local variable such that it escapes (stored to
  memory or passed onwards) — GPU private memory is not addressable from
  the shared space;
* device-side memory allocation (``new``/``delete`` lower to
  ``svm.malloc``/``svm.free``);
* exceptions (``throw``/``try`` are rejected by the parser; the checker
  reports them for IR-level completeness).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import Function, Instruction, Module


@dataclass(frozen=True)
class Violation:
    kind: str
    function: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] in {self.function}: {self.detail}"


def check_kernel(module: Module, kernel: Function) -> list[Violation]:
    """All restriction violations reachable from ``kernel``."""
    violations: list[Violation] = []
    visited: set[str] = set()
    stack: list[tuple[Function, tuple[str, ...]]] = [(kernel, (kernel.name,))]
    while stack:
        function, path = stack.pop()
        if function.name in visited:
            continue
        visited.add(function.name)
        violations.extend(_check_one(function))
        for instr in function.instructions():
            if instr.op != "call":
                continue
            callee = instr.callee
            if isinstance(callee, Function):
                if callee.name in path:
                    violations.append(
                        Violation(
                            "recursion",
                            function.name,
                            f"recursive call cycle through {callee.name} "
                            "(not eliminable tail recursion)",
                        )
                    )
                    continue
                stack.append((callee, path + (callee.name,)))
    return violations


def _check_one(function: Function) -> list[Violation]:
    violations: list[Violation] = []
    allocas = {
        instr
        for instr in function.instructions()
        if instr.op == "alloca"
    }
    for instr in function.instructions():
        if instr.op == "call":
            callee = instr.callee
            if callee is None:
                violations.append(
                    Violation(
                        "function-pointer",
                        function.name,
                        "indirect call through a function pointer",
                    )
                )
                continue
            name = getattr(callee, "name", "")
            if name in ("svm.malloc", "svm.free"):
                violations.append(
                    Violation(
                        "gpu-allocation",
                        function.name,
                        "memory allocation is not supported on the GPU",
                    )
                )
            if name == "cxx.throw":
                violations.append(
                    Violation("exceptions", function.name, "throw on the GPU")
                )
        if instr.op == "store" and instr.operands[0] in allocas:
            violations.append(
                Violation(
                    "address-of-local",
                    function.name,
                    "address of a local variable escapes to memory",
                )
            )
        if instr.op == "ret" and instr.operands and instr.operands[0] in allocas:
            violations.append(
                Violation(
                    "address-of-local",
                    function.name,
                    "address of a local variable returned",
                )
            )
    return violations


def direct_self_recursion(function: Function) -> bool:
    return any(
        instr.op == "call" and instr.callee is function
        for instr in function.instructions()
    )
