"""MiniC++ frontend: lexer, parser, semantic analysis, IR lowering."""

from . import ast
from .lexer import LexError, Token, tokenize
from .lower import LowerError, UnitLowerer, lower_translation_unit
from .parser import ParseError, Parser, parse
from .restrictions import Violation, check_kernel
from .sema import ClassInfo, MethodInfo, Sema, SemaError

__all__ = [
    "ClassInfo",
    "LexError",
    "LowerError",
    "MethodInfo",
    "ParseError",
    "Parser",
    "Sema",
    "SemaError",
    "Token",
    "UnitLowerer",
    "Violation",
    "ast",
    "check_kernel",
    "lower_translation_unit",
    "parse",
    "tokenize",
]
