"""Abstract syntax tree for MiniC++.

Nodes carry the source line for diagnostics.  Types at this level are
*syntactic* (:class:`TypeRef`); semantic analysis resolves them against the
class table and template bindings into IR types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Node:
    line: int = 0
    col: int = 0


# -- type references ----------------------------------------------------------


@dataclass
class TypeRef(Node):
    """A syntactic type: named base (possibly qualified / templated) with
    pointer depth, e.g. ``Node*`` or ``Pair<float>**`` or ``unsigned int``."""

    name: str = ""
    pointer_depth: int = 0
    template_args: list["TypeRef"] = field(default_factory=list)
    is_const: bool = False
    is_reference: bool = False

    def with_pointer(self, extra: int = 1) -> "TypeRef":
        return TypeRef(
            line=self.line,
            name=self.name,
            pointer_depth=self.pointer_depth + extra,
            template_args=list(self.template_args),
            is_const=self.is_const,
        )

    def __str__(self) -> str:
        args = (
            "<" + ", ".join(str(a) for a in self.template_args) + ">"
            if self.template_args
            else ""
        )
        return f"{self.name}{args}{'*' * self.pointer_depth}{'&' if self.is_reference else ''}"


# -- expressions ---------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0
    is_double: bool = False


@dataclass
class BoolLiteral(Expr):
    value: bool = False


@dataclass
class CharLiteral(Expr):
    value: int = 0


@dataclass
class NullLiteral(Expr):
    pass


@dataclass
class Name(Expr):
    """Possibly qualified identifier: ``x``, ``ns::x``, ``Class::member``."""

    parts: list[str] = field(default_factory=list)

    @property
    def simple(self) -> Optional[str]:
        return self.parts[0] if len(self.parts) == 1 else None

    def __str__(self) -> str:
        return "::".join(self.parts)


@dataclass
class ThisExpr(Expr):
    pass


@dataclass
class Unary(Expr):
    op: str = ""  # - ! ~ * & ++pre --pre post++ post--
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Expr = None
    rhs: Expr = None


@dataclass
class Assign(Expr):
    op: str = "="  # = += -= *= /= %= &= |= ^= <<= >>=
    target: Expr = None
    value: Expr = None


@dataclass
class Conditional(Expr):
    cond: Expr = None
    then: Expr = None
    otherwise: Expr = None


@dataclass
class Call(Expr):
    """Free function call (possibly qualified), e.g. ``sqrtf(x)``."""

    name: Name = None
    args: list[Expr] = field(default_factory=list)
    template_args: list[TypeRef] = field(default_factory=list)


@dataclass
class MethodCall(Expr):
    receiver: Expr = None
    method: str = ""
    args: list[Expr] = field(default_factory=list)
    arrow: bool = False  # receiver->method(...) vs receiver.method(...)


@dataclass
class Member(Expr):
    receiver: Expr = None
    member: str = ""
    arrow: bool = False


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class CallOperator(Expr):
    """``obj(args...)`` — invokes ``operator()``."""

    receiver: Expr = None
    args: list[Expr] = field(default_factory=list)


@dataclass
class NewExpr(Expr):
    type: TypeRef = None
    array_size: Optional[Expr] = None
    ctor_args: list[Expr] = field(default_factory=list)


@dataclass
class DeleteExpr(Expr):
    operand: Expr = None
    is_array: bool = False


@dataclass
class Cast(Expr):
    type: TypeRef = None
    operand: Expr = None


@dataclass
class SizeofExpr(Expr):
    type: TypeRef = None


# -- statements ----------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class VarDecl(Stmt):
    type: TypeRef = None
    name: str = ""
    init: Optional[Expr] = None
    array_size: Optional[Expr] = None  # T name[N];
    ctor_args: Optional[list[Expr]] = None  # T name(a, b);


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Stmt = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class DoWhile(Stmt):
    body: Stmt = None
    cond: Expr = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -- declarations ----------------------------------------------------------------


@dataclass
class Param(Node):
    type: TypeRef = None
    name: str = ""


@dataclass
class FunctionDecl(Node):
    name: str = ""
    return_type: TypeRef = None
    params: list[Param] = field(default_factory=list)
    body: Optional[Block] = None
    is_virtual: bool = False
    is_static: bool = False
    is_const: bool = False
    template_params: list[str] = field(default_factory=list)
    namespace: tuple[str, ...] = ()
    owner_class: Optional[str] = None  # set for out-of-line definitions


@dataclass
class FieldDecl(Node):
    type: TypeRef = None
    name: str = ""
    array_size: Optional[Expr] = None


@dataclass
class ConstructorDecl(Node):
    params: list[Param] = field(default_factory=list)
    initializers: list[tuple[str, list[Expr]]] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class BaseSpec(Node):
    name: str = ""
    access: str = "public"
    template_args: list[TypeRef] = field(default_factory=list)


@dataclass
class ClassDecl(Node):
    name: str = ""
    bases: list[BaseSpec] = field(default_factory=list)
    fields: list[FieldDecl] = field(default_factory=list)
    methods: list[FunctionDecl] = field(default_factory=list)
    constructors: list[ConstructorDecl] = field(default_factory=list)
    template_params: list[str] = field(default_factory=list)
    namespace: tuple[str, ...] = ()
    is_struct: bool = False


@dataclass
class GlobalVarDecl(Node):
    type: TypeRef = None
    name: str = ""
    init: Optional[Expr] = None
    namespace: tuple[str, ...] = ()


@dataclass
class TranslationUnit(Node):
    classes: list[ClassDecl] = field(default_factory=list)
    functions: list[FunctionDecl] = field(default_factory=list)
    globals: list[GlobalVarDecl] = field(default_factory=list)
