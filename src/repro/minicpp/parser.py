"""Recursive-descent parser for MiniC++.

Produces a :class:`~repro.minicpp.ast.TranslationUnit`.  Supported at the
declaration level: namespaces (flattened into qualified names), class and
struct definitions (fields, methods, constructors, virtual functions,
multiple inheritance, operator overloads), class and function templates
(stored generically, instantiated during semantic analysis), free
functions, and global variables.
"""

from __future__ import annotations

from typing import Optional

from . import ast
from .lexer import Token, tokenize

PRIMITIVE_TYPES = frozenset(
    "void bool char short int long float double unsigned signed".split()
)

_ASSIGN_OPS = frozenset("= += -= *= /= %= &= |= ^= <<= >>=".split())


class ParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(f"line {token.line}:{token.column}: {message} (at {token.text!r})")
        self.token = token


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.namespace: tuple[str, ...] = ()
        self.known_classes: set[str] = set()
        self.template_param_stack: list[set[str]] = []

    # -- token helpers ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            want = text or kind
            raise ParseError(f"expected {want!r}", self.current)
        return self.advance()

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.current)

    # -- entry point -------------------------------------------------------------

    def parse(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(line=1)
        self._parse_declarations(unit)
        self.expect("eof")
        return unit

    def _parse_declarations(self, unit: ast.TranslationUnit) -> None:
        while not self.check("eof") and not self.check("op", "}"):
            self._parse_top_level(unit)

    def _parse_top_level(self, unit: ast.TranslationUnit) -> None:
        if self.accept("keyword", "namespace"):
            name = self.expect("ident").text
            self.expect("op", "{")
            outer = self.namespace
            self.namespace = outer + (name,)
            self._parse_declarations(unit)
            self.expect("op", "}")
            self.accept("op", ";")
            self.namespace = outer
            return
        if self.accept("keyword", "using"):
            # "using namespace X;" — accepted and ignored (name resolution
            # already searches enclosing namespaces).
            while not self.accept("op", ";"):
                self.advance()
            return

        template_params: list[str] = []
        if self.check("keyword", "template"):
            template_params = self._parse_template_header()

        if self.check("keyword", "class") or self.check("keyword", "struct"):
            # Distinguish a definition from a forward declaration.
            if self.peek().kind == "ident" and self.peek(2).text == ";":
                self.advance()
                name = self.advance().text
                self.advance()  # ;
                self.known_classes.add(name)
                return
            cls = self._parse_class(template_params)
            unit.classes.append(cls)
            return

        if template_params:
            self.template_param_stack.append(set(template_params))
            try:
                fn = self._parse_function_or_global(unit, template_params)
            finally:
                self.template_param_stack.pop()
            return

        self._parse_function_or_global(unit, [])

    def _parse_template_header(self) -> list[str]:
        self.expect("keyword", "template")
        self.expect("op", "<")
        params = []
        while True:
            if not (
                self.accept("keyword", "typename") or self.accept("keyword", "class")
            ):
                raise self.error("expected 'typename' or 'class' in template header")
            params.append(self.expect("ident").text)
            if not self.accept("op", ","):
                break
        self.expect("op", ">")
        return params

    # -- classes ---------------------------------------------------------------

    def _parse_class(self, template_params: list[str]) -> ast.ClassDecl:
        line = self.current.line
        is_struct = self.current.text == "struct"
        self.advance()  # class/struct
        name = self.expect("ident").text
        self.known_classes.add(name)
        cls = ast.ClassDecl(
            line=line,
            name=name,
            template_params=template_params,
            namespace=self.namespace,
            is_struct=is_struct,
        )
        if template_params:
            self.template_param_stack.append(set(template_params))
        try:
            if self.accept("op", ":"):
                while True:
                    access = "public" if is_struct else "private"
                    for keyword in ("public", "private", "protected"):
                        if self.accept("keyword", keyword):
                            access = keyword
                            break
                    base_name = self.expect("ident").text
                    targs: list[ast.TypeRef] = []
                    if self.check("op", "<"):
                        targs = self._parse_template_args()
                    cls.bases.append(
                        ast.BaseSpec(
                            line=line, name=base_name, access=access, template_args=targs
                        )
                    )
                    if not self.accept("op", ","):
                        break
            self.expect("op", "{")
            while not self.check("op", "}"):
                self._parse_member(cls)
            self.expect("op", "}")
            self.expect("op", ";")
        finally:
            if template_params:
                self.template_param_stack.pop()
        return cls

    def _parse_member(self, cls: ast.ClassDecl) -> None:
        for keyword in ("public", "private", "protected"):
            if self.accept("keyword", keyword):
                self.expect("op", ":")
                return
        line = self.current.line
        is_virtual = bool(self.accept("keyword", "virtual"))
        is_static = bool(self.accept("keyword", "static"))

        # Constructor: ClassName ( ... )
        if (
            self.check("ident", cls.name)
            and self.peek().text == "("
        ):
            self.advance()
            ctor = ast.ConstructorDecl(line=line)
            ctor.params = self._parse_params()
            if self.accept("op", ":"):
                while True:
                    member = self.expect("ident").text
                    self.expect("op", "(")
                    args = []
                    if not self.check("op", ")"):
                        args.append(self._parse_expression())
                        while self.accept("op", ","):
                            args.append(self._parse_expression())
                    self.expect("op", ")")
                    ctor.initializers.append((member, args))
                    if not self.accept("op", ","):
                        break
            ctor.body = self._parse_block()
            cls.constructors.append(ctor)
            return

        # Destructor: ~ClassName() {...} — parsed and discarded (trivial
        # destructors only; the model has no device-side delete).
        if self.check("op", "~"):
            self.advance()
            self.expect("ident")
            self.expect("op", "(")
            self.expect("op", ")")
            if self.check("op", "{"):
                self._parse_block()
            else:
                self.expect("op", ";")
            return

        type_ref = self._parse_type()

        # operator overload method
        if self.accept("keyword", "operator"):
            op_name = self._parse_operator_name()
            method = ast.FunctionDecl(
                line=line,
                name=op_name,
                return_type=type_ref,
                is_virtual=is_virtual,
                is_static=is_static,
            )
            method.params = self._parse_params()
            method.is_const = bool(self.accept("keyword", "const"))
            if self.check("op", "{"):
                method.body = self._parse_block()
            else:
                self.expect("op", ";")
            cls.methods.append(method)
            return

        name = self.expect("ident").text
        if self.check("op", "("):
            method = ast.FunctionDecl(
                line=line,
                name=name,
                return_type=type_ref,
                is_virtual=is_virtual,
                is_static=is_static,
            )
            method.params = self._parse_params()
            method.is_const = bool(self.accept("keyword", "const"))
            if self.accept("op", "="):
                # pure virtual: "= 0;" — treated as virtual with no body
                self.expect("int")
                self.expect("op", ";")
                cls.methods.append(method)
                return
            if self.check("op", "{"):
                method.body = self._parse_block()
            else:
                self.expect("op", ";")
            cls.methods.append(method)
            return

        # field (possibly several declarators, possibly array)
        while True:
            array_size = None
            if self.accept("op", "["):
                array_size = self._parse_expression()
                self.expect("op", "]")
            cls.fields.append(
                ast.FieldDecl(line=line, type=type_ref, name=name, array_size=array_size)
            )
            if self.accept("op", ","):
                extra_ptr = 0
                while self.accept("op", "*"):
                    extra_ptr += 1
                base = ast.TypeRef(
                    line=line,
                    name=type_ref.name,
                    pointer_depth=extra_ptr,
                    template_args=list(type_ref.template_args),
                )
                type_ref = base
                name = self.expect("ident").text
                continue
            break
        self.expect("op", ";")

    def _parse_operator_name(self) -> str:
        if self.accept("op", "("):
            self.expect("op", ")")
            return "operator()"
        if self.accept("op", "["):
            self.expect("op", "]")
            return "operator[]"
        token = self.current
        if token.kind == "op" and token.text in (
            "+", "-", "*", "/", "%", "==", "!=", "<", ">", "<=", ">=",
            "+=", "-=", "*=", "/=", "=",
        ):
            self.advance()
            return f"operator{token.text}"
        raise self.error("unsupported operator overload")

    # -- functions / globals -------------------------------------------------------

    def _parse_function_or_global(self, unit: ast.TranslationUnit, template_params):
        line = self.current.line
        type_ref = self._parse_type()
        # Out-of-line method definition: Type Class::name(...) {...}
        name = self.expect("ident").text
        owner_class = None
        if self.accept("op", "::"):
            owner_class = name
            name = self.expect("ident").text
        if self.check("op", "("):
            fn = ast.FunctionDecl(
                line=line,
                name=name,
                return_type=type_ref,
                template_params=template_params,
                namespace=self.namespace,
                owner_class=owner_class,
            )
            fn.params = self._parse_params()
            if self.check("op", "{"):
                fn.body = self._parse_block()
            else:
                self.expect("op", ";")
            unit.functions.append(fn)
            return fn
        init = None
        if self.accept("op", "="):
            init = self._parse_expression()
        self.expect("op", ";")
        unit.globals.append(
            ast.GlobalVarDecl(
                line=line, type=type_ref, name=name, init=init, namespace=self.namespace
            )
        )
        return None

    def _parse_params(self) -> list[ast.Param]:
        self.expect("op", "(")
        params: list[ast.Param] = []
        if self.accept("op", ")"):
            return params
        if self.check("keyword", "void") and self.peek().text == ")":
            self.advance()
            self.expect("op", ")")
            return params
        while True:
            line = self.current.line
            type_ref = self._parse_type()
            name = ""
            if self.check("ident"):
                name = self.advance().text
            params.append(ast.Param(line=line, type=type_ref, name=name or f"p{len(params)}"))
            if not self.accept("op", ","):
                break
        self.expect("op", ")")
        return params

    # -- types -----------------------------------------------------------------

    def _looks_like_type(self) -> bool:
        token = self.current
        if token.kind == "keyword":
            if token.text in PRIMITIVE_TYPES or token.text == "const":
                return True
            return False
        if token.kind != "ident":
            return False
        if token.text in self.known_classes:
            return True
        return any(token.text in scope for scope in self.template_param_stack)

    def _parse_type(self) -> ast.TypeRef:
        line = self.current.line
        is_const = bool(self.accept("keyword", "const"))
        words = []
        while self.current.kind == "keyword" and self.current.text in PRIMITIVE_TYPES:
            words.append(self.advance().text)
        template_args: list[ast.TypeRef] = []
        if not words:
            name = self.expect("ident").text
            if self.check("op", "<") and self._template_args_ahead():
                template_args = self._parse_template_args()
        else:
            name = " ".join(words)
        is_const = is_const or bool(self.accept("keyword", "const"))
        ref = ast.TypeRef(
            line=line,
            name=_normalize_primitive(name),
            template_args=template_args,
            is_const=is_const,
        )
        while True:
            if self.accept("op", "*"):
                ref.pointer_depth += 1
                self.accept("keyword", "const")
            elif self.accept("op", "&"):
                ref.is_reference = True
            else:
                break
        return ref

    def _template_args_ahead(self) -> bool:
        """Heuristic: '<' opens template args if a matching '>' appears
        before any ';', '{', or '&&'/'||' at depth 0."""
        depth = 0
        index = self.pos
        limit = min(len(self.tokens), index + 64)
        while index < limit:
            text = self.tokens[index].text
            if text == "<":
                depth += 1
            elif text == ">":
                depth -= 1
                if depth == 0:
                    return True
            elif text == ">>":
                depth -= 2
                if depth <= 0:
                    return True
            elif text in (";", "{", "&&", "||", ")"):
                return False
            index += 1
        return False

    def _parse_template_args(self) -> list[ast.TypeRef]:
        self.expect("op", "<")
        args = [self._parse_type()]
        while self.accept("op", ","):
            args.append(self._parse_type())
        # allow '>>' to close two levels
        if self.check("op", ">>"):
            token = self.current
            self.tokens[self.pos] = Token("op", ">", token.line, token.column)
            return args
        self.expect("op", ">")
        return args

    # -- statements ------------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        line = self.current.line
        col = self.current.column
        self.expect("op", "{")
        block = ast.Block(line=line, col=col)
        while not self.check("op", "}"):
            block.statements.append(self._parse_statement())
        self.expect("op", "}")
        return block

    def _parse_statement(self) -> ast.Stmt:
        line = self.current.line
        col = self.current.column
        if self.check("op", "{"):
            return self._parse_block()
        if self.accept("keyword", "if"):
            self.expect("op", "(")
            cond = self._parse_expression()
            self.expect("op", ")")
            then = self._parse_statement()
            otherwise = None
            if self.accept("keyword", "else"):
                otherwise = self._parse_statement()
            return ast.If(line=line, col=col, cond=cond, then=then, otherwise=otherwise)
        if self.accept("keyword", "while"):
            self.expect("op", "(")
            cond = self._parse_expression()
            self.expect("op", ")")
            body = self._parse_statement()
            return ast.While(line=line, col=col, cond=cond, body=body)
        if self.accept("keyword", "do"):
            body = self._parse_statement()
            self.expect("keyword", "while")
            self.expect("op", "(")
            cond = self._parse_expression()
            self.expect("op", ")")
            self.expect("op", ";")
            return ast.DoWhile(line=line, col=col, body=body, cond=cond)
        if self.accept("keyword", "for"):
            self.expect("op", "(")
            init: Optional[ast.Stmt] = None
            if not self.check("op", ";"):
                init = self._parse_simple_statement()
            else:
                self.advance()
            cond = None
            if not self.check("op", ";"):
                cond = self._parse_expression()
            self.expect("op", ";")
            step = None
            if not self.check("op", ")"):
                step = self._parse_expression()
            self.expect("op", ")")
            body = self._parse_statement()
            return ast.For(line=line, col=col, init=init, cond=cond, step=step, body=body)
        if self.accept("keyword", "return"):
            value = None
            if not self.check("op", ";"):
                value = self._parse_expression()
            self.expect("op", ";")
            return ast.Return(line=line, col=col, value=value)
        if self.accept("keyword", "break"):
            self.expect("op", ";")
            return ast.Break(line=line, col=col)
        if self.accept("keyword", "continue"):
            self.expect("op", ";")
            return ast.Continue(line=line, col=col)
        return self._parse_simple_statement()

    def _parse_simple_statement(self) -> ast.Stmt:
        """A declaration or expression statement, consuming the ';'."""
        line = self.current.line
        col = self.current.column
        if self._declaration_ahead():
            type_ref = self._parse_type()
            name = self.expect("ident").text
            array_size = None
            init = None
            ctor_args = None
            if self.accept("op", "["):
                array_size = self._parse_expression()
                self.expect("op", "]")
            elif self.accept("op", "="):
                init = self._parse_expression()
            elif self.accept("op", "("):
                ctor_args = []
                if not self.check("op", ")"):
                    ctor_args.append(self._parse_expression())
                    while self.accept("op", ","):
                        ctor_args.append(self._parse_expression())
                self.expect("op", ")")
            self.expect("op", ";")
            return ast.VarDecl(
                line=line,
                col=col,
                type=type_ref,
                name=name,
                init=init,
                array_size=array_size,
                ctor_args=ctor_args,
            )
        expr = self._parse_expression()
        self.expect("op", ";")
        return ast.ExprStmt(line=line, col=col, expr=expr)

    def _declaration_ahead(self) -> bool:
        if not self._looks_like_type():
            return False
        # Distinguish "T x" / "T* x" / "T<...>* x" from expressions like
        # "a * b" where a names a class: scan past type syntax for ident.
        index = self.pos
        if self.tokens[index].text == "const":
            index += 1
        if self.tokens[index].kind == "keyword":
            while (
                index < len(self.tokens)
                and self.tokens[index].kind == "keyword"
                and self.tokens[index].text in PRIMITIVE_TYPES
            ):
                index += 1
        else:
            index += 1
            if index < len(self.tokens) and self.tokens[index].text == "<":
                depth = 0
                while index < len(self.tokens):
                    text = self.tokens[index].text
                    if text == "<":
                        depth += 1
                    elif text == ">":
                        depth -= 1
                        if depth == 0:
                            index += 1
                            break
                    elif text == ">>":
                        depth -= 2
                        if depth <= 0:
                            index += 1
                            break
                    elif text in (";", "{"):
                        return False
                    index += 1
        while index < len(self.tokens) and self.tokens[index].text in ("*", "&", "const"):
            index += 1
        return index < len(self.tokens) and self.tokens[index].kind == "ident"

    # -- expressions (precedence climbing) ----------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        target = self._parse_conditional()
        token = self.current
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self.advance()
            value = self._parse_assignment()
            return ast.Assign(line=token.line, col=token.column, op=token.text, target=target, value=value)
        return target

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self.check("op", "?"):
            token = self.advance()
            then = self._parse_expression()
            self.expect("op", ":")
            otherwise = self._parse_conditional()
            return ast.Conditional(
                line=token.line, col=token.column, cond=cond, then=then, otherwise=otherwise
            )
        return cond

    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        ops = self._PRECEDENCE[level]
        lhs = self._parse_binary(level + 1)
        while self.current.kind == "op" and self.current.text in ops:
            token = self.advance()
            rhs = self._parse_binary(level + 1)
            lhs = ast.Binary(line=token.line, col=token.column, op=token.text, lhs=lhs, rhs=rhs)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.text in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self._parse_unary()
            return ast.Unary(line=token.line, col=token.column, op=token.text, operand=operand)
        if token.kind == "op" and token.text in ("++", "--"):
            self.advance()
            operand = self._parse_unary()
            return ast.Unary(line=token.line, col=token.column, op=token.text + "pre", operand=operand)
        if token.kind == "op" and token.text == "(":
            # Cast or parenthesized expression.
            save = self.pos
            self.advance()
            if self._looks_like_type():
                try:
                    type_ref = self._parse_type()
                    if self.check("op", ")") and type_ref.pointer_depth > 0 or (
                        self.check("op", ")")
                        and type_ref.name
                        in ("int", "uint", "long", "ulong", "float", "double", "char",
                            "bool", "short", "uchar", "ushort")
                    ):
                        self.expect("op", ")")
                        operand = self._parse_unary()
                        return ast.Cast(line=token.line, col=token.column, type=type_ref, operand=operand)
                except ParseError:
                    pass
            self.pos = save
        if token.kind == "keyword" and token.text == "new":
            self.advance()
            type_ref = self._parse_type()
            array_size = None
            ctor_args: list[ast.Expr] = []
            if self.accept("op", "["):
                array_size = self._parse_expression()
                self.expect("op", "]")
            elif self.accept("op", "("):
                if not self.check("op", ")"):
                    ctor_args.append(self._parse_expression())
                    while self.accept("op", ","):
                        ctor_args.append(self._parse_expression())
                self.expect("op", ")")
            return ast.NewExpr(
                line=token.line, col=token.column, type=type_ref, array_size=array_size, ctor_args=ctor_args
            )
        if token.kind == "keyword" and token.text == "delete":
            self.advance()
            is_array = False
            if self.accept("op", "["):
                self.expect("op", "]")
                is_array = True
            operand = self._parse_unary()
            return ast.DeleteExpr(line=token.line, col=token.column, operand=operand, is_array=is_array)
        if token.kind == "keyword" and token.text == "sizeof":
            self.advance()
            self.expect("op", "(")
            type_ref = self._parse_type()
            self.expect("op", ")")
            return ast.SizeofExpr(line=token.line, col=token.column, type=type_ref)
        if token.kind == "keyword" and token.text == "static_cast":
            self.advance()
            self.expect("op", "<")
            type_ref = self._parse_type()
            self.expect("op", ">")
            self.expect("op", "(")
            operand = self._parse_expression()
            self.expect("op", ")")
            return ast.Cast(line=token.line, col=token.column, type=type_ref, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self.current
            if self.accept("op", "."):
                member = self._member_name()
                if self.check("op", "(") :
                    args = self._parse_call_args()
                    expr = ast.MethodCall(
                        line=token.line, col=token.column, receiver=expr, method=member, args=args, arrow=False
                    )
                else:
                    expr = ast.Member(line=token.line, col=token.column, receiver=expr, member=member, arrow=False)
            elif self.accept("op", "->"):
                member = self._member_name()
                if self.check("op", "("):
                    args = self._parse_call_args()
                    expr = ast.MethodCall(
                        line=token.line, col=token.column, receiver=expr, method=member, args=args, arrow=True
                    )
                else:
                    expr = ast.Member(line=token.line, col=token.column, receiver=expr, member=member, arrow=True)
            elif self.accept("op", "["):
                index = self._parse_expression()
                self.expect("op", "]")
                expr = ast.Index(line=token.line, col=token.column, base=expr, index=index)
            elif self.check("op", "(") and not isinstance(expr, ast.Name):
                args = self._parse_call_args()
                expr = ast.CallOperator(line=token.line, col=token.column, receiver=expr, args=args)
            elif self.check("op", "(") and isinstance(expr, ast.Name):
                args = self._parse_call_args()
                expr = ast.Call(line=token.line, col=token.column, name=expr, args=args)
            elif token.kind == "op" and token.text in ("++", "--"):
                self.advance()
                expr = ast.Unary(line=token.line, col=token.column, op="post" + token.text, operand=expr)
            else:
                break
        return expr

    def _member_name(self) -> str:
        if self.accept("keyword", "operator"):
            return self._parse_operator_name()
        return self.expect("ident").text

    def _parse_call_args(self) -> list[ast.Expr]:
        self.expect("op", "(")
        args: list[ast.Expr] = []
        if not self.check("op", ")"):
            args.append(self._parse_expression())
            while self.accept("op", ","):
                args.append(self._parse_expression())
        self.expect("op", ")")
        return args

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.IntLiteral(line=token.line, col=token.column, value=token.value)
        if token.kind == "float":
            self.advance()
            return ast.FloatLiteral(
                line=token.line, col=token.column, value=token.value, is_double=not token.text.endswith("f")
            )
        if token.kind == "char":
            self.advance()
            return ast.CharLiteral(line=token.line, col=token.column, value=token.value)
        if token.kind == "keyword" and token.text in ("true", "false"):
            self.advance()
            return ast.BoolLiteral(line=token.line, col=token.column, value=token.text == "true")
        if token.kind == "keyword" and token.text == "this":
            self.advance()
            return ast.ThisExpr(line=token.line, col=token.column)
        if token.kind == "ident":
            parts = [self.advance().text]
            while self.check("op", "::"):
                self.advance()
                parts.append(self.expect("ident").text)
            if parts == ["NULL"] or parts == ["nullptr"]:
                return ast.NullLiteral(line=token.line, col=token.column)
            return ast.Name(line=token.line, col=token.column, parts=parts)
        if self.accept("op", "("):
            expr = self._parse_expression()
            self.expect("op", ")")
            return expr
        raise self.error("expected expression")


def _normalize_primitive(name: str) -> str:
    mapping = {
        "unsigned": "uint",
        "unsigned int": "uint",
        "unsigned long": "ulong",
        "unsigned long long": "ulong",
        "unsigned char": "uchar",
        "unsigned short": "ushort",
        "signed": "int",
        "signed int": "int",
        "long long": "long",
        "signed char": "char",
        "long int": "long",
    }
    return mapping.get(name, name)


def parse(source: str) -> ast.TranslationUnit:
    return Parser(source).parse()
