"""Semantic analysis for MiniC++.

Responsibilities:

* resolve syntactic :class:`~repro.minicpp.ast.TypeRef` into IR types,
  instantiating class templates on demand (monomorphization);
* compute class layouts with C++ rules: vtable pointer first for
  polymorphic classes, base-class subobjects in declaration order, then own
  fields (multiple inheritance supported for layout; virtual dispatch goes
  through the primary base — documented simplification);
* build vtables and the class hierarchy for class-hierarchy analysis
  (the devirtualization pass consumes both);
* register free functions (including function templates) and methods with
  overload sets, and perform overload resolution.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field as dc_field
from typing import Optional

from .. import ir
from ..ir.types import (
    BOOL,
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    IntType,
    PointerType,
    StructType,
    Type,
    U8,
    U16,
    U32,
    U64,
    VOID,
    ptr,
)
from . import ast

PRIMITIVES: dict[str, Type] = {
    "void": VOID,
    "bool": BOOL,
    "char": I8,
    "uchar": U8,
    "short": I16,
    "ushort": U16,
    "int": I32,
    "uint": U32,
    "long": I64,
    "ulong": U64,
    "float": F32,
    "double": F64,
}

VPTR_FIELD = "__vptr"


class SemaError(Exception):
    pass


@dataclass
class MethodInfo:
    """One concrete (non-template) method of a concrete class."""

    owner: "ClassInfo"
    decl: ast.FunctionDecl
    mangled: str
    is_virtual: bool = False
    vtable_slot: Optional[int] = None
    ir_function: Optional[ir.Function] = None


@dataclass
class ClassInfo:
    name: str  # fully-qualified, template-mangled
    decl: ast.ClassDecl
    bases: list["ClassInfo"] = dc_field(default_factory=list)
    struct_type: Optional[StructType] = None
    methods: dict[str, list[MethodInfo]] = dc_field(default_factory=dict)
    constructors: list[ast.ConstructorDecl] = dc_field(default_factory=list)
    vtable: list[MethodInfo] = dc_field(default_factory=list)
    vtable_keys: list[str] = dc_field(default_factory=list)  # slot -> name/arity key
    template_bindings: dict[str, Type] = dc_field(default_factory=dict)
    polymorphic: bool = False
    subclasses: list[str] = dc_field(default_factory=list)

    def all_methods(self) -> list[MethodInfo]:
        return [m for overloads in self.methods.values() for m in overloads]

    def find_methods(self, name: str) -> list[MethodInfo]:
        found = list(self.methods.get(name, ()))
        for base in self.bases:
            for method in base.find_methods(name):
                # Derived declarations hide base ones with the same arity.
                if not any(
                    len(m.decl.params) == len(method.decl.params)
                    for m in self.methods.get(name, ())
                ):
                    found.append(method)
        return found

    def is_subclass_of(self, other: "ClassInfo") -> bool:
        if self is other:
            return True
        return any(base.is_subclass_of(other) for base in self.bases)

    def find_field(self, name: str) -> Optional[tuple[int, Type]]:
        """(byte offset, type) of ``name``, searching base subobjects."""
        if self.struct_type.has_field(name):
            field = self.struct_type.field_named(name)
            return field.offset, field.type
        for base in self.bases:
            sub = self.struct_type.field_named(_base_field_name(base))
            found = base.find_field(name)
            if found is not None:
                return sub.offset + found[0], found[1]
        return None

    def upcast_offset(self, target: "ClassInfo") -> Optional[int]:
        """Byte offset added to a ``this`` pointer to view it as ``target``."""
        if target is self:
            return 0
        for base in self.bases:
            inner = base.upcast_offset(target)
            if inner is not None:
                sub = self.struct_type.field_named(_base_field_name(base))
                return sub.offset + inner
        return None


@dataclass
class FreeFunctionInfo:
    decl: ast.FunctionDecl
    mangled: str
    qualified: str  # ns::name
    ir_function: Optional[ir.Function] = None


class Sema:
    """Symbol tables and type resolution for one translation unit."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.classes: dict[str, ClassInfo] = {}
        self.class_templates: dict[str, ast.ClassDecl] = {}
        self.functions: dict[str, list[FreeFunctionInfo]] = {}
        self.function_templates: dict[str, list[ast.FunctionDecl]] = {}
        self.globals: dict[str, ast.GlobalVarDecl] = {}
        self._register_declarations()
        self._instantiate_concrete_classes()

    # -- registration ---------------------------------------------------------

    def _register_declarations(self) -> None:
        for cls in self.unit.classes:
            qualified = _qualify(cls.namespace, cls.name)
            if cls.template_params:
                self.class_templates[qualified] = cls
                if cls.name != qualified:
                    self.class_templates.setdefault(cls.name, cls)
            else:
                if qualified in self.classes:
                    raise SemaError(f"duplicate class {qualified}")
                self.classes[qualified] = ClassInfo(name=qualified, decl=cls)
        for fn in self.unit.functions:
            qualified = _qualify(fn.namespace, fn.name)
            if fn.owner_class is not None:
                continue  # out-of-line methods attached later
            if fn.template_params:
                self.function_templates.setdefault(qualified, []).append(fn)
            else:
                info = FreeFunctionInfo(
                    decl=fn, mangled=_mangle_free(qualified, fn), qualified=qualified
                )
                self.functions.setdefault(qualified, []).append(info)
        for gvar in self.unit.globals:
            self.globals[_qualify(gvar.namespace, gvar.name)] = gvar
        self._attach_out_of_line_methods()

    def _attach_out_of_line_methods(self) -> None:
        for fn in self.unit.functions:
            if fn.owner_class is None:
                continue
            qualified = _qualify(fn.namespace, fn.owner_class)
            decl = (
                self.classes.get(qualified).decl
                if qualified in self.classes
                else self.class_templates.get(qualified)
            )
            if decl is None:
                raise SemaError(f"out-of-line method for unknown class {qualified}")
            for method in decl.methods:
                if method.name == fn.name and method.body is None and len(
                    method.params
                ) == len(fn.params):
                    method.body = fn.body
                    break
            else:
                decl.methods.append(fn)

    def _instantiate_concrete_classes(self) -> None:
        for info in list(self.classes.values()):
            self._complete_class(info)

    # -- type resolution ---------------------------------------------------------

    def resolve_type(
        self,
        ref: ast.TypeRef,
        bindings: Optional[dict[str, Type]] = None,
        namespace: tuple[str, ...] = (),
    ) -> Type:
        bindings = bindings or {}
        # A pointer/reference target need not be complete yet (recursive
        # types like linked-list nodes depend on this).
        need_complete = ref.pointer_depth == 0 and not ref.is_reference
        base = self._resolve_base_type(ref, bindings, namespace, need_complete)
        result = base
        for _ in range(ref.pointer_depth):
            result = ptr(result)
        if ref.is_reference:
            result = ptr(result)
        return result

    def _resolve_base_type(self, ref: ast.TypeRef, bindings, namespace, need_complete=True) -> Type:
        name = ref.name
        if name in bindings and not ref.template_args:
            return bindings[name]
        if name in PRIMITIVES:
            return PRIMITIVES[name]
        info = self.lookup_class_ref(ref, bindings, namespace, need_complete)
        if info is not None:
            return info.struct_type
        raise SemaError(f"unknown type {ref} (line {ref.line})")

    def lookup_class_ref(
        self,
        ref: ast.TypeRef,
        bindings=None,
        namespace: tuple[str, ...] = (),
        need_complete: bool = True,
    ) -> Optional[ClassInfo]:
        bindings = bindings or {}
        if ref.template_args:
            args = [
                self.resolve_type(a, bindings, namespace) for a in ref.template_args
            ]
            return self.instantiate_class_template(ref.name, args, namespace)
        for qualified in _search_names(namespace, ref.name):
            info = self.classes.get(qualified)
            if info is not None:
                if info.struct_type is None:
                    info.struct_type = StructType(
                        name=info.name.replace("::", "__")
                    )
                if need_complete:
                    self._complete_class(info)
                return info
        return None

    def lookup_class(self, name: str, namespace: tuple[str, ...] = ()) -> Optional[ClassInfo]:
        for qualified in _search_names(namespace, name):
            info = self.classes.get(qualified)
            if info is not None:
                self._complete_class(info)
                return info
        return None

    def class_of_struct(self, struct_type: StructType) -> Optional[ClassInfo]:
        return self.classes.get(struct_type.name.replace("__", "::"))

    # -- template instantiation ------------------------------------------------

    def instantiate_class_template(
        self, name: str, args: list[Type], namespace: tuple[str, ...] = ()
    ) -> ClassInfo:
        template = None
        for qualified in _search_names(namespace, name):
            template = self.class_templates.get(qualified)
            if template is not None:
                break
        if template is None:
            raise SemaError(f"unknown class template {name}")
        if len(args) != len(template.template_params):
            raise SemaError(
                f"template {name} expects {len(template.template_params)} args, "
                f"got {len(args)}"
            )
        mangled = _mangle_template(name, args)
        existing = self.classes.get(mangled)
        if existing is not None:
            self._complete_class(existing)
            return existing
        bindings = dict(zip(template.template_params, args))
        clone = _substitute_class(template, bindings, mangled)
        info = ClassInfo(name=mangled, decl=clone, template_bindings=bindings)
        self.classes[mangled] = info
        self._complete_class(info)
        return info

    # -- class completion (layout + vtable) --------------------------------------

    def _complete_class(self, info: ClassInfo) -> None:
        if info.struct_type is not None and info.struct_type.complete:
            return
        if info.struct_type is None:
            info.struct_type = StructType(name=info.name.replace("::", "__"))
        elif not info.struct_type.complete and getattr(info, "_in_progress", False):
            raise SemaError(f"recursive value-embedding of class {info.name}")
        info._in_progress = True
        decl = info.decl
        namespace = decl.namespace

        # Resolve bases first.
        info.bases = []
        for base_spec in decl.bases:
            base_ref = ast.TypeRef(
                line=base_spec.line,
                name=base_spec.name,
                template_args=base_spec.template_args,
            )
            base_info = self.lookup_class_ref(
                base_ref, info.template_bindings, namespace
            )
            if base_info is None:
                raise SemaError(f"unknown base class {base_spec.name} of {info.name}")
            self._complete_class(base_info)
            info.bases.append(base_info)
            base_info.subclasses.append(info.name)

        own_virtual = any(m.is_virtual for m in decl.methods)
        info.polymorphic = own_virtual or any(b.polymorphic for b in info.bases)

        # Layout: C++ object model with embedded base subobjects.  The
        # primary (first) base sits at offset 0 so derived and primary-base
        # pointers coincide and the vtable pointer is shared; other bases
        # get their own subobjects at non-zero offsets (upcasts adjust).
        layout: list[tuple[str, Type]] = []
        primary = info.bases[0] if info.bases else None
        if info.polymorphic and (primary is None or not primary.polymorphic):
            layout.append((VPTR_FIELD, ptr(I64)))
        seen_fields: set[str] = set()
        for base in info.bases:
            layout.append((_base_field_name(base), base.struct_type))
        for fdecl in decl.fields:
            ftype = self.resolve_type(fdecl.type, info.template_bindings, namespace)
            if fdecl.array_size is not None:
                count = _const_int(fdecl.array_size)
                ftype = ir.ArrayType(ftype, count)
            if fdecl.name in seen_fields:
                raise SemaError(f"duplicate field {fdecl.name} in {info.name}")
            seen_fields.add(fdecl.name)
            layout.append((fdecl.name, ftype))
        info.struct_type.finalize(layout)
        info._in_progress = False

        # Methods + vtable.
        info.constructors = list(decl.constructors)
        for method_decl in decl.methods:
            mi = MethodInfo(
                owner=info,
                decl=method_decl,
                mangled=_mangle_method(info.name, method_decl),
                is_virtual=method_decl.is_virtual,
            )
            info.methods.setdefault(method_decl.name, []).append(mi)

        # vtable: start from the primary base's table, then override/extend.
        info.vtable = []
        info.vtable_keys = []
        if primary is not None and primary.polymorphic:
            info.vtable = list(primary.vtable)
            info.vtable_keys = list(primary.vtable_keys)
        for method_decl in decl.methods:
            key = _vslot_key(method_decl)
            overriding = key in info.vtable_keys
            is_virtual = method_decl.is_virtual or overriding
            if not is_virtual:
                continue
            mi = next(
                m
                for m in info.methods[method_decl.name]
                if m.decl is method_decl
            )
            mi.is_virtual = True
            if overriding:
                slot = info.vtable_keys.index(key)
                info.vtable[slot] = mi
                mi.vtable_slot = slot
            else:
                mi.vtable_slot = len(info.vtable)
                info.vtable.append(mi)
                info.vtable_keys.append(key)

    # -- overload resolution ----------------------------------------------------

    def resolve_overload(
        self,
        candidates: list,
        arg_types: list[Type],
        get_params,
    ):
        """Pick the best candidate for ``arg_types``.

        Exact match beats convertible match; ambiguity and no-match raise.
        ``get_params`` maps a candidate to its list of parameter IR types.
        """
        viable = []
        for candidate in candidates:
            params = get_params(candidate)
            if len(params) != len(arg_types):
                continue
            score = 0
            ok = True
            for have, want in zip(arg_types, params):
                rank = _conversion_rank(have, want)
                if rank is None:
                    ok = False
                    break
                score += rank
            if ok:
                viable.append((score, candidate))
        if not viable:
            return None
        viable.sort(key=lambda pair: pair[0])
        if len(viable) > 1 and viable[0][0] == viable[1][0]:
            raise SemaError(
                f"ambiguous overloaded call with argument types "
                f"{[str(t) for t in arg_types]}"
            )
        return viable[0][1]

    def find_free_functions(
        self, name: str, namespace: tuple[str, ...] = ()
    ) -> list[FreeFunctionInfo]:
        for qualified in _search_names(namespace, name):
            found = self.functions.get(qualified)
            if found:
                return found
        return []

    def find_function_templates(self, name, namespace=()):
        for qualified in _search_names(namespace, name):
            found = self.function_templates.get(qualified)
            if found:
                return found
        return []

    def instantiate_function_template(
        self, template: ast.FunctionDecl, bindings: dict[str, Type]
    ) -> FreeFunctionInfo:
        mangled_name = template.name + "." + ".".join(
            _type_tag(bindings[p]) for p in template.template_params
        )
        qualified = _qualify(template.namespace, mangled_name)
        for existing in self.functions.get(qualified, ()):
            return existing
        clone = _substitute_function(template, bindings, mangled_name)
        info = FreeFunctionInfo(
            decl=clone, mangled=_mangle_free(qualified, clone), qualified=qualified
        )
        self.functions.setdefault(qualified, []).append(info)
        return info

    # -- hierarchy export (for devirt) -------------------------------------------

    def class_hierarchy(self) -> dict[str, list[str]]:
        return {name: list(info.subclasses) for name, info in self.classes.items()}


# -- conversions -----------------------------------------------------------------


def _conversion_rank(have: Type, want: Type) -> Optional[int]:
    """0 exact, 1 promotion, 2 conversion, None not allowed."""
    if have == want:
        return 0
    # binding a class value to a reference parameter (T -> T&)
    if (
        isinstance(have, StructType)
        and isinstance(want, PointerType)
        and want.pointee == have
    ):
        return 0
    if isinstance(have, IntType) and isinstance(want, IntType):
        return 1 if want.bits >= have.bits else 2
    if isinstance(have, IntType) and isinstance(want, ir.FloatType):
        return 2
    if isinstance(have, ir.FloatType) and isinstance(want, ir.FloatType):
        return 1 if want.bits >= have.bits else 2
    if isinstance(have, ir.FloatType) and isinstance(want, IntType):
        return 2
    if isinstance(have, PointerType) and isinstance(want, PointerType):
        hp, wp = have.pointee, want.pointee
        if hp == wp:
            return 0
        if isinstance(wp, IntType) and wp.bits == 8:
            return 2  # any pointer -> char*/void*
        if isinstance(hp, StructType) and isinstance(wp, StructType):
            return 1  # derived* -> base* checked by the lowering
        return 2
    return None


# -- mangling / helpers ------------------------------------------------------------


def _base_field_name(base: "ClassInfo") -> str:
    return "__base_" + base.name.replace("::", "_").replace("<", "_").replace(
        ">", "_"
    ).replace(", ", "_")


def _qualify(namespace: tuple[str, ...], name: str) -> str:
    return "::".join((*namespace, name)) if namespace else name


def _search_names(namespace: tuple[str, ...], name: str) -> list[str]:
    """Lookup order: innermost namespace outwards, then global."""
    if "::" in name:
        return [name]
    result = []
    for depth in range(len(namespace), -1, -1):
        result.append(_qualify(namespace[:depth], name))
    return result


def _type_tag(type_: Type) -> str:
    text = str(type_)
    return (
        text.replace("*", "p").replace("%", "").replace(" ", "").replace("[", "a")
        .replace("]", "").replace("x", "_")
    )


def _mangle_template(name: str, args: list[Type]) -> str:
    return f"{name}<{', '.join(str(a) for a in args)}>"


def _mangle_method(class_name: str, decl: ast.FunctionDecl) -> str:
    base = class_name.replace("::", ".").replace("<", "_").replace(">", "_").replace(", ", "_")
    op = decl.name.replace("operator()", "call_op").replace("operator[]", "index_op")
    op = _sanitize_op(op)
    tags = "".join("_" + _typeref_tag(p.type) for p in decl.params)
    return f"{base}.{op}.{len(decl.params)}{tags}"


def _mangle_free(qualified: str, decl: ast.FunctionDecl) -> str:
    tags = "".join("_" + _typeref_tag(p.type) for p in decl.params)
    return f"{qualified.replace('::', '.')}.{len(decl.params)}{tags}"


def _typeref_tag(ref: ast.TypeRef) -> str:
    return (
        ref.name.replace("::", "_").replace("<", "I").replace(">", "I").replace(
            ", ", "_"
        )
        + "p" * ref.pointer_depth
        + ("r" if ref.is_reference else "")
    )


def _sanitize_op(name: str) -> str:
    table = {
        "operator+": "op_add",
        "operator-": "op_sub",
        "operator*": "op_mul",
        "operator/": "op_div",
        "operator%": "op_mod",
        "operator==": "op_eq",
        "operator!=": "op_ne",
        "operator<": "op_lt",
        "operator>": "op_gt",
        "operator<=": "op_le",
        "operator>=": "op_ge",
        "operator+=": "op_iadd",
        "operator-=": "op_isub",
        "operator*=": "op_imul",
        "operator/=": "op_idiv",
        "operator=": "op_assign",
    }
    return table.get(name, name)


def _vslot_key(decl: ast.FunctionDecl) -> str:
    return f"{decl.name}/{len(decl.params)}"


def _const_int(expr: ast.Expr) -> int:
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.Binary):
        lhs = _const_int(expr.lhs)
        rhs = _const_int(expr.rhs)
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b,
        }
        if expr.op in ops:
            return ops[expr.op](lhs, rhs)
    raise SemaError("array sizes must be integer constant expressions")


# -- AST template substitution ------------------------------------------------------


def _substitute_class(
    template: ast.ClassDecl, bindings: dict[str, Type], new_name: str
) -> ast.ClassDecl:
    clone = _deep_substitute(template, bindings)
    clone.name = new_name
    clone.template_params = []
    return clone


def _substitute_function(
    template: ast.FunctionDecl, bindings: dict[str, Type], new_name: str
) -> ast.FunctionDecl:
    clone = _deep_substitute(template, bindings)
    clone.name = new_name
    clone.template_params = []
    return clone


def _deep_substitute(node, bindings: dict[str, Type]):
    """Clone an AST subtree, rewriting TypeRefs that name template params."""
    if isinstance(node, ast.TypeRef):
        if node.name in bindings and not node.template_args:
            bound = bindings[node.name]
            ref = _type_to_ref(bound)
            ref.pointer_depth += node.pointer_depth
            ref.is_reference = node.is_reference
            ref.line = node.line
            return ref
        return ast.TypeRef(
            line=node.line,
            name=node.name,
            pointer_depth=node.pointer_depth,
            template_args=[_deep_substitute(a, bindings) for a in node.template_args],
            is_const=node.is_const,
            is_reference=node.is_reference,
        )
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        kwargs = {}
        for field_info in dataclasses.fields(node):
            value = getattr(node, field_info.name)
            kwargs[field_info.name] = _substitute_value(value, bindings)
        return type(node)(**kwargs)
    return node


def _substitute_value(value, bindings):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _deep_substitute(value, bindings)
    if isinstance(value, list):
        return [_substitute_value(v, bindings) for v in value]
    if isinstance(value, tuple):
        return tuple(_substitute_value(v, bindings) for v in value)
    return value


def _type_to_ref(type_: Type) -> ast.TypeRef:
    for name, prim in PRIMITIVES.items():
        if type_ == prim:
            return ast.TypeRef(name=name)
    if isinstance(type_, PointerType):
        inner = _type_to_ref(type_.pointee)
        inner.pointer_depth += 1
        return inner
    if isinstance(type_, StructType):
        return ast.TypeRef(name=type_.name.replace("__", "::"))
    raise SemaError(f"cannot spell type {type_} in source form")
