"""Integrated GPU simulator: device models, cache, timing/energy."""

from .cache import CacheModel, CacheStats
from .device import GpuDevice, hd4600, hd5000
from .timing import DeviceReport, time_gpu_kernel

__all__ = [
    "CacheModel",
    "CacheStats",
    "DeviceReport",
    "GpuDevice",
    "hd4600",
    "hd5000",
    "time_gpu_kernel",
]
