"""GPU performance and energy model from execution traces.

Work-items execute functionally on the scalar interpreter; this module
turns their per-lane :class:`~repro.exec.ExecTrace` records into cycles and
joules on a :class:`~repro.gpu.device.GpuDevice`:

* **SIMT issue with divergence.**  Lanes are grouped into SIMD16 warps in
  index order (the hardware's dispatch order).  For each basic block, the
  baseline issue estimate is ``max over lanes of (times that lane executed
  the block)`` — lanes that skipped it ride along masked, lanes that looped
  more force re-issues.  On top of that, blocks guarded by a conditional
  branch get the **independent-outcomes correction**: in irregular code the
  branch decides differently in every lane on every iteration, so the warp
  must issue the guarded block whenever *any* lane enters it.  With
  per-lane enter probabilities ``p_l`` (measured from the trace), the
  expected issue count is ``occurrences x (1 - prod(1 - p_l))``, which can
  far exceed the per-lane max — this is exactly the cost of the three-way
  data-dependent branch in a Barnes-Hut traversal, invisible to plain
  block-count models.

* **Coalescing and gather cracking.**  Lane accesses from the same dynamic
  occurrence of one memory instruction (``(instr_uid, seq)``) coalesce: the
  warp issues one transaction per distinct cache line touched.  A scattered
  access (many distinct lines) additionally *cracks* into multiple
  data-port messages that occupy EU issue slots — uniform/adjacent loads
  (Raytracer walking the same scene array) are near free on the issue side,
  while pointer-chasing gathers (BarnesHut, SkipList, BTree) pay per line.
  This is the second, often dominant cost of irregular memory on real
  hardware.

* **Un-banked L3 + contention.**  Each transaction probes the shared L3
  (LRU, set-associative).  Transactions from warps resident on *different
  EUs* that touch the same line at the same dynamic position serialize on
  the line's single port — this is the contention the L3OPT transformation
  removes by staggering per-core access order (paper section 4.2).

* **Latency hiding.**  7 threads per EU overlap memory stalls with other
  warps' compute; the residual exposed latency is ``(1 - latency_hiding)``.

The returned :class:`DeviceReport` carries cycles, seconds, joules and the
breakdown the benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exec.buffers import iter_mem_events
from ..exec.interp import ExecTrace
from ..ir import Function
from .cache import CacheModel
from .device import GpuDevice


@dataclass
class DeviceReport:
    device: str
    seconds: float
    energy_joules: float
    cycles: float = 0.0
    instructions: int = 0
    issue_slots: float = 0.0
    mem_transactions: int = 0
    l3_hits: int = 0
    l3_misses: int = 0
    contention_events: int = 0
    contention_cycles: float = 0.0
    divergence_waste: float = 0.0  # issue slots beyond converged minimum
    translations: int = 0
    extra: dict = field(default_factory=dict)

    def __add__(self, other: "DeviceReport") -> "DeviceReport":
        if other == 0:
            return self
        return DeviceReport(
            device=self.device,
            seconds=self.seconds + other.seconds,
            energy_joules=self.energy_joules + other.energy_joules,
            cycles=self.cycles + other.cycles,
            instructions=self.instructions + other.instructions,
            issue_slots=self.issue_slots + other.issue_slots,
            mem_transactions=self.mem_transactions + other.mem_transactions,
            l3_hits=self.l3_hits + other.l3_hits,
            l3_misses=self.l3_misses + other.l3_misses,
            contention_events=self.contention_events + other.contention_events,
            contention_cycles=self.contention_cycles + other.contention_cycles,
            divergence_waste=self.divergence_waste + other.divergence_waste,
            translations=self.translations + other.translations,
            extra={**self.extra, **other.extra},
        )

    __radd__ = __add__


#: Gen7.5 EUs have no native 64-bit integer ALU: a 64-bit add/sub (the
#: SVM pointer-translation arithmetic!) cracks into multiple 32-bit ops.
INT64_OP_SLOTS = 3.0
TRANSLATE_SLOTS = 3.0
DIV_SLOTS = 8.0
#: extra issue slots per additional cache line touched by one scattered
#: SIMD16 access (data-port message cracking)
GATHER_CRACK_SLOTS = 2.0


def _instruction_slots(instr) -> float:
    from ..ir.types import IntType
    from ..ir.values import BINARY_OPS

    if instr.op == "call" and instr.callee is not None:
        name = instr.callee.name
        if name.startswith("svm.to_"):
            return TRANSLATE_SLOTS
        if name.startswith("math."):
            return 4.0  # transcendentals run on shared EU units
        return 1.0
    if instr.op in ("sdiv", "udiv", "srem", "urem"):
        return DIV_SLOTS
    if instr.op == "fdiv":
        return 4.0
    if instr.op in ("fadd", "fsub", "fmul"):
        # dual FPUs with MAD co-issue: FP arithmetic is the EU's fast path
        return 0.6
    if instr.op in BINARY_OPS and isinstance(instr.type, IntType) and instr.type.bits == 64:
        return INT64_OP_SLOTS
    if instr.op == "gep" and len(instr.operands) > 1:
        return 2.0  # 64-bit address arithmetic
    return 1.0


def block_sizes(kernel: Function) -> dict[int, float]:
    return {
        b.uid: max(1.0, sum(_instruction_slots(i) for i in b.instructions))
        for b in kernel.blocks
    }


def _guarded_blocks(kernel: Function) -> dict[int, int]:
    """Map block uid -> uid of its unique condbr predecessor (if any).

    Such blocks are control-dependent on a data-dependent branch; the
    independent-outcomes divergence correction applies to them.
    """
    preds: dict[int, list] = {}
    for block in kernel.blocks:
        term = block.terminator
        if term is None:
            continue
        for succ in term.targets:
            preds.setdefault(succ.uid, []).append((block, term))
    guarded: dict[int, int] = {}
    for block in kernel.blocks:
        entry = preds.get(block.uid, [])
        if len(entry) == 1 and entry[0][1].op == "condbr":
            guarded[block.uid] = entry[0][0].uid
    return guarded


def time_gpu_kernel(
    device: GpuDevice,
    kernel: Function,
    traces: list[ExecTrace],
    l3: CacheModel | None = None,
    counters=None,
) -> DeviceReport:
    sizes = block_sizes(kernel)
    guarded = _guarded_blocks(kernel)
    l3 = l3 or CacheModel(device.l3_size_bytes, device.l3_line_bytes, device.l3_assoc)
    w = device.simd_width

    total_issue = 0.0
    converged_issue = 0.0
    total_instructions = 0
    total_translations = 0

    mem_transactions = 0
    l3_hits = 0
    l3_misses = 0
    mem_latency_cycles = 0.0
    dram_bytes = 0

    # contention bookkeeping: (instr_uid, seq, line) -> set of EU ids
    line_touches: dict[tuple, set] = {}

    num_warps = (len(traces) + w - 1) // w
    for warp_index in range(num_warps):
        lanes = traces[warp_index * w : (warp_index + 1) * w]
        eu = warp_index % device.num_eus

        # -- compute issue (divergence model)
        block_max: dict[int, int] = {}
        block_sum: dict[int, int] = {}
        per_lane_counts: list[dict] = []
        for lane in lanes:
            total_instructions += lane.instructions
            total_translations += lane.translations
            per_lane_counts.append(lane.block_counts)
            for uid, count in lane.block_counts.items():
                if count > block_max.get(uid, 0):
                    block_max[uid] = count
                block_sum[uid] = block_sum.get(uid, 0) + count
        # Sum in canonical (sorted-uid) order: float accumulation order must
        # not depend on trace-dict insertion order, which differs between
        # the reference interpreter and the threaded-code engine.
        warp_issue = 0.0
        for uid in sorted(block_max):
            max_count = block_max[uid]
            estimate = float(max_count)
            parent = guarded.get(uid)
            if parent is not None and len(lanes) > 1:
                parent_occ = block_max.get(parent, 0)
                if parent_occ > 0:
                    miss_all = 1.0
                    for counts in per_lane_counts:
                        parent_count = counts.get(parent, 0)
                        if parent_count <= 0:
                            continue
                        p_enter = min(1.0, counts.get(uid, 0) / parent_count)
                        miss_all *= 1.0 - p_enter
                    estimate = max(estimate, parent_occ * (1.0 - miss_all))
            warp_issue += estimate * sizes.get(uid, 1)
        warp_converged = sum(
            (block_sum[uid] / len(lanes)) * sizes.get(uid, 1)
            for uid in sorted(block_sum)
        )
        total_issue += warp_issue
        converged_issue += warp_converged

        # -- memory transactions (coalescing per dynamic occurrence)
        occurrence: dict[tuple, list] = {}
        setdefault = occurrence.setdefault
        for lane in lanes:
            # (instr_uid, seq, address, size) tuples; streams either the
            # list or the columnar trace representation.
            for instr_uid, seq, address, size in iter_mem_events(lane):
                setdefault((instr_uid, seq), []).append((address, size))
        line_bytes = device.l3_line_bytes
        l3_access = l3.access
        l3_hit_cycles = device.l3_hit_cycles
        dram_latency = device.dram_latency_cycles
        touches_setdefault = line_touches.setdefault
        warp_tx = 0
        for key, events in occurrence.items():
            lines = {}
            for address, size in events:
                first = address // line_bytes
                last = (address + size - 1) // line_bytes
                if first == last:
                    lines[first] = True
                else:
                    for line in range(first, last + 1):
                        lines[line] = True
            warp_tx += len(lines)
            instr_uid, seq = key
            for line in lines:
                mem_transactions += 1
                if l3_access(line):
                    l3_hits += 1
                    mem_latency_cycles += l3_hit_cycles
                else:
                    l3_misses += 1
                    mem_latency_cycles += dram_latency
                    dram_bytes += line_bytes
                touches_setdefault((instr_uid, seq, line), set()).add(eu)
        crack_slots = GATHER_CRACK_SLOTS * max(0, warp_tx - len(occurrence))
        total_issue += crack_slots

    contention_events = 0
    contention_cycles = 0.0
    ports = device.l3_line_ports
    for eus in line_touches.values():
        extra = max(0, len(eus) - ports)
        if extra:
            contention_events += extra
            contention_cycles += extra * device.contention_penalty_cycles

    # -- fold into wall-clock cycles
    #
    # Three throughput limits, the slowest wins (standard analytic GPU
    # model):
    #  * compute: each EU issues one SIMD16 instruction per
    #    ``issue_cycles_per_slot`` cycles;
    #  * memory latency: each hardware thread sustains roughly one
    #    outstanding dependent-load chain, so aggregate latency is divided
    #    by EUs x threads — pointer chasing cannot hide more than that
    #    (this is what makes irregular traversals slow on the GPU);
    #  * DRAM bandwidth for the miss traffic.
    # Un-banked-L3 contention serializes on top.
    eus = device.num_eus
    compute_cycles = total_issue * device.issue_cycles_per_slot / eus
    concurrency = min(
        eus * device.threads_per_eu * device.memory_parallelism,
        device.fabric_outstanding_misses
        if l3_misses > l3_hits
        else eus * device.threads_per_eu * device.memory_parallelism,
    )
    latency_cycles = mem_latency_cycles / concurrency
    bandwidth_cycles = dram_bytes / device.dram_bandwidth_bytes_per_cycle
    wall_cycles = (
        max(compute_cycles, latency_cycles, bandwidth_cycles)
        + contention_cycles / eus
    )
    seconds = wall_cycles / device.frequency_hz

    dynamic_energy = (
        total_issue * device.energy_per_issue_slot
        + (l3_hits + l3_misses) * device.energy_per_l3_access
        + l3_misses * device.energy_per_dram_access
    )
    # TDP throttling: if sustained-clock execution would exceed the package
    # power budget, the clock drops and execution stretches until
    # dynamic_power + idle fits inside the budget.
    budget = device.power_budget_watts
    if budget and seconds > 0.0:
        headroom = max(1e-3, budget - device.idle_power_watts)
        min_seconds = dynamic_energy / headroom
        if min_seconds > seconds:
            wall_cycles *= min_seconds / seconds
            seconds = min_seconds
    energy = dynamic_energy + device.idle_power_watts * seconds

    if counters is not None:
        # repro.obs.CounterRegistry; publish the model's event totals so
        # profiles carry the cache/coalescing/contention breakdown.
        counters.add("gpu.l3.hits", l3_hits)
        counters.add("gpu.l3.misses", l3_misses)
        counters.add("gpu.mem_transactions", mem_transactions)
        counters.add("gpu.contention_events", contention_events)
        counters.add("gpu.issue_slots", total_issue)
        counters.add("gpu.translations", total_translations)

    return DeviceReport(
        device=device.name,
        seconds=seconds,
        energy_joules=energy,
        cycles=wall_cycles,
        instructions=total_instructions,
        issue_slots=total_issue,
        mem_transactions=mem_transactions,
        l3_hits=l3_hits,
        l3_misses=l3_misses,
        contention_events=contention_events,
        contention_cycles=contention_cycles,
        divergence_waste=max(0.0, total_issue - converged_issue),
        translations=total_translations,
    )
