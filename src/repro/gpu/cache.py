"""Set-associative LRU cache model (shared by the GPU L3 and CPU LLC)."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class CacheModel:
    """LRU set-associative cache over line ids (``address // line_size``)."""

    def __init__(self, size_bytes: int, line_bytes: int, assoc: int):
        if size_bytes % (line_bytes * assoc) != 0:
            raise ValueError("cache size must be a multiple of line*assoc")
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.num_sets = size_bytes // (line_bytes * assoc)
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def line_of(self, address: int) -> int:
        return address // self.line_bytes

    def access(self, line: int) -> bool:
        """Touch a line; returns True on hit."""
        bucket = self._sets[line % self.num_sets]
        if line in bucket:
            bucket.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        bucket[line] = True
        if len(bucket) > self.assoc:
            bucket.popitem(last=False)
        return False

    def publish(self, counters, prefix: str) -> None:
        """Fold the current hit/miss totals into an observability counter
        registry under ``<prefix>.hits`` / ``<prefix>.misses``.  Kept out
        of :meth:`access` so the hot path never pays for metrics."""
        counters.add(f"{prefix}.hits", self.stats.hits)
        counters.add(f"{prefix}.misses", self.stats.misses)

    def reset(self) -> None:
        for bucketet in self._sets:
            bucketet.clear()
        self.stats = CacheStats()
