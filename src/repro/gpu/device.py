"""Integrated GPU device models.

Parameters follow the paper's two systems (section 5.1):

* **HD 5000** (Ultrabook, i7-4650U): 40 EUs, 7 hardware threads per EU,
  SIMD16, 200 MHz – 1.1 GHz turbo.
* **HD 4600** (desktop, i7-4770): 20 EUs, 7 threads per EU, SIMD16,
  350 MHz – 1.25 GHz turbo.

Both share physical memory with the CPU and cache global memory accesses in
a unified, *un-banked* L3 — the property the L3OPT compiler transformation
exploits (section 4.2).

Cache capacities are scaled down ~32x from the silicon values: the paper's
inputs (6.2M-node road networks, a 3000x2171 image) are ~3 orders of
magnitude larger than the interpreted-simulation inputs, so full-size
caches would hold entire working sets and erase the locality behaviour the
evaluation depends on.  Scaling capacity with input size preserves the
working-set-to-cache ratio (standard practice for scaled simulation).  Energy constants are model parameters calibrated
so the paper's relative results (not absolute joules) reproduce; see
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuDevice:
    name: str
    num_eus: int
    threads_per_eu: int
    simd_width: int
    min_freq_hz: float
    max_freq_hz: float
    l3_size_bytes: int
    l3_line_bytes: int
    l3_assoc: int
    l3_hit_cycles: float
    dram_latency_cycles: float
    dram_bandwidth_bytes_per_cycle: float
    #: read/write ports per L3 line — simultaneous same-line accesses from
    #: more EUs than this serialize (the contention L3OPT attacks)
    l3_line_ports: int
    contention_penalty_cycles: float
    #: energy model (joules)
    energy_per_issue_slot: float  # one SIMD16 instruction issue on one EU
    energy_per_l3_access: float
    energy_per_dram_access: float
    idle_power_watts: float  # GPU-slice share of package idle power
    #: fraction of memory latency hidden by multithreading (0..1)
    latency_hiding: float
    #: EU cycles to issue one SIMD16 instruction (the physical ALU is
    #: narrower than 16 lanes, so a SIMD16 op occupies multiple cycles)
    issue_cycles_per_slot: float = 2.6
    #: average outstanding dependent-load chains per hardware thread
    memory_parallelism: float = 1.0
    #: clock actually sustained under the package TDP (the Ultrabook's
    #: 15 W budget keeps HD 5000 far below its 1.1 GHz turbo ceiling)
    sustained_freq_hz: float = 0.0
    #: package power budget while the GPU runs (0 = unconstrained).  When
    #: the activity-based energy model would exceed it, the clock throttles
    #: and execution stretches until power fits — this is how the 15 W
    #: Ultrabook penalizes divergence-heavy kernels whose masked-lane issue
    #: slots burn energy without doing useful work.
    power_budget_watts: float = 0.0
    #: outstanding misses the GTI/memory fabric sustains — a chip-level
    #: property that does NOT scale with EU count, which is why the 40-EU
    #: HD 5000 is no better than the 20-EU HD 4600 on latency-bound
    #: pointer chasing (only on compute)
    fabric_outstanding_misses: float = 48.0

    @property
    def max_warps_in_flight(self) -> int:
        return self.num_eus * self.threads_per_eu

    @property
    def frequency_hz(self) -> float:
        return self.sustained_freq_hz or self.max_freq_hz


def hd5000() -> GpuDevice:
    """Intel HD Graphics 5000 (Ultrabook GT3, 15W shared TDP)."""
    return GpuDevice(
        name="Intel HD Graphics 5000",
        num_eus=40,
        threads_per_eu=7,
        simd_width=16,
        min_freq_hz=200e6,
        max_freq_hz=1.1e9,
        l3_size_bytes=8 * 1024,
        l3_line_bytes=64,
        l3_assoc=16,
        l3_hit_cycles=80.0,
        dram_latency_cycles=300.0,
        dram_bandwidth_bytes_per_cycle=16.0,
        l3_line_ports=1,
        contention_penalty_cycles=18.0,
        energy_per_issue_slot=1100e-12,
        energy_per_l3_access=600e-12,
        energy_per_dram_access=4.0e-9,
        # package idle while the GPU slice runs: parked CPU cores + uncore
        idle_power_watts=5.0,
        latency_hiding=0.80,
        sustained_freq_hz=600e6,
        power_budget_watts=11.0,
    )


def hd4600() -> GpuDevice:
    """Intel HD Graphics 4600 (desktop GT2, 84W package TDP)."""
    return GpuDevice(
        name="Intel HD Graphics 4600",
        num_eus=20,
        threads_per_eu=7,
        simd_width=16,
        min_freq_hz=350e6,
        max_freq_hz=1.25e9,
        l3_size_bytes=8 * 1024,
        l3_line_bytes=64,
        l3_assoc=16,
        l3_hit_cycles=80.0,
        dram_latency_cycles=280.0,
        dram_bandwidth_bytes_per_cycle=20.0,
        l3_line_ports=1,
        contention_penalty_cycles=18.0,
        energy_per_issue_slot=3200e-12,
        energy_per_l3_access=900e-12,
        energy_per_dram_access=6.0e-9,
        # desktop package idle (CPU parked, uncore, VRs) during GPU runs
        idle_power_watts=16.0,
        latency_hiding=0.80,
        sustained_freq_hz=1.25e9,
    )
