"""Reproduction of "Efficient Mapping of Irregular C++ Applications to
Integrated GPUs" (Concord, CGO 2014).

Public API highlights:

>>> from repro import compile_source, ConcordRuntime, OptConfig, ultrabook
>>> program = compile_source(cpp_source, OptConfig.gpu_all())
>>> rt = ConcordRuntime(program, ultrabook())
>>> body = rt.new("LoopBody", args)
>>> report = rt.parallel_for_hetero(n, body)

Subpackages: ``minicpp`` (frontend), ``ir`` (SSA IR), ``passes``
(optimizations incl. PTROPT/L3OPT), ``svm`` (software shared virtual
memory), ``runtime`` (offload + parallel constructs), ``gpu``/``cpu``
(device models), ``workloads`` (the nine paper benchmarks), ``eval``
(table/figure regeneration).
"""

from .passes import OptConfig
from .runtime import (
    CompiledProgram,
    ConcordRuntime,
    ConcordWarning,
    ExecutionReport,
    System,
    compile_source,
    desktop,
    ultrabook,
)

__version__ = "0.1.0"

__all__ = [
    "CompiledProgram",
    "ConcordRuntime",
    "ConcordWarning",
    "ExecutionReport",
    "OptConfig",
    "System",
    "__version__",
    "compile_source",
    "desktop",
    "ultrabook",
]
