"""Source-line attribution: charge modeled execution cost to MiniC++ lines.

The frontend stamps every IR instruction with a ``loc`` — a tuple of
``(line, col)`` frames, innermost first, extended by inlining with the
call site's frames (the LLVM ``inlinedAt`` shape).  The runtime records
one ``(kernel, device, block_counts)`` sample per launch
(:meth:`repro.obs.core.Observer.record_kernel_trace`): the executed-block
histogram merged over all work items.  Because every instruction of a
block executes exactly as many times as its block, the whole per-line
cost model is reconstructible *post hoc* from the static kernel IR and
that histogram — the engines do zero extra per-instruction work.

Cost units per executed instruction:

* on the GPU — the issue-slot weights of the timing model
  (:func:`repro.gpu.timing._instruction_slots`), so a line's share of
  slots matches its share of modeled EU cycles;
* on the CPU — one unit per instruction (the CPU pipeline model charges
  ``instructions / ipc`` cycles, so cycle share equals instruction
  share).

Alongside the cycle units each line accrues memory traffic (bytes moved
by its loads/stores), SVM pointer translations (``svm.to_gpu`` calls
charged to the access they guard), and devirtualized-dispatch compare
chains (:mod:`repro.passes.devirt` marks those with the
``devirt_chain`` annotation).
"""

from __future__ import annotations

from typing import Optional

LINES_SCHEMA_VERSION = "repro.obs.lines/v1"


def _blocks_by_uid(module, cache: dict) -> dict:
    """uid -> (block, function) over every function in ``module``.

    Block uids are globally unique (``itertools.count``), so one launch's
    histogram can span several functions of the module — e.g. a reduce
    body plus its join — and still resolve unambiguously.
    """
    key = id(module)
    found = cache.get(key)
    if found is None:
        found = {}
        for function in module.functions.values():
            for block in function.blocks:
                found[block.uid] = (block, function)
        cache[key] = found
    return found


def _new_bucket() -> dict:
    return {
        "units": 0.0,
        "gpu_slots": 0.0,
        "cpu_instrs": 0,
        "instructions": 0,
        "mem_bytes": 0,
        "translations": 0,
        "devirt_hits": 0,
    }


def _charge(bucket: dict, instr, count: int, device: str, slots: float) -> None:
    if device == "gpu":
        bucket["units"] += slots * count
        bucket["gpu_slots"] += slots * count
    else:
        bucket["units"] += count
        bucket["cpu_instrs"] += count
    bucket["instructions"] += count
    if instr.op == "load":
        bucket["mem_bytes"] += instr.type.size() * count
    elif instr.op == "store":
        bucket["mem_bytes"] += instr.operands[0].type.size() * count
    if (
        instr.op == "call"
        and instr.callee is not None
        and instr.callee.name.startswith("svm.to_")
    ):
        bucket["translations"] += count
    if instr.annotations.get("devirt_chain"):
        bucket["devirt_hits"] += count


def build_line_report(observer, meta: Optional[dict] = None) -> dict:
    """Fold an observer's launch samples into a per-line report document.

    Unlocated instructions (hand-built IR, synthesized glue that no pass
    could anchor) land in an explicit ``unattributed`` bucket rather than
    vanishing, and ``totals.attributed_fraction`` reports how much of the
    modeled cost has a source line.
    """
    from ..gpu.timing import _instruction_slots

    per_line: dict[int, dict] = {}
    unattributed = _new_bucket()
    module_cache: dict = {}
    source_text = ""

    for kernel, device, block_counts in observer.line_samples:
        module = kernel.module
        if module is not None and getattr(module, "source_text", ""):
            source_text = module.source_text
        resolve = _blocks_by_uid(module, module_cache) if module is not None else {}
        for uid, count in block_counts.items():
            found = resolve.get(uid)
            if found is None:
                continue
            block, _function = found
            for instr in block.instructions:
                slots = _instruction_slots(instr) if device == "gpu" else 1.0
                loc = instr.loc
                if loc:
                    line, col = loc[0]
                    bucket = per_line.get(line)
                    if bucket is None:
                        bucket = per_line[line] = _new_bucket()
                        bucket["line"] = line
                        bucket["col"] = col
                    else:
                        bucket["col"] = min(bucket["col"], col)
                else:
                    bucket = unattributed
                _charge(bucket, instr, count, device, slots)

    totals = _new_bucket()
    for bucket in list(per_line.values()) + [unattributed]:
        for key in (
            "units",
            "gpu_slots",
            "cpu_instrs",
            "instructions",
            "mem_bytes",
            "translations",
            "devirt_hits",
        ):
            totals[key] += bucket[key]
    attributed_units = totals["units"] - unattributed["units"]
    totals["attributed_units"] = attributed_units
    totals["attributed_fraction"] = (
        attributed_units / totals["units"] if totals["units"] > 0 else 1.0
    )

    source_lines = source_text.splitlines()
    lines = sorted(per_line.values(), key=lambda b: (-b["units"], b["line"]))
    for bucket in lines:
        index = bucket["line"] - 1
        bucket["source"] = (
            source_lines[index].strip() if 0 <= index < len(source_lines) else ""
        )

    return {
        "schema": LINES_SCHEMA_VERSION,
        "meta": dict(meta or {}),
        "totals": totals,
        "lines": lines,
        "unattributed": unattributed,
    }


def annotate_workload(
    name: str,
    scale: float = 1.0,
    system=None,
    engine: str = "compiled",
    on_cpu: bool = False,
    validate: bool = True,
    observer=None,
) -> dict:
    """Compile, run and line-attribute one workload; returns the report.

    Mirrors :func:`repro.obs.profile.profile_workload` — same
    case-insensitive workload lookup, same ``KeyError`` contract for
    unknown names.
    """
    import warnings

    from ..runtime.system import ultrabook
    from ..workloads import all_workloads
    from .core import Observer

    workloads = all_workloads()
    by_lower = {key.lower(): key for key in workloads}
    key = by_lower.get(name.lower())
    if key is None:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(workloads)}"
        )
    system = system or ultrabook()
    observer = observer if observer is not None else Observer()
    workload = workloads[key]()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        outcome = workload.execute(
            None,
            system,
            on_cpu=on_cpu,
            scale=scale,
            validate=validate,
            engine=engine,
            observer=observer,
        )
    return build_line_report(
        observer,
        meta={
            "workload": key,
            "system": system.name,
            "engine": engine,
            "scale": scale,
            "device": outcome.device,
        },
    )


def render_line_report(doc: dict, top: int = 20) -> str:
    """Human-readable hot-line table for one report document."""
    meta = doc.get("meta", {})
    totals = doc["totals"]
    out = []
    title = meta.get("workload", "report")
    context = ", ".join(
        f"{key}={meta[key]}"
        for key in ("system", "engine", "scale", "device")
        if key in meta
    )
    out.append(f"Hot lines: {title}" + (f" ({context})" if context else ""))
    out.append(
        "attributed {:.1%} of {:,.0f} modeled cost units "
        "across {} source line(s)".format(
            totals["attributed_fraction"], totals["units"], len(doc["lines"])
        )
    )
    out.append("")
    header = (
        f"{'UNITS':>14} {'%':>6} {'GPU-SLOTS':>12} {'CPU-INSTR':>10} "
        f"{'MEM-BYTES':>12} {'XLAT':>8} {'DEVIRT':>7}  LINE  SOURCE"
    )
    out.append(header)
    out.append("-" * len(header))
    total_units = totals["units"] or 1.0
    for bucket in doc["lines"][:top]:
        out.append(
            "{units:>14,.0f} {pct:>6.1%} {gpu:>12,.0f} {cpu:>10,} "
            "{mem:>12,} {xlat:>8,} {devirt:>7,}  {line:>4}  {source}".format(
                units=bucket["units"],
                pct=bucket["units"] / total_units,
                gpu=bucket["gpu_slots"],
                cpu=bucket["cpu_instrs"],
                mem=bucket["mem_bytes"],
                xlat=bucket["translations"],
                devirt=bucket["devirt_hits"],
                line=bucket["line"],
                source=bucket.get("source", ""),
            )
        )
    una = doc["unattributed"]
    if una["units"]:
        out.append(
            "{units:>14,.0f} {pct:>6.1%} {gpu:>12,.0f} {cpu:>10,} "
            "{mem:>12,} {xlat:>8,} {devirt:>7,}     ?  <no source location>".format(
                units=una["units"],
                pct=una["units"] / total_units,
                gpu=una["gpu_slots"],
                cpu=una["cpu_instrs"],
                mem=una["mem_bytes"],
                xlat=una["translations"],
                devirt=una["devirt_hits"],
            )
        )
    return "\n".join(out)

