"""Chrome ``trace_event`` export for an :class:`~repro.obs.core.Observer`.

Emits the JSON object form of the Trace Event Format (the one
``about://tracing`` and Perfetto load directly): ``traceEvents`` plus
``displayTimeUnit``/``otherData``.  Two threads of one process (plus two
more when the run used the task-graph runtime):

* **tid 0 — host (wall clock)**: every observer span as a complete
  ("X") event, positioned by its epoch-relative start time.  Nesting
  emerges from containment, exactly how Chrome renders same-tid stacks.
* **tid 1 — device (simulated)**: the per-construct simulated timeline.
  Simulated seconds have no wall-clock anchor, so constructs are laid
  out sequentially from zero, each with its attributed phases (jit,
  launch, reduce_tree, host_join) as nested events and its engine
  counters as a counter ("C") sample.
* **tids 2/3 — gpu/cpu (graph virtual)**: present only when the run used
  the task-graph runtime (:mod:`repro.runtime.graph`).  Each
  ``graph_construct`` span is positioned by its *virtual* start/finish
  clocks, so independent constructs placed on different devices visibly
  overlap.

The document carries ``schema: repro.obs.trace/v1`` at top level (Chrome
ignores unknown keys) and :func:`validate_trace` is the dependency-free
structural check used by tests and the CI smoke jobs.
"""

from __future__ import annotations

from typing import Optional

TRACE_SCHEMA_VERSION = "repro.obs.trace/v1"

#: counter series sampled per construct onto the device timeline
COUNTER_SERIES = (
    "engine.instructions",
    "engine.translations",
    "mem_events.kept",
)


class TraceSchemaError(ValueError):
    """A trace document does not match the published schema."""


def _span_events(span, depth: int) -> list:
    events = [
        {
            "name": span.name,
            "cat": span.category or "span",
            "ph": "X",
            "pid": 0,
            "tid": 0,
            "ts": span.start_seconds * 1e6,
            "dur": span.wall_seconds * 1e6,
            "args": dict(span.attrs, sim_seconds=span.sim_seconds),
        }
    ]
    for child in span.children:
        events.extend(_span_events(child, depth + 1))
    return events


def _construct_events(constructs) -> list:
    events = []
    cursor = 0.0
    for record in constructs:
        start = cursor
        dur = record.seconds * 1e6
        events.append(
            {
                "name": f"{record.kernel} [{record.construct}]",
                "cat": "construct",
                "ph": "X",
                "pid": 0,
                "tid": 1,
                "ts": start,
                "dur": dur,
                "args": {
                    "device": record.device,
                    "n": record.n,
                    "energy_joules": record.energy_joules,
                },
            }
        )
        phase_cursor = start
        for phase, seconds in record.phases.items():
            events.append(
                {
                    "name": phase,
                    "cat": "phase",
                    "ph": "X",
                    "pid": 0,
                    "tid": 1,
                    "ts": phase_cursor,
                    "dur": seconds * 1e6,
                    "args": {},
                }
            )
            phase_cursor += seconds * 1e6
        series = {
            name: record.counters[name]
            for name in COUNTER_SERIES
            if name in record.counters
        }
        if series:
            events.append(
                {
                    "name": "engine",
                    "cat": "counters",
                    "ph": "C",
                    "pid": 0,
                    "tid": 1,
                    "ts": start + dur,
                    "args": series,
                }
            )
        cursor = start + dur
    return events


#: tid per device on the task-graph virtual timeline (tids 0/1 are the
#: host/device sequential tracks).
_GRAPH_TIDS = {"gpu": 2, "cpu": 3}


def _graph_events(span, events: list, seen_tids: set) -> None:
    """Task-graph construct spans, positioned by their *virtual* clocks
    on one track per device — overlapping constructs genuinely overlap
    in Perfetto, unlike the sequential tid-1 layout."""
    if span.category == "graph_construct":
        device = span.attrs.get("device", "gpu")
        tid = _GRAPH_TIDS.get(device, 2)
        start = span.attrs.get("virtual_start", 0.0)
        finish = span.attrs.get("virtual_finish", start)
        seen_tids.add(tid)
        events.append(
            {
                "name": span.name,
                "cat": "graph_construct",
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "ts": max(0.0, start * 1e6),
                "dur": max(0.0, (finish - start) * 1e6),
                "args": dict(span.attrs),
            }
        )
    for child in span.children:
        _graph_events(child, events, seen_tids)


def build_trace(observer, meta: Optional[dict] = None) -> dict:
    """Assemble the Chrome-loadable trace document from an observer."""
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro simulator"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "host (wall clock)"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": 1,
            "args": {"name": "device (simulated)"},
        },
    ]
    for child in observer.root.children:
        events.extend(_span_events(child, 0))
    events.extend(_construct_events(observer.constructs))
    graph_events: list = []
    graph_tids: set = set()
    _graph_events(observer.root, graph_events, graph_tids)
    if graph_events:
        names = {2: "gpu (graph virtual)", 3: "cpu (graph virtual)"}
        for tid in sorted(graph_tids):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": names[tid]},
                }
            )
        events.extend(graph_events)
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }


def write_trace(observer, path: str, meta: Optional[dict] = None) -> dict:
    """Build, validate and write a trace document; returns it."""
    import json

    doc = build_trace(observer, meta)
    validate_trace(doc)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1)
    return doc


_NUMBER = (int, float)
_PHASES = ("X", "C", "M")


def _fail(errors, path, message) -> None:
    errors.append(f"{path}: {message}")


def validate_trace(doc) -> None:
    """Structural validation; raises :class:`TraceSchemaError` listing
    every problem.  Checks what Chrome actually needs to load the file:
    the JSON object form, and for each event a name, a known phase, and
    non-negative microsecond timestamps/durations."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        raise TraceSchemaError("trace document must be a JSON object")
    if doc.get("schema") != TRACE_SCHEMA_VERSION:
        _fail(
            errors,
            "schema",
            f"expected {TRACE_SCHEMA_VERSION!r}, got {doc.get('schema')!r}",
        )
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        _fail(errors, "traceEvents", "missing or not an array")
        events = []
    if not isinstance(doc.get("otherData"), dict):
        _fail(errors, "otherData", "missing or not an object")
    for index, event in enumerate(events):
        path = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            _fail(errors, path, "expected an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            _fail(errors, f"{path}.name", "missing or not a non-empty string")
        ph = event.get("ph")
        if ph not in _PHASES:
            _fail(errors, f"{path}.ph", f"{ph!r} not one of {list(_PHASES)}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                _fail(errors, f"{path}.{key}", "missing or not an integer")
        if "args" in event and not isinstance(event["args"], dict):
            _fail(errors, f"{path}.args", "not an object")
        if ph in ("X", "C"):
            ts = event.get("ts")
            if not isinstance(ts, _NUMBER) or isinstance(ts, bool) or ts < 0:
                _fail(errors, f"{path}.ts", "missing or negative")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, _NUMBER) or isinstance(dur, bool) or dur < 0:
                _fail(errors, f"{path}.dur", "missing or negative")
    if errors:
        raise TraceSchemaError(
            "trace does not match schema:\n  " + "\n  ".join(errors)
        )
