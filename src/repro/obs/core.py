"""Observability core: hierarchical phase spans and a counter registry.

The runtime, both execution engines, the timing models and the pass
pipeline all emit into one :class:`Observer` when the caller attaches one
(``ConcordRuntime(..., observer=...)``, ``compile_source(...,
observer=...)``).  Everything here is strictly opt-in: every emission site
guards on ``observer is not None`` (or on a ``counters is not None``
registry reference), so a runtime built without an observer pays nothing —
the tier-1 suite and ``bench_engine_throughput.py`` run the exact code
paths they ran before this module existed.

Three pieces:

* :class:`Span` — one timed phase (compile, SVM-lower, JIT, launch,
  per-work-group reduce, host join, ...) with wall-clock duration,
  optional *simulated* seconds, free-form attributes and child spans.
* :class:`CounterRegistry` — a flat name -> integer/float map with an
  ``add`` hot path; the engines, cache models, private-memory pool and
  code cache publish into it (instructions, flops, mem events
  kept/dropped, cache hits/misses, pool reuse, code-cache hits).
* :class:`Observer` — owns the span tree, the registry and the per-kernel
  profiles; :meth:`Observer.record_launch` is how the runtime attributes
  one parallel construct's simulated seconds to named phases.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from .profile import ConstructProfile, KernelProfile


class CounterRegistry:
    """Flat metric registry: ``name -> number``.

    ``add`` is the only hot-path operation; everything else is for
    reporting.  Counter names are dotted paths by convention
    (``engine.instructions``, ``gpu.l3.hits``, ``private_pool.reuse``).
    """

    __slots__ = ("_counters", "_sink")

    def __init__(self):
        self._counters: dict[str, float] = {}
        # Optional streaming forward (repro.obs.telemetry): when a
        # Telemetry pipeline is attached, every add() is mirrored as one
        # "counter" event.  Detached, the cost is a single is-None check.
        self._sink = None

    def add(self, name: str, amount=1) -> None:
        counters = self._counters
        counters[name] = counters.get(name, 0) + amount
        sink = self._sink
        if sink is not None:
            sink(name, amount)

    def get(self, name: str, default=0):
        return self._counters.get(name, default)

    def __getitem__(self, name: str):
        return self._counters.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __len__(self) -> int:
        return len(self._counters)

    def as_dict(self) -> dict:
        """Sorted snapshot (stable for JSON output and comparisons)."""
        return dict(sorted(self._counters.items()))

    def merge(self, other: "CounterRegistry") -> None:
        for name, value in other._counters.items():
            self.add(name, value)

    def clear(self) -> None:
        self._counters.clear()


@dataclass
class Span:
    """One phase of work, possibly nested inside another phase.

    ``wall_seconds`` is host wall-clock time spent inside the span;
    ``sim_seconds`` is simulated device time attributed to it (0.0 when
    the span only brackets host work, e.g. compilation).
    """

    name: str
    category: str = ""
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    #: wall-clock start relative to the observer's epoch (first clock
    #: reading); lets exporters lay spans on an absolute timeline.
    start_seconds: float = 0.0
    attrs: dict = field(default_factory=dict)
    children: list = field(default_factory=list)

    def child(self, name: str, category: str = "") -> "Span":
        span = Span(name=name, category=category)
        self.children.append(span)
        return span

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "category": self.category,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
            "start_seconds": self.start_seconds,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def iter_all(self):
        yield self
        for child in self.children:
            yield from child.iter_all()


class _SpanContext:
    """Context manager pushed/popped by :meth:`Observer.span`."""

    __slots__ = ("observer", "span", "_start")

    def __init__(self, observer: "Observer", span: Span):
        self.observer = observer
        self.span = span
        self._start = 0.0

    def __enter__(self) -> Span:
        observer = self.observer
        observer._stack.append(self.span)
        telemetry = observer.telemetry
        if telemetry is not None:
            telemetry.emit(
                "span_open", self.span.name, category=self.span.category
            )
        self._start = observer._clock()
        if not self.span.start_seconds:
            self.span.start_seconds = self._start - observer._epoch
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        observer = self.observer
        elapsed = observer._clock() - self._start
        self.span.wall_seconds += elapsed
        stack = observer._stack
        if stack and stack[-1] is self.span:
            stack.pop()
        telemetry = observer.telemetry
        if telemetry is not None:
            telemetry.emit(
                "span_close",
                self.span.name,
                category=self.span.category,
                wall_seconds=elapsed,
            )
        # Self-accounting: how much wall time the observer itself brackets.
        observer.counters.add("obs.span_ns", elapsed * 1e9)
        return False


class Observer:
    """Collects spans, counters and per-kernel profiles for one session.

    One observer may watch a whole pipeline: compilation
    (``compile_source``), any number of runtimes, and the evaluation
    harness.  It is deliberately not thread-safe — the simulator is
    single-threaded.
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        #: epoch for span start times — everything is relative to this
        self._epoch = clock()
        self.counters = CounterRegistry()
        self.root = Span(name="session", category="session")
        self._stack: list[Span] = [self.root]
        #: per-construct attribution records, in execution order
        self.constructs: list[ConstructProfile] = []
        #: kernel name -> aggregated profile
        self.kernels: dict[str, KernelProfile] = {}
        #: compiler pass statistics (name, runs, changed, seconds)
        self.pass_stats: list[dict] = []
        #: per-launch (kernel IR function, device, merged block counts)
        #: samples for post-hoc source-line attribution — see
        #: :mod:`repro.obs.lines`.
        self.line_samples: list = []
        #: optional streaming pipeline (:class:`repro.obs.telemetry.Telemetry`);
        #: every emission site guards on ``is not None``, so an observer
        #: without telemetry behaves exactly as before.
        self.telemetry = None

    # -- streaming telemetry ---------------------------------------------

    def attach_telemetry(self, telemetry) -> None:
        """Attach a :class:`~repro.obs.telemetry.Telemetry` pipeline:
        spans, launches and counter deltas stream through it from now
        on, and its ring becomes the flight recorder's postmortem
        window.  Attach before running anything observed, or the
        stream's counter totals will miss the counters that predate it."""
        self.telemetry = telemetry
        telemetry.ring._counters = self.counters
        self.counters._sink = telemetry._on_counter

    def detach_telemetry(self) -> None:
        if self.telemetry is not None:
            self.telemetry.ring._counters = None
        self.counters._sink = None
        self.telemetry = None

    def open_span_names(self) -> list:
        """Names of the currently open span stack, outermost first
        (excluding the session root) — the flight recorder's context."""
        return [span.name for span in self._stack[1:]]

    # -- spans -----------------------------------------------------------

    @property
    def current_span(self) -> Span:
        return self._stack[-1]

    def span(self, name: str, category: str = "", **attrs) -> _SpanContext:
        """Open a child span of the current span; use as a context
        manager.  ``attrs`` are attached verbatim."""
        span = self.current_span.child(name, category)
        if attrs:
            span.attrs.update(attrs)
        return _SpanContext(self, span)

    def spans(self, category: Optional[str] = None) -> list[Span]:
        """All spans (depth-first), optionally filtered by category."""
        found = [s for s in self.root.iter_all() if s is not self.root]
        if category is None:
            return found
        return [s for s in found if s.category == category]

    # -- launch / kernel attribution -------------------------------------

    def record_launch(
        self,
        kernel: str,
        construct: str,
        device: str,
        n: int,
        seconds: float,
        energy_joules: float,
        phases: dict,
        counters: Optional[dict] = None,
    ) -> ConstructProfile:
        """Attribute one parallel construct's simulated time to phases.

        ``phases`` maps phase name -> simulated seconds; ``seconds`` is
        the construct's total simulated time (phases should sum to it —
        the profile records the attributed fraction so gaps are visible
        rather than silent).
        """
        record = ConstructProfile(
            index=len(self.constructs),
            kernel=kernel,
            construct=construct,
            device=device,
            n=n,
            seconds=seconds,
            energy_joules=energy_joules,
            phases=dict(phases),
            counters=dict(counters or {}),
        )
        self.constructs.append(record)
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.emit(
                "launch",
                kernel,
                construct=construct,
                device=device,
                n=n,
                seconds=seconds,
                energy_joules=energy_joules,
            )
        profile = self.kernels.get(kernel)
        if profile is None:
            profile = self.kernels[kernel] = KernelProfile(
                kernel=kernel, construct=construct
            )
        profile.absorb(record)
        return record

    def record_kernel_trace(self, kernel, device: str, block_counts: dict) -> None:
        """Keep one launch's executed-block histogram for line attribution.

        ``kernel`` is the IR :class:`~repro.ir.values.Function` that ran
        (its module is kept alive through it); ``block_counts`` maps block
        uid -> times executed, merged across all work items of the launch.
        Attribution happens lazily in :mod:`repro.obs.lines` — recording is
        a single append, so observed runs stay cheap.
        """
        self.line_samples.append((kernel, device, block_counts))

    # -- pass pipeline ----------------------------------------------------

    def record_pass_stats(self, stats) -> None:
        """Fold a :class:`~repro.passes.pipeline.PassManager`'s stats in
        (``stats`` is an iterable of objects with name/runs/changed/
        seconds attributes)."""
        for stat in stats:
            self.pass_stats.append(
                {
                    "name": stat.name,
                    "runs": stat.runs,
                    "changed": stat.changed,
                    "seconds": stat.seconds,
                }
            )
            self.counters.add(f"passes.{stat.name}.runs", stat.runs)
            self.counters.add(f"passes.{stat.name}.changed", stat.changed)
