"""Per-kernel / per-construct profiles and the profile document.

A profile attributes each parallel construct's simulated seconds to named
phases (``jit``, ``launch``, ``reduce_tree``, ``host_join``), aggregates
the same attribution per IR kernel, and carries the counter-registry
snapshot, compiler pass statistics and the span tree.  The document shape
is defined (and checked) by :mod:`repro.obs.schema`;
:func:`profile_workload` is the one-call entry the ``python -m repro
profile`` CLI and the CI smoke job use.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Optional

#: Version tag stamped into every emitted document.
PROFILE_SCHEMA_VERSION = "repro.obs.profile/v1"

#: Canonical phase names (documents may use any subset).
PHASES = ("jit", "launch", "reduce_tree", "host_join")


@dataclass
class ConstructProfile:
    """Attribution record for one parallel construct execution."""

    index: int
    kernel: str
    construct: str  # "for" | "reduce"
    device: str  # "cpu" | "gpu" | "hybrid"
    n: int
    seconds: float
    energy_joules: float
    phases: dict = field(default_factory=dict)  # phase name -> sim seconds
    counters: dict = field(default_factory=dict)

    @property
    def attributed_seconds(self) -> float:
        return sum(self.phases.values())

    @property
    def attributed_fraction(self) -> float:
        if self.seconds <= 0.0:
            return 1.0
        return min(1.0, self.attributed_seconds / self.seconds)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kernel": self.kernel,
            "construct": self.construct,
            "device": self.device,
            "n": self.n,
            "seconds": self.seconds,
            "energy_joules": self.energy_joules,
            "phases": dict(self.phases),
            "attributed_seconds": self.attributed_seconds,
            "attributed_fraction": self.attributed_fraction,
            "counters": dict(self.counters),
        }


@dataclass
class KernelProfile:
    """Aggregated attribution for one IR kernel across all its launches."""

    kernel: str
    construct: str
    launches: int = 0
    work_items: int = 0
    seconds: float = 0.0
    energy_joules: float = 0.0
    phases: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    def absorb(self, record: ConstructProfile) -> None:
        self.launches += 1
        self.work_items += record.n
        self.seconds += record.seconds
        self.energy_joules += record.energy_joules
        for name, value in record.phases.items():
            self.phases[name] = self.phases.get(name, 0.0) + value
        for name, value in record.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    def to_dict(self) -> dict:
        attributed = sum(self.phases.values())
        return {
            "kernel": self.kernel,
            "construct": self.construct,
            "launches": self.launches,
            "work_items": self.work_items,
            "seconds": self.seconds,
            "energy_joules": self.energy_joules,
            "phases": dict(self.phases),
            "attributed_seconds": attributed,
            "attributed_fraction": (
                min(1.0, attributed / self.seconds) if self.seconds > 0 else 1.0
            ),
            "counters": dict(self.counters),
        }


def build_profile(observer, meta: Optional[dict] = None) -> dict:
    """Assemble the JSON-serializable profile document from an observer."""
    constructs = [record.to_dict() for record in observer.constructs]
    kernels = {
        name: profile.to_dict() for name, profile in sorted(observer.kernels.items())
    }
    doc = {
        "schema": PROFILE_SCHEMA_VERSION,
        "meta": dict(meta or {}),
        "totals": {
            "constructs": len(constructs),
            "seconds": sum(c["seconds"] for c in constructs),
            "energy_joules": sum(c["energy_joules"] for c in constructs),
            "attributed_seconds": sum(c["attributed_seconds"] for c in constructs),
        },
        "constructs": constructs,
        "kernels": kernels,
        "counters": observer.counters.as_dict(),
        "passes": list(observer.pass_stats),
        "spans": [span.to_dict() for span in observer.root.children],
    }
    totals = doc["totals"]
    totals["attributed_fraction"] = (
        min(1.0, totals["attributed_seconds"] / totals["seconds"])
        if totals["seconds"] > 0
        else 1.0
    )
    return doc


def profile_workload(
    name: str,
    scale: float = 1.0,
    system=None,
    engine: str = "compiled",
    on_cpu: bool = False,
    validate: bool = True,
    observer=None,
    policy: Optional[str] = None,
    graph: bool = False,
) -> dict:
    """Compile, build, run and validate one workload under an observer and
    return its profile document.

    ``name`` is matched case-insensitively against the nine registered
    workloads (``bfs`` -> ``BFS``).
    """
    import warnings

    from ..runtime.system import ultrabook
    from ..workloads import all_workloads
    from .core import Observer

    workloads = all_workloads()
    by_lower = {key.lower(): key for key in workloads}
    key = by_lower.get(name.lower())
    if key is None:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(workloads)}"
        )
    system = system or ultrabook()
    observer = observer if observer is not None else Observer()
    workload = workloads[key]()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        outcome = workload.execute(
            None,
            system,
            on_cpu=on_cpu,
            scale=scale,
            validate=validate,
            engine=engine,
            observer=observer,
            policy=policy,
            graph=graph,
        )
    meta = {
        "workload": key,
        "system": system.name,
        "engine": engine,
        "scale": scale,
        "device": outcome.device,
    }
    if policy is not None:
        meta["policy"] = policy
    if graph:
        meta["graph"] = True
        if outcome.graph_stats is not None:
            meta["graph_stats"] = outcome.graph_stats.to_dict()
    return build_profile(observer, meta=meta)


def profile_to_csv(doc: dict) -> str:
    """Flatten a profile document's constructs into CSV (one row per
    construct, one column per canonical phase)."""
    import csv

    phase_names = sorted(
        {name for construct in doc["constructs"] for name in construct["phases"]}
    )
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        [
            "index",
            "kernel",
            "construct",
            "device",
            "n",
            "seconds",
            "energy_joules",
            "attributed_fraction",
            *[f"phase:{name}" for name in phase_names],
        ]
    )
    for construct in doc["constructs"]:
        writer.writerow(
            [
                construct["index"],
                construct["kernel"],
                construct["construct"],
                construct["device"],
                construct["n"],
                repr(construct["seconds"]),
                repr(construct["energy_joules"]),
                repr(construct["attributed_fraction"]),
                *[
                    repr(construct["phases"].get(name, 0.0))
                    for name in phase_names
                ],
            ]
        )
    return out.getvalue()
