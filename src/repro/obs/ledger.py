"""Persisted benchmark ledger with a regression gate (``repro bench``).

Each invocation sweeps the evaluation workloads across the paper's five
configurations (multicore CPU plus the four GPU variants of section 5),
a ``HYBRID`` column (the CPU+GPU partitioning scheduler) and a
``VECTOR`` column (the fully optimized program on the columnar NumPy
engine), measures both *simulated* device time and *host wall-clock* simulation
throughput, and appends a schema-versioned ``BENCH_<n>.json`` entry at
the ledger directory (the repo root, by convention).  Committing the
entries gives the project a durable perf history; CI's ``perf-smoke``
job re-runs the sweep and fails on kernel-throughput regressions against
the last committed entry.

Wall-clock throughput is machine-dependent, so every cell embeds a
**calibration score** — the ops/s of a fixed pure-Python loop measured
on the same host *immediately before that cell* — and the gate compares
*normalized* throughput (``instr_per_s / calibration``).  Per-cell (not
per-run) calibration matters on burstable/shared hosts whose speed
drifts during a multi-minute sweep; adjacent-in-time calibration tracks
the drift, so entries recorded on a laptop stay comparable with entries
recorded in CI.  The gate itself judges the **geometric-mean** delta
across all comparable cells: per-cell smoke-scale measurements carry a
few percent of scheduler noise each, which the geomean averages away,
while a real simulator regression moves every cell together.
"""

from __future__ import annotations

import json
import os
import re
import time
import warnings
from typing import Optional

LEDGER_SCHEMA_VERSION = "repro.bench.ledger/v1"

_LEDGER_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: norm-instr/s may drop by at most this fraction before the gate fails
REGRESSION_THRESHOLD = 0.15


class LedgerSchemaError(ValueError):
    """A ledger document does not match the published schema."""


# -- calibration -----------------------------------------------------------


def calibrate(iterations: int = 200_000, repeats: int = 5) -> float:
    """Ops/s of a fixed integer-arithmetic loop on this host.

    The loop body is frozen (three int ops per iteration); the score is
    the best of ``repeats`` timings, so one number captures how fast this
    machine runs the interpreter-style Python the simulator is made of.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0
        for i in range(iterations):
            acc = (acc + i * 3) ^ (i & 7)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return (3 * iterations) / best if best > 0 else 0.0


# -- compile-path measurement ------------------------------------------------


def measure_compile(names, registry, calibration: float, repeats: int = 2) -> list:
    """Warm-vs-cold compile seconds per workload — the ledger's
    ``COMPILE`` section.

    Cold is a full staged compile (frontend + pipeline + closure); warm
    is the same request answered entirely from a freshly populated
    artifact store (``repro.service``).  Both are best-of-``repeats``
    wall clock, normalized like the throughput cells: ``1 / (seconds ×
    calibration)`` is machine-independent with higher = better, so the
    watch gate can trend compile-path regressions with the same
    machinery it uses for simulation throughput.
    """
    import tempfile

    from ..passes import OptConfig
    from ..runtime.compiler import compile_cached, compile_source

    rows = []
    config = OptConfig.gpu_all()
    for name in names:
        cls = registry[name]
        cold = warm = float("inf")
        with tempfile.TemporaryDirectory(prefix="repro-compile-bench-") as tmp:
            from ..service import ArtifactStore

            store = ArtifactStore(tmp)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                for _ in range(max(1, repeats)):
                    start = time.perf_counter()
                    compile_source(cls.source, config, module_name=cls.name)
                    cold = min(cold, time.perf_counter() - start)
                compile_cached(
                    cls.source, config, module_name=cls.name, store=store
                )  # populate
                for _ in range(max(1, repeats)):
                    start = time.perf_counter()
                    _program, stages = compile_cached(
                        cls.source, config, module_name=cls.name, store=store
                    )
                    warm = min(warm, time.perf_counter() - start)
        denom_cold = cold * calibration
        denom_warm = warm * calibration
        rows.append(
            {
                "workload": name,
                "cold_s": cold,
                "warm_s": warm,
                "speedup": cold / warm if warm > 0 else 0.0,
                "warm_stages": stages,
                "calibration_ops_per_s": calibration,
                "norm_cold": 1.0 / denom_cold if denom_cold > 0 else 0.0,
                "norm_warm": 1.0 / denom_warm if denom_warm > 0 else 0.0,
            }
        )
    return rows


# -- measurement -----------------------------------------------------------


def _measure_once(workload, config, system, on_cpu, scale, engine, policy=None):
    """One observed run; returns (sim_seconds, wall_seconds, instructions).

    ``wall_seconds`` is the summed wall time of the *construct* spans —
    kernel execution only, excluding compilation, host-side setup and
    validation, which would otherwise dominate (and jitter) the
    throughput number at smoke scales.
    """
    from .core import Observer

    observer = Observer()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        outcome = workload.execute(
            config,
            system,
            on_cpu=on_cpu,
            scale=scale,
            validate=False,
            engine=engine,
            observer=observer,
            policy=policy,
        )
    wall = sum(span.wall_seconds for span in observer.spans("construct"))
    return outcome.seconds, wall, observer.counters.get("engine.instructions", 0)


def run_benchmarks(
    scale: float = 0.2,
    repeats: int = 1,
    system=None,
    engine: str = "compiled",
    workloads: Optional[list] = None,
    calibration: Optional[float] = None,
    progress=None,
    graph: bool = False,
) -> dict:
    """Sweep workloads × configurations and return a ledger entry.

    ``repeats`` runs each cell that many times and keeps the fastest wall
    clock (best-of-N damps scheduler noise; the simulated seconds are
    deterministic and identical across repeats).  ``progress`` is an
    optional callable fed one line per finished cell.  ``graph`` appends
    one ``GRAPH`` row per task-graph overlap scenario (see
    :mod:`repro.eval.overlap`); their simulated seconds join the perf
    history while their zeroed throughput columns keep them out of the
    wall-clock regression gate.
    """
    from ..eval.runner import WORKLOAD_ORDER
    from ..passes import OptConfig
    from ..runtime.system import ultrabook
    from ..workloads import all_workloads

    system = system or ultrabook()
    registry = all_workloads()
    names = list(workloads) if workloads else list(WORKLOAD_ORDER)
    # A fixed ``calibration`` pins every cell (deterministic tests); by
    # default each cell is normalized by a score measured right next to
    # it, because burstable hosts change speed mid-sweep.
    fixed_calibration = calibration
    run_calibration = (
        fixed_calibration if fixed_calibration is not None else calibrate()
    )

    configs = [("CPU", OptConfig.gpu_all(), True, None, None)]
    configs += [(c.label, c, False, None, None) for c in OptConfig.all_configs()]
    # Hybrid CPU+GPU partitioning on the fully optimized program — the
    # scheduler column of the sweep (see repro.sched).
    configs += [("HYBRID", OptConfig.gpu_all(), False, "hybrid", None)]
    # The fully optimized program on the columnar vector engine — same
    # simulated seconds as GPU_ALL (traces are bit-identical), but the
    # wall-clock columns record how fast the columnar engine simulates.
    configs += [("VECTOR", OptConfig.gpu_all(), False, None, "vector")]

    results = []
    for name in names:
        workload_cls = registry[name]
        for label, config, on_cpu, policy, engine_override in configs:
            if fixed_calibration is not None:
                cell_calibration = fixed_calibration
            else:
                cell_calibration = calibrate(iterations=100_000, repeats=2)
            workload = workload_cls()
            best = None
            for _ in range(max(1, repeats)):
                sim, wall, instructions = _measure_once(
                    workload, config, system, on_cpu, scale,
                    engine_override or engine, policy
                )
                if best is None or wall < best[1]:
                    best = (sim, wall, instructions)
            sim, wall, instructions = best
            instr_per_s = instructions / wall if wall > 0 else 0.0
            row = {
                "workload": name,
                "config": label,
                "sim_seconds": sim,
                "wall_seconds": wall,
                "instructions": instructions,
                "instr_per_s": instr_per_s,
                "calibration_ops_per_s": cell_calibration,
                "norm_instr_per_s": (
                    instr_per_s / cell_calibration
                    if cell_calibration > 0
                    else 0.0
                ),
            }
            results.append(row)
            if progress is not None:
                progress(
                    f"{name:>20} {label:<10} {instructions:>12,} instr  "
                    f"{instr_per_s:>14,.0f} instr/s  sim {sim:.6f}s"
                )
    if graph:
        from ..eval.overlap import overlap_rows

        for point in overlap_rows(system, scale):
            row = {
                "workload": point["scenario"],
                "config": "GRAPH",
                "sim_seconds": point["graph_seconds"],
                "wall_seconds": 0.0,
                "instructions": 0,
                "instr_per_s": 0.0,
                "norm_instr_per_s": 0.0,
                "graph_sync_seconds": point["sync_seconds"],
                "graph_speedup": point["speedup"],
                "graph_constructs": point["constructs"],
                "graph_identical": point["identical"],
            }
            results.append(row)
            if progress is not None:
                progress(
                    f"{point['scenario']:>20} {'GRAPH':<10} "
                    f"{point['constructs']:>4} constructs  "
                    f"overlap {point['speedup']:.2f}x  "
                    f"sim {point['graph_seconds']:.6f}s"
                )
    compile_rows = measure_compile(
        names, registry, run_calibration, repeats=max(1, repeats)
    )
    if progress is not None:
        for row in compile_rows:
            progress(
                f"{row['workload']:>20} {'COMPILE':<10} "
                f"cold {row['cold_s'] * 1e3:8.2f}ms  "
                f"warm {row['warm_s'] * 1e3:8.2f}ms  "
                f"({row['speedup']:.1f}x)"
            )
    return {
        "schema": LEDGER_SCHEMA_VERSION,
        "meta": {
            "system": system.name,
            "engine": engine,
            "scale": scale,
            "repeats": repeats,
            "calibration_ops_per_s": run_calibration,
            "graph": graph,
        },
        "results": results,
        "compile": compile_rows,
    }


# -- ledger files ----------------------------------------------------------


def ledger_entries(directory: str) -> list[tuple[int, str]]:
    """Sorted ``(n, path)`` for every ``BENCH_<n>.json`` in ``directory``."""
    found = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        match = _LEDGER_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return sorted(found)


def next_entry_path(directory: str) -> str:
    entries = ledger_entries(directory)
    index = entries[-1][0] + 1 if entries else 0
    return os.path.join(directory, f"BENCH_{index}.json")


def load_latest(directory: str) -> Optional[dict]:
    entries = ledger_entries(directory)
    if not entries:
        return None
    with open(entries[-1][1], encoding="utf-8") as handle:
        return json.load(handle)


def write_entry(doc: dict, directory: str) -> str:
    validate_ledger(doc)
    path = next_entry_path(directory)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


# -- diffing / gate --------------------------------------------------------


def diff_ledgers(old: dict, new: dict) -> list[dict]:
    """Per-cell normalized-throughput deltas between two entries.

    ``delta`` is the fractional change of ``norm_instr_per_s``
    (-0.2 = 20% slower than the old entry); cells present in only one
    entry are skipped — the gate only judges comparable work.
    """
    old_rows = {(r["workload"], r["config"]): r for r in old.get("results", [])}
    diffs = []
    for row in new.get("results", []):
        key = (row["workload"], row["config"])
        base = old_rows.get(key)
        if base is None:
            continue
        old_norm = base.get("norm_instr_per_s", 0.0)
        new_norm = row.get("norm_instr_per_s", 0.0)
        if old_norm <= 0:
            continue
        diffs.append(
            {
                "workload": row["workload"],
                "config": row["config"],
                "old_norm_instr_per_s": old_norm,
                "new_norm_instr_per_s": new_norm,
                "delta": (new_norm - old_norm) / old_norm,
            }
        )
    return diffs


def regressions(diffs: list, threshold: float = REGRESSION_THRESHOLD) -> list[dict]:
    """The cells whose normalized throughput dropped past ``threshold``."""
    return [d for d in diffs if d["delta"] < -threshold]


def geomean_delta(diffs: list) -> float:
    """Geometric-mean fractional change across all comparable cells.

    This is what the ``--check`` gate judges: individual smoke-scale
    cells carry scheduler noise, but a real simulator regression slows
    every cell, so the geomean separates the two.  Returns 0.0 with no
    comparable cells.
    """
    ratios = [1.0 + d["delta"] for d in diffs if 1.0 + d["delta"] > 0]
    if not ratios:
        return 0.0
    product = 1.0
    for ratio in ratios:
        product *= ratio
    return product ** (1.0 / len(ratios)) - 1.0


def format_diff(diffs: list, threshold: float = REGRESSION_THRESHOLD) -> str:
    out = [
        f"{'WORKLOAD':>20} {'CONFIG':<10} {'OLD':>12} {'NEW':>12} {'DELTA':>8}"
    ]
    for d in diffs:
        flag = "  << regression" if d["delta"] < -threshold else ""
        out.append(
            "{workload:>20} {config:<10} {old:>12.4f} {new:>12.4f} "
            "{delta:>+7.1%}{flag}".format(
                workload=d["workload"],
                config=d["config"],
                old=d["old_norm_instr_per_s"],
                new=d["new_norm_instr_per_s"],
                delta=d["delta"],
                flag=flag,
            )
        )
    out.append(f"{'geomean':>31} {'':>12} {'':>12} {geomean_delta(diffs):>+7.1%}")
    return "\n".join(out)


# -- schema ----------------------------------------------------------------

_NUMBER = (int, float)

_ROW_NUMBERS = (
    "sim_seconds",
    "wall_seconds",
    "instructions",
    "instr_per_s",
    "norm_instr_per_s",
)

_COMPILE_NUMBERS = (
    "cold_s",
    "warm_s",
    "speedup",
    "calibration_ops_per_s",
    "norm_cold",
    "norm_warm",
)


def _fail(errors, path, message) -> None:
    errors.append(f"{path}: {message}")


def validate_ledger(doc) -> None:
    """Structural validation; raises :class:`LedgerSchemaError` listing
    every problem found."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        raise LedgerSchemaError("ledger entry must be a JSON object")
    if doc.get("schema") != LEDGER_SCHEMA_VERSION:
        _fail(
            errors,
            "schema",
            f"expected {LEDGER_SCHEMA_VERSION!r}, got {doc.get('schema')!r}",
        )
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        _fail(errors, "meta", "missing or not an object")
    else:
        for key in ("system", "engine", "scale", "repeats", "calibration_ops_per_s"):
            if key not in meta:
                _fail(errors, "meta", f"missing required key {key!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        _fail(errors, "results", "missing, not an array, or empty")
        results = []
    for index, row in enumerate(results):
        path = f"results[{index}]"
        if not isinstance(row, dict):
            _fail(errors, path, "expected an object")
            continue
        for key in ("workload", "config"):
            if not isinstance(row.get(key), str) or not row.get(key):
                _fail(errors, f"{path}.{key}", "missing or not a non-empty string")
        for key in _ROW_NUMBERS:
            value = row.get(key)
            if not isinstance(value, _NUMBER) or isinstance(value, bool) or value < 0:
                _fail(errors, f"{path}.{key}", "missing or negative")
    # The COMPILE section is optional (entries before it existed lack it)
    # but must be well-formed when present.
    compile_rows = doc.get("compile")
    if compile_rows is not None:
        if not isinstance(compile_rows, list):
            _fail(errors, "compile", "expected an array")
            compile_rows = []
        for index, row in enumerate(compile_rows):
            path = f"compile[{index}]"
            if not isinstance(row, dict):
                _fail(errors, path, "expected an object")
                continue
            if not isinstance(row.get("workload"), str) or not row.get("workload"):
                _fail(errors, f"{path}.workload", "missing or not a non-empty string")
            for key in _COMPILE_NUMBERS:
                value = row.get(key)
                if not isinstance(value, _NUMBER) or isinstance(value, bool) or value < 0:
                    _fail(errors, f"{path}.{key}", "missing or negative")
    if errors:
        raise LedgerSchemaError(
            "ledger entry does not match schema:\n  " + "\n  ".join(errors)
        )
