"""Regression watch: trend analysis over the whole benchmark ledger.

``repro bench --check`` originally diffed a fresh sweep against only the
*immediately preceding* ``BENCH_<n>.json`` entry, so a slow drift — two
PRs each 9% slower — sailed under a 15% per-step threshold while costing
17% overall.  This module closes that hole by aggregating **every**
committed ledger entry into per-``(workload, config)`` trend series and
judging the *current level* against the *best sustained level* in the
history:

* each series is the ``norm_instr_per_s`` of one cell over ledger
  entries (calibrated per cell, so laptop and CI entries mix);
* the baseline is the best **window median** (window of up to
  :data:`WINDOW` points) over the *prior* points, which keeps historical
  noise out of the level: one anomalously fast old entry cannot set an
  unreachable baseline, and one slow old entry cannot mask real drift;
* a series' ``drift`` is the fractional change from that baseline to the
  raw newest point — the entry under judgment keeps the gate's full
  sensitivity to a fresh regression; the change point is the entry where
  the best window ended;
* the **verdict** gates on the geomean drift across all series (matching
  the ledger gate's noise model: a real simulator regression moves every
  cell together) and also lists every individual series past threshold.

``python -m repro watch`` renders the report; ``--check`` turns the
verdict into an exit code for CI.  The machine-readable document
(``repro.obs.watch/v1``) is what ``bench --check`` now gates on.
"""

from __future__ import annotations

import json
from typing import Optional

from .ledger import REGRESSION_THRESHOLD, ledger_entries

__all__ = [
    "WATCH_SCHEMA_VERSION",
    "WatchSchemaError",
    "analyze_series",
    "build_watch_report",
    "load_history",
    "render_watch_report",
    "validate_watch_report",
]

WATCH_SCHEMA_VERSION = "repro.obs.watch/v1"

#: Window size (in ledger entries) for the median levels.  Three points
#: reject one outlier; histories shorter than the window use what exists.
WINDOW = 3


class WatchSchemaError(ValueError):
    """A watch report does not conform to ``repro.obs.watch/v1``."""


# -- history loading --------------------------------------------------------


def load_history(directory: str) -> list[dict]:
    """Every ``BENCH_<n>.json`` in ``directory``, parsed, oldest first,
    with the ledger index attached as ``doc["entry"]``.  Unreadable
    entries are skipped (a corrupt historical file should not brick the
    watch)."""
    history = []
    for index, path in ledger_entries(directory):
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(doc, dict):
            doc["entry"] = index
            history.append(doc)
    return history


def build_series(history: list) -> dict:
    """``(workload, config) -> [(entry, norm_instr_per_s), ...]`` over
    the history.  Rows without positive normalized throughput (e.g. the
    ``GRAPH`` overlap rows, which deliberately zero their wall-clock
    columns) carry no trend signal and are skipped.

    Entries with a ``compile`` section additionally contribute
    ``(workload, "COMPILE:cold")`` and ``(workload, "COMPILE:warm")``
    series from the normalized inverse compile times (higher = better,
    calibrated like the throughput cells), so compile-path regressions
    trend through the same gate; older entries simply lack the section
    and contribute no points."""
    series: dict[tuple, list] = {}
    for doc in history:
        entry = doc.get("entry", 0)
        for row in doc.get("results", []):
            norm = row.get("norm_instr_per_s", 0.0)
            if not isinstance(norm, (int, float)) or norm <= 0:
                continue
            key = (row.get("workload"), row.get("config"))
            if not all(isinstance(part, str) and part for part in key):
                continue
            series.setdefault(key, []).append((entry, float(norm)))
        compile_rows = doc.get("compile")
        if not isinstance(compile_rows, list):
            continue
        for row in compile_rows:
            if not isinstance(row, dict):
                continue
            workload = row.get("workload")
            if not isinstance(workload, str) or not workload:
                continue
            for config, field in (
                ("COMPILE:cold", "norm_cold"),
                ("COMPILE:warm", "norm_warm"),
            ):
                norm = row.get(field, 0.0)
                if not isinstance(norm, (int, float)) or norm <= 0:
                    continue
                series.setdefault((workload, config), []).append(
                    (entry, float(norm))
                )
    return series


# -- trend analysis ---------------------------------------------------------


def _median(values: list) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def analyze_series(points: list, threshold: float = REGRESSION_THRESHOLD) -> dict:
    """Robust change-point summary of one ``(entry, norm)`` series.

    ``current`` is the newest point — the entry under judgment.  ``best``
    is the maximum **window median** over all *earlier* points: medians
    make the baseline robust (one historically slow or anomalously fast
    entry neither hides a regression nor poisons the level), while
    judging the raw newest point keeps the gate as sensitive to a fresh
    regression as the old entry-vs-entry diff.  ``drift`` is the
    fractional change from best to current, and ``best_entry`` the
    ledger entry where the best window ended — the change point to
    bisect from when the series regressed."""
    values = [norm for _, norm in points]
    current = values[-1]
    prior = values[:-1] or values
    window = min(WINDOW, len(prior))
    medians = [
        _median(prior[i : i + window]) for i in range(len(prior) - window + 1)
    ]
    best_index = max(range(len(medians)), key=lambda i: medians[i])
    best = medians[best_index]
    drift = (current - best) / best if best > 0 else 0.0
    return {
        "points": [{"entry": entry, "norm_instr_per_s": norm} for entry, norm in points],
        "current": current,
        "best": best,
        "best_entry": points[best_index + window - 1][0],
        "drift": drift,
        "regressed": drift < -threshold,
    }


def build_watch_report(
    directory: str = ".",
    threshold: float = REGRESSION_THRESHOLD,
    extra_entry: Optional[dict] = None,
) -> dict:
    """The ``repro.obs.watch/v1`` document for one ledger directory.

    ``extra_entry`` appends one not-yet-committed ledger document (the
    sweep ``bench --check`` just ran) as the newest history point, so the
    gate judges the candidate against the full committed trend."""
    history = load_history(directory)
    if extra_entry is not None:
        candidate = dict(extra_entry)
        candidate["entry"] = (history[-1]["entry"] + 1) if history else 0
        history = history + [candidate]
    series = build_series(history)
    analyzed = []
    for (workload, config), points in sorted(series.items()):
        summary = analyze_series(points, threshold)
        summary["workload"] = workload
        summary["config"] = config
        analyzed.append(summary)
    regressed = [
        {
            "workload": s["workload"],
            "config": s["config"],
            "drift": s["drift"],
            "best_entry": s["best_entry"],
        }
        for s in analyzed
        if s["regressed"]
    ]
    ratios = [1.0 + s["drift"] for s in analyzed if 1.0 + s["drift"] > 0]
    if ratios:
        product = 1.0
        for ratio in ratios:
            product *= ratio
        geomean_drift = product ** (1.0 / len(ratios)) - 1.0
    else:
        geomean_drift = 0.0
    verdict = {
        "ok": geomean_drift >= -threshold,
        "geomean_drift": geomean_drift,
        "regressed": regressed,
        "series": len(analyzed),
        "entries": len(history),
    }
    return {
        "schema": WATCH_SCHEMA_VERSION,
        "directory": directory,
        "threshold": threshold,
        "entries": [doc.get("entry", 0) for doc in history],
        "series": analyzed,
        "verdict": verdict,
    }


# -- rendering --------------------------------------------------------------


def render_watch_report(doc: dict) -> str:
    """Human-readable trend table plus the verdict line."""
    entries = doc.get("entries", [])
    out = [
        f"benchmark watch: {len(doc.get('series', []))} series over "
        f"{len(entries)} ledger entr{'y' if len(entries) == 1 else 'ies'} "
        f"({', '.join(f'BENCH_{n}' for n in entries) or 'none'})"
    ]
    if doc.get("series"):
        out.append(
            f"{'WORKLOAD':>20} {'CONFIG':<10} {'POINTS':>6} {'BEST':>12} "
            f"{'CURRENT':>12} {'DRIFT':>8}"
        )
        for series in doc["series"]:
            flag = (
                f"  << regressed since BENCH_{series['best_entry']}"
                if series["regressed"]
                else ""
            )
            out.append(
                "{workload:>20} {config:<10} {points:>6} {best:>12.4f} "
                "{current:>12.4f} {drift:>+7.1%}{flag}".format(
                    workload=series["workload"],
                    config=series["config"],
                    points=len(series["points"]),
                    best=series["best"],
                    current=series["current"],
                    drift=series["drift"],
                    flag=flag,
                )
            )
    verdict = doc.get("verdict", {})
    status = "OK" if verdict.get("ok") else "REGRESSED"
    out.append(
        f"verdict: {status} (geomean drift {verdict.get('geomean_drift', 0.0):+.1%}, "
        f"threshold -{doc.get('threshold', REGRESSION_THRESHOLD):.0%}, "
        f"{len(verdict.get('regressed', []))} series past threshold)"
    )
    return "\n".join(out)


# -- schema -----------------------------------------------------------------


def _fail(errors: list, path: str, message: str) -> None:
    errors.append(f"{path}: {message}")


def validate_watch_report(doc) -> None:
    """Structural validation; raises :class:`WatchSchemaError` listing
    every problem found."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        raise WatchSchemaError(f"report: expected object, got {type(doc).__name__}")
    if doc.get("schema") != WATCH_SCHEMA_VERSION:
        _fail(errors, "report.schema", f"expected {WATCH_SCHEMA_VERSION!r}")
    if not isinstance(doc.get("threshold"), (int, float)):
        _fail(errors, "report.threshold", "expected number")
    if not isinstance(doc.get("entries"), list):
        _fail(errors, "report.entries", "expected list")
    series = doc.get("series")
    if not isinstance(series, list):
        _fail(errors, "report.series", "expected list")
        series = []
    for index, summary in enumerate(series):
        path = f"report.series[{index}]"
        if not isinstance(summary, dict):
            _fail(errors, path, "expected object")
            continue
        for key in ("workload", "config"):
            if not isinstance(summary.get(key), str) or not summary.get(key):
                _fail(errors, f"{path}.{key}", "missing or empty")
        for key in ("current", "best", "drift"):
            if not isinstance(summary.get(key), (int, float)):
                _fail(errors, f"{path}.{key}", "expected number")
        if not isinstance(summary.get("regressed"), bool):
            _fail(errors, f"{path}.regressed", "expected bool")
        if not isinstance(summary.get("points"), list) or not summary.get("points"):
            _fail(errors, f"{path}.points", "expected non-empty list")
    verdict = doc.get("verdict")
    if not isinstance(verdict, dict):
        _fail(errors, "report.verdict", "expected object")
    else:
        if not isinstance(verdict.get("ok"), bool):
            _fail(errors, "report.verdict.ok", "expected bool")
        if not isinstance(verdict.get("geomean_drift"), (int, float)):
            _fail(errors, "report.verdict.geomean_drift", "expected number")
        if not isinstance(verdict.get("regressed"), list):
            _fail(errors, "report.verdict.regressed", "expected list")
    if errors:
        raise WatchSchemaError("; ".join(errors))
