"""Streaming telemetry: a bounded event ring plus pluggable sinks.

Until this module, ``repro.obs`` was strictly post-hoc: profiles, Chrome
traces and ledger snapshots all materialize *after* a run finishes, so a
long-running process emits nothing while it runs and a trap loses every
bit of in-flight context.  :class:`Telemetry` turns the existing
:class:`~repro.obs.core.Observer` into a live event source:

* every span open/close, counter delta, construct launch, scheduler
  decision, graph wave, declared-set violation and trap becomes one
  structured event (a flat dict — see :data:`EVENT_KINDS`);
* events stream synchronously to any number of **sinks**
  (:class:`JsonLinesSink`, :class:`MetricsTextSink`,
  :class:`AggregatorSink`) — the stream itself is lossless;
* independently, the last ``ring_capacity`` events are retained in a
  bounded :class:`EventRing` — the flight recorder's postmortem window
  (:mod:`repro.obs.flight`).  Ring evictions are *counted*, never
  silent: each one bumps the ``obs.events_dropped`` counter, mirroring
  the mem-event-cap drop accounting in :mod:`repro.exec.buffers`.

Attachment is strictly opt-in, like the observer itself::

    obs = Observer()
    tel = Telemetry(sinks=[JsonLinesSink("events.jsonl")])
    obs.attach_telemetry(tel)
    rt = ConcordRuntime(program, observer=obs)

A runtime without an observer pays nothing; an observer without
telemetry pays one ``is not None`` check per counter flush and span
edge.  The event schema is documented in ``docs/TELEMETRY.md`` and
enforced by :func:`validate_event`.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Optional

__all__ = [
    "AggregatorSink",
    "EVENT_KINDS",
    "EventRing",
    "JsonLinesSink",
    "MetricsTextSink",
    "TELEMETRY_SCHEMA_VERSION",
    "Telemetry",
    "TelemetrySchemaError",
    "validate_event",
]

TELEMETRY_SCHEMA_VERSION = "repro.obs.telemetry/v1"

#: Every event kind the pipeline emits.  ``span_open``/``span_close``
#: carry the span category (``graph_wave`` waves and ``graph_construct``
#: virtual spans arrive through these); ``counter`` events are the
#: forwarded :meth:`CounterRegistry.add` deltas; ``sched`` events are
#: policy selections and hybrid chunk dispatches; ``violation`` events
#: come from declared-set validation; ``trap`` events are written by the
#: flight recorder as it captures a bundle.
EVENT_KINDS = (
    "span_open",
    "span_close",
    "counter",
    "launch",
    "sched",
    "violation",
    "trap",
)

#: Default ring capacity — the flight recorder's last-N window.
DEFAULT_RING_CAPACITY = 1024


class TelemetrySchemaError(ValueError):
    """An event does not conform to ``repro.obs.telemetry/v1``."""


class EventRing:
    """Bounded deque of the most recent events with drop accounting.

    Appends past capacity evict the oldest event and bump the
    ``obs.events_dropped`` counter *directly* in the attached registry's
    dict — deliberately bypassing the registry's sink so the eviction
    cannot emit a counter event and recurse into another append.
    """

    __slots__ = ("capacity", "dropped", "_events", "_counters")

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._events: deque = deque()
        #: the attached observer's CounterRegistry (set by
        #: :meth:`Observer.attach_telemetry`); evictions surface there.
        self._counters = None

    def __len__(self) -> int:
        return len(self._events)

    def append(self, event: dict) -> None:
        events = self._events
        if len(events) >= self.capacity:
            events.popleft()
            self.dropped += 1
            registry = self._counters
            if registry is not None:
                # Direct write, not .add(): the drop must not become an
                # event itself (see class docstring).
                counters = registry._counters
                counters["obs.events_dropped"] = (
                    counters.get("obs.events_dropped", 0) + 1
                )
        events.append(event)

    def snapshot(self) -> list:
        """The retained events, oldest first."""
        return list(self._events)


class Telemetry:
    """The streaming pipeline: stamps events, feeds the ring and sinks.

    ``emit`` is the hot path; events are flat dicts —

    ``{"seq": int, "t": float, "kind": str, "name": str, ...attrs}``

    where ``t`` is seconds since this pipeline was created.  Sinks see
    every event in order (the stream is lossless); only the bounded ring
    forgets, and it counts what it forgot.
    """

    __slots__ = ("ring", "sinks", "_seq", "_clock", "_epoch")

    def __init__(
        self,
        sinks=(),
        ring_capacity: int = DEFAULT_RING_CAPACITY,
        clock=time.perf_counter,
    ):
        self.ring = EventRing(ring_capacity)
        self.sinks = list(sinks)
        self._seq = 0
        self._clock = clock
        self._epoch = clock()

    def emit(self, kind: str, name: str, **attrs) -> dict:
        event = {
            "seq": self._seq,
            "t": self._clock() - self._epoch,
            "kind": kind,
            "name": name,
        }
        if attrs:
            event.update(attrs)
        self._seq += 1
        self.ring.append(event)
        for sink in self.sinks:
            sink.emit(event)
        return event

    def _on_counter(self, name: str, delta) -> None:
        """Forwarding target installed into ``CounterRegistry._sink``."""
        self.emit("counter", name, delta=delta)

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    def flush(self) -> None:
        for sink in self.sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# -- sinks ----------------------------------------------------------------


class JsonLinesSink:
    """One JSON object per line, append-only — the canonical stream
    format (load with ``[json.loads(l) for l in open(path)]``)."""

    __slots__ = ("path", "_file", "events_written")

    def __init__(self, path):
        self.path = os.fspath(path)
        self._file = open(self.path, "w", encoding="utf-8")
        self.events_written = 0

    def emit(self, event: dict) -> None:
        self._file.write(json.dumps(event, separators=(",", ":")) + "\n")
        self.events_written += 1

    def flush(self) -> None:
        if not self._file.closed:
            self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


class MetricsTextSink:
    """Prometheus-style textfile snapshot of counter totals.

    Accumulates forwarded counter deltas plus per-kind event counts and
    writes the whole snapshot atomically (tmp + rename) on ``flush`` /
    ``close`` — the textfile-collector handoff shape: a node-exporter
    style scraper reads the file whenever it likes and always sees a
    complete snapshot.
    """

    __slots__ = ("path", "totals", "kinds")

    def __init__(self, path):
        self.path = os.fspath(path)
        self.totals: dict[str, float] = {}
        self.kinds: dict[str, int] = {}

    def emit(self, event: dict) -> None:
        kind = event["kind"]
        self.kinds[kind] = self.kinds.get(kind, 0) + 1
        if kind == "counter":
            name = event["name"]
            self.totals[name] = self.totals.get(name, 0) + event["delta"]

    @staticmethod
    def _metric_name(name: str) -> str:
        cleaned = "".join(
            ch if ch.isalnum() or ch == "_" else "_" for ch in name
        )
        if cleaned and cleaned[0].isdigit():
            cleaned = "_" + cleaned
        return f"repro_{cleaned}"

    def render(self) -> str:
        lines = []
        for kind in sorted(self.kinds):
            metric = self._metric_name(f"events.{kind}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {self.kinds[kind]}")
        for name in sorted(self.totals):
            metric = self._metric_name(name)
            value = self.totals[name]
            rendered = repr(float(value)) if isinstance(value, float) else str(value)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {rendered}")
        return "\n".join(lines) + "\n"

    def flush(self) -> None:
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(self.render())
        os.replace(tmp, self.path)

    close = flush


class AggregatorSink:
    """In-process aggregation: per-kind event counts, per-name counter
    totals, and per-span-name wall-time/occurrence rollups.

    ``counter_totals`` reconstructs the observer's registry from the
    stream alone (minus ``obs.events_dropped``, which is bookkeeping
    *about* the stream and deliberately never enters it) — the
    equivalence the telemetry property test asserts.

    ``span_samples`` (default 0 = off, preserving the historical
    rollup-only footprint) bounds a per-span-name reservoir of recent
    ``wall_seconds`` samples so :meth:`percentiles` can report latency
    quantiles — the compile service uses this for its per-request
    p50/p99 numbers.
    """

    __slots__ = (
        "events_seen",
        "kinds",
        "counter_totals",
        "spans",
        "launches",
        "span_samples",
        "_samples",
    )

    def __init__(self, span_samples: int = 0):
        self.events_seen = 0
        self.kinds: dict[str, int] = {}
        self.counter_totals: dict[str, float] = {}
        #: span name -> [count, total wall seconds]
        self.spans: dict[str, list] = {}
        #: launch rollup: (kernel, device) -> [count, items, sim seconds]
        self.launches: dict[tuple, list] = {}
        self.span_samples = int(span_samples)
        #: span name -> deque of recent wall_seconds (only when sampling)
        self._samples: dict[str, deque] = {}

    def percentiles(self, name: str, quantiles=(50, 99)) -> dict:
        """Latency quantiles (nearest-rank over the retained samples) for
        span ``name``, as ``{"p50": seconds, ...}`` — empty when sampling
        is off or the span never closed."""
        samples = sorted(self._samples.get(name, ()))
        if not samples:
            return {}
        out = {}
        for q in quantiles:
            rank = max(0, min(len(samples) - 1, int(len(samples) * q / 100)))
            out[f"p{q}"] = samples[rank]
        return out

    def emit(self, event: dict) -> None:
        self.events_seen += 1
        kind = event["kind"]
        self.kinds[kind] = self.kinds.get(kind, 0) + 1
        if kind == "counter":
            name = event["name"]
            self.counter_totals[name] = (
                self.counter_totals.get(name, 0) + event["delta"]
            )
        elif kind == "span_close":
            entry = self.spans.setdefault(event["name"], [0, 0.0])
            entry[0] += 1
            entry[1] += event.get("wall_seconds", 0.0)
            if self.span_samples > 0:
                bucket = self._samples.get(event["name"])
                if bucket is None:
                    bucket = self._samples[event["name"]] = deque(
                        maxlen=self.span_samples
                    )
                bucket.append(event.get("wall_seconds", 0.0))
        elif kind == "launch":
            key = (event["name"], event.get("device", ""))
            entry = self.launches.setdefault(key, [0, 0, 0.0])
            entry[0] += 1
            entry[1] += event.get("n", 0)
            entry[2] += event.get("seconds", 0.0)

    def as_dict(self) -> dict:
        return {
            "schema": TELEMETRY_SCHEMA_VERSION,
            "events_seen": self.events_seen,
            "kinds": dict(sorted(self.kinds.items())),
            "counter_totals": dict(sorted(self.counter_totals.items())),
            "spans": {
                name: {"count": count, "wall_seconds": wall}
                for name, (count, wall) in sorted(self.spans.items())
            },
            "launches": {
                f"{kernel}@{device}": {
                    "count": count,
                    "items": items,
                    "sim_seconds": seconds,
                }
                for (kernel, device), (count, items, seconds) in sorted(
                    self.launches.items()
                )
            },
        }


# -- schema ----------------------------------------------------------------


def _fail(errors: list, path: str, message: str) -> None:
    errors.append(f"{path}: {message}")


def validate_event(event, path: str = "event") -> None:
    """Structural check of one streamed event against
    ``repro.obs.telemetry/v1``; raises :class:`TelemetrySchemaError`
    listing every problem found."""
    errors: list[str] = []
    if not isinstance(event, dict):
        raise TelemetrySchemaError(f"{path}: expected object, got {type(event).__name__}")
    for key, kinds in (("seq", (int,)), ("t", (int, float)), ("kind", (str,)), ("name", (str,))):
        if key not in event:
            _fail(errors, path, f"missing required key {key!r}")
        elif not isinstance(event[key], kinds) or isinstance(event[key], bool):
            _fail(errors, f"{path}.{key}", f"expected {kinds[0].__name__}")
    kind = event.get("kind")
    if isinstance(kind, str) and kind not in EVENT_KINDS:
        _fail(errors, f"{path}.kind", f"unknown kind {kind!r} (expected one of {EVENT_KINDS})")
    if kind == "counter" and "delta" not in event:
        _fail(errors, path, "counter event missing 'delta'")
    if kind == "span_close" and "wall_seconds" not in event:
        _fail(errors, path, "span_close event missing 'wall_seconds'")
    if kind == "launch":
        for key in ("device", "n", "seconds"):
            if key not in event:
                _fail(errors, path, f"launch event missing {key!r}")
    if errors:
        raise TelemetrySchemaError("; ".join(errors))


def validate_events(events, path: str = "events") -> None:
    """Validate a whole stream: every event well-formed, ``seq`` strictly
    increasing (gaps are fine — a ring snapshot is a suffix)."""
    last_seq: Optional[int] = None
    for i, event in enumerate(events):
        validate_event(event, path=f"{path}[{i}]")
        seq = event["seq"]
        if last_seq is not None and seq <= last_seq:
            raise TelemetrySchemaError(
                f"{path}[{i}]: seq {seq} not increasing (previous {last_seq})"
            )
        last_seq = seq
