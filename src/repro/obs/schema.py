"""Schema for the profile document emitted by :mod:`repro.obs.profile`.

``PROFILE_SCHEMA`` is a JSON-Schema-shaped description (draft-07 subset)
kept for documentation and external tooling; :func:`validate_profile` is a
dependency-free structural validator used by the CLI and the CI smoke job
(the container must not grow a ``jsonschema`` dependency).
"""

from __future__ import annotations

from .profile import PROFILE_SCHEMA_VERSION


class ProfileSchemaError(ValueError):
    """A profile document does not match the published schema."""


_NUMBER = (int, float)

#: JSON-Schema (draft-07 subset) mirror of what validate_profile enforces.
PROFILE_SCHEMA = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro observability profile",
    "type": "object",
    "required": [
        "schema",
        "meta",
        "totals",
        "constructs",
        "kernels",
        "counters",
        "passes",
        "spans",
    ],
    "properties": {
        "schema": {"const": PROFILE_SCHEMA_VERSION},
        "meta": {"type": "object"},
        "totals": {
            "type": "object",
            "required": [
                "constructs",
                "seconds",
                "energy_joules",
                "attributed_seconds",
                "attributed_fraction",
            ],
        },
        "constructs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": [
                    "index",
                    "kernel",
                    "construct",
                    "device",
                    "n",
                    "seconds",
                    "energy_joules",
                    "phases",
                    "attributed_seconds",
                    "attributed_fraction",
                    "counters",
                ],
                "properties": {
                    "construct": {"enum": ["for", "reduce"]},
                    "device": {"enum": ["cpu", "gpu", "hybrid"]},
                    "phases": {
                        "type": "object",
                        "additionalProperties": {"type": "number", "minimum": 0},
                    },
                    "attributed_fraction": {
                        "type": "number",
                        "minimum": 0,
                        "maximum": 1,
                    },
                },
            },
        },
        "kernels": {"type": "object"},
        "counters": {
            "type": "object",
            "additionalProperties": {"type": "number"},
        },
        "passes": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "runs", "changed", "seconds"],
            },
        },
        "spans": {"type": "array"},
    },
}


def _fail(errors: list, path: str, message: str) -> None:
    errors.append(f"{path}: {message}")


def _check_number(errors, path, value, minimum=None, maximum=None) -> None:
    if not isinstance(value, _NUMBER) or isinstance(value, bool):
        _fail(errors, path, f"expected a number, got {type(value).__name__}")
        return
    if minimum is not None and value < minimum:
        _fail(errors, path, f"{value} < minimum {minimum}")
    if maximum is not None and value > maximum:
        _fail(errors, path, f"{value} > maximum {maximum}")


def _check_phases(errors, path, phases) -> None:
    if not isinstance(phases, dict):
        _fail(errors, path, "expected an object")
        return
    for name, value in phases.items():
        if not isinstance(name, str) or not name:
            _fail(errors, path, f"phase name {name!r} is not a non-empty string")
        _check_number(errors, f"{path}.{name}", value, minimum=0)


def _check_construct(errors, path, construct) -> None:
    if not isinstance(construct, dict):
        _fail(errors, path, "expected an object")
        return
    for key in (
        "index",
        "kernel",
        "construct",
        "device",
        "n",
        "seconds",
        "energy_joules",
        "phases",
        "attributed_seconds",
        "attributed_fraction",
        "counters",
    ):
        if key not in construct:
            _fail(errors, path, f"missing required key {key!r}")
    if "construct" in construct and construct["construct"] not in ("for", "reduce"):
        _fail(errors, f"{path}.construct", f"{construct['construct']!r} not in ['for', 'reduce']")
    if "device" in construct and construct["device"] not in ("cpu", "gpu", "hybrid"):
        _fail(
            errors,
            f"{path}.device",
            f"{construct['device']!r} not in ['cpu', 'gpu', 'hybrid']",
        )
    if "kernel" in construct and not isinstance(construct["kernel"], str):
        _fail(errors, f"{path}.kernel", "expected a string")
    for key in ("seconds", "energy_joules", "attributed_seconds"):
        if key in construct:
            _check_number(errors, f"{path}.{key}", construct[key], minimum=0)
    if "n" in construct:
        _check_number(errors, f"{path}.n", construct["n"], minimum=0)
    if "attributed_fraction" in construct:
        _check_number(
            errors,
            f"{path}.attributed_fraction",
            construct["attributed_fraction"],
            minimum=0,
            maximum=1,
        )
    if "phases" in construct:
        _check_phases(errors, f"{path}.phases", construct["phases"])
    if "counters" in construct and not isinstance(construct["counters"], dict):
        _fail(errors, f"{path}.counters", "expected an object")


def _check_span(errors, path, span) -> None:
    if not isinstance(span, dict):
        _fail(errors, path, "expected an object")
        return
    for key in ("name", "category", "wall_seconds", "sim_seconds"):
        if key not in span:
            _fail(errors, path, f"missing required key {key!r}")
    if "name" in span and not isinstance(span["name"], str):
        _fail(errors, f"{path}.name", "expected a string")
    for key in ("wall_seconds", "sim_seconds"):
        if key in span:
            _check_number(errors, f"{path}.{key}", span[key], minimum=0)
    for index, child in enumerate(span.get("children", ())):
        _check_span(errors, f"{path}.children[{index}]", child)


def validate_profile(doc, min_attributed_fraction: float = 0.95) -> None:
    """Structurally validate a profile document; raise
    :class:`ProfileSchemaError` listing every problem found.

    Beyond pure structure, this enforces the acceptance contract: every
    construct that cost simulated time must attribute at least
    ``min_attributed_fraction`` of its seconds to named phases.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        raise ProfileSchemaError("profile document must be a JSON object")
    if doc.get("schema") != PROFILE_SCHEMA_VERSION:
        _fail(
            errors,
            "schema",
            f"expected {PROFILE_SCHEMA_VERSION!r}, got {doc.get('schema')!r}",
        )
    for key in ("meta", "totals", "kernels", "counters"):
        if not isinstance(doc.get(key), dict):
            _fail(errors, key, "missing or not an object")
    for key in ("constructs", "passes", "spans"):
        if not isinstance(doc.get(key), list):
            _fail(errors, key, "missing or not an array")

    totals = doc.get("totals")
    if isinstance(totals, dict):
        for key in (
            "constructs",
            "seconds",
            "energy_joules",
            "attributed_seconds",
            "attributed_fraction",
        ):
            if key not in totals:
                _fail(errors, "totals", f"missing required key {key!r}")
            else:
                _check_number(errors, f"totals.{key}", totals[key], minimum=0)

    constructs = doc.get("constructs")
    if isinstance(constructs, list):
        for index, construct in enumerate(constructs):
            path = f"constructs[{index}]"
            _check_construct(errors, path, construct)
            if (
                isinstance(construct, dict)
                and isinstance(construct.get("seconds"), _NUMBER)
                and construct.get("seconds", 0) > 0
                and isinstance(construct.get("attributed_fraction"), _NUMBER)
                and construct["attributed_fraction"] < min_attributed_fraction
            ):
                _fail(
                    errors,
                    f"{path}.attributed_fraction",
                    f"{construct['attributed_fraction']:.4f} < required "
                    f"{min_attributed_fraction} — simulated time is leaking "
                    "out of the named phases",
                )

    counters = doc.get("counters")
    if isinstance(counters, dict):
        for name, value in counters.items():
            if not isinstance(name, str):
                _fail(errors, "counters", f"counter name {name!r} is not a string")
            _check_number(errors, f"counters.{name}", value)

    passes = doc.get("passes")
    if isinstance(passes, list):
        for index, stat in enumerate(passes):
            if not isinstance(stat, dict):
                _fail(errors, f"passes[{index}]", "expected an object")
                continue
            for key in ("name", "runs", "changed", "seconds"):
                if key not in stat:
                    _fail(errors, f"passes[{index}]", f"missing required key {key!r}")

    spans = doc.get("spans")
    if isinstance(spans, list):
        for index, span in enumerate(spans):
            _check_span(errors, f"spans[{index}]", span)

    if errors:
        raise ProfileSchemaError(
            "profile does not match schema:\n  " + "\n  ".join(errors)
        )
