"""Flight recorder: postmortem bundles for traps and divergences.

A black box for the simulator: when anything goes wrong — a
:class:`~repro.svm.memory.MemoryFault`, an
:class:`~repro.exec.interp.ExecutionError`, a fuzz divergence, any
uncaught exception inside :class:`~repro.runtime.runtime.ConcordRuntime`
or the task graph — :class:`FlightRecorder` dumps everything an engineer
needs into one JSON bundle:

* the **last N telemetry events** (the :class:`~repro.obs.telemetry.EventRing`
  window) plus how many older events the ring already forgot;
* the **live counters** and **open span stack** at the moment of capture;
* the **trap site**: kernel, device, lane (``global_id``), IR function,
  superblock uids, and — resolved through the same location metadata
  :mod:`repro.obs.lines` uses — the source line, including its text when
  the module kept its source;
* the **construct tail** (most recent launch profiles) and, for graph
  runtimes, the **graph state** (stats plus pending futures).

The engines stamp trap context onto escaping exceptions on the cold path
only (``trap_function`` / ``trap_block_uids`` / ``trap_loc`` in
:mod:`repro.exec`, ``trap_kernel`` / ``trap_device`` /
``trap_global_id`` in :mod:`repro.backend`), so the non-trapping path is
untouched.  ``python -m repro run --flight-record DIR`` and the fuzz
campaign driver both write bundles here; ``validate_flight_bundle``
enforces the ``repro.obs.flight/v1`` schema.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from contextlib import contextmanager
from typing import Optional

__all__ = [
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
    "FlightSchemaError",
    "flight_guard",
    "resolve_trap",
    "validate_flight_bundle",
]

FLIGHT_SCHEMA_VERSION = "repro.obs.flight/v1"

#: How many trailing construct profiles a bundle keeps.
CONSTRUCT_TAIL = 32

#: Capture reasons a bundle may carry.
REASONS = ("trap", "fuzz_divergence", "exception", "violation", "manual")


class FlightSchemaError(ValueError):
    """A flight bundle does not conform to ``repro.obs.flight/v1``."""


# -- trap-site resolution ---------------------------------------------------


def _innermost_line(loc) -> tuple:
    """``(line, col)`` of the innermost frame of an instruction location
    (locations are tuples of (line, col) frames, innermost first)."""
    if loc:
        frame = loc[0]
        if isinstance(frame, (tuple, list)) and len(frame) >= 2:
            return int(frame[0]), int(frame[1])
    return None, None


def _block_loc(function, block_uids):
    """Best source location for a trapping superblock: the first memory
    or call instruction with a location inside the named blocks, else
    the first located instruction at all."""
    wanted = set(block_uids)
    fallback = None
    for block in function.blocks:
        if block.uid not in wanted:
            continue
        for instr in block.instructions:
            loc = getattr(instr, "loc", None)
            if not loc:
                continue
            if instr.op in ("load", "store", "call", "vcall", "gep"):
                return loc
            if fallback is None:
                fallback = loc
    return fallback


def resolve_trap(exc) -> dict:
    """Extract the engine/backend trap annotations from ``exc`` into the
    bundle's ``trap`` section, resolving block uids to a source line."""
    trap = {
        "kernel": getattr(exc, "trap_kernel", None),
        "device": getattr(exc, "trap_device", None),
        "global_id": getattr(exc, "trap_global_id", None),
        "function": getattr(exc, "trap_function", None),
        "block_uids": list(getattr(exc, "trap_block_uids", ()) or ()),
        "line": None,
        "col": None,
        "source_line": None,
    }
    loc = getattr(exc, "trap_loc", None)
    ir_function = getattr(exc, "trap_ir_function", None)
    if loc is None and ir_function is not None and trap["block_uids"]:
        loc = _block_loc(ir_function, trap["block_uids"])
    trap["line"], trap["col"] = _innermost_line(loc)
    if trap["line"] is not None and ir_function is not None:
        module = getattr(ir_function, "module", None)
        source_text = getattr(module, "source_text", "") if module else ""
        if source_text:
            lines = source_text.splitlines()
            if 1 <= trap["line"] <= len(lines):
                trap["source_line"] = lines[trap["line"] - 1].strip()
    return trap


# -- the recorder -----------------------------------------------------------


class FlightRecorder:
    """Writes postmortem bundles to ``directory`` (created on demand).

    ``observer`` is optional — a bundle without one still captures the
    exception, trap site and caller context; with one it additionally
    snapshots the event ring, counters, span stack and construct tail.
    """

    def __init__(self, directory, observer=None):
        self.directory = os.fspath(directory)
        self.observer = observer
        self.bundles: list[str] = []

    def _next_path(self) -> str:
        os.makedirs(self.directory, exist_ok=True)
        existing = {
            name
            for name in os.listdir(self.directory)
            if name.startswith("flight-") and name.endswith(".json")
        }
        index = len(self.bundles)
        while f"flight-{index:03d}.json" in existing:
            index += 1
        return os.path.join(self.directory, f"flight-{index:03d}.json")

    def record(
        self,
        exc: Optional[BaseException] = None,
        reason: Optional[str] = None,
        runtime=None,
        context: Optional[dict] = None,
    ) -> str:
        """Capture one bundle; returns the path it was written to."""
        if reason is None:
            reason = "trap" if hasattr(exc, "trap_device") else (
                "exception" if exc is not None else "manual"
            )
        observer = self.observer
        trap = resolve_trap(exc) if exc is not None else None

        exception = None
        if exc is not None:
            exception = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exception(
                    type(exc), exc, exc.__traceback__
                ),
            }

        events: list = []
        events_dropped = 0
        counters: dict = {}
        open_spans: list = []
        constructs: list = []
        if observer is not None:
            telemetry = observer.telemetry
            if telemetry is not None:
                # Mark the capture in the stream itself, then snapshot —
                # the bundle's last event is its own trap marker.
                if exc is not None:
                    name = (trap or {}).get("kernel") or type(exc).__name__
                else:
                    name = "manual"
                telemetry.emit("trap", name, reason=reason)
                events = telemetry.ring.snapshot()
                events_dropped = telemetry.ring.dropped
            counters = observer.counters.as_dict()
            open_spans = observer.open_span_names()
            constructs = [
                profile.to_dict()
                for profile in observer.constructs[-CONSTRUCT_TAIL:]
            ]

        graph = None
        if runtime is not None:
            task_graph = getattr(runtime, "_task_graph", None)
            if task_graph is not None:
                graph = task_graph.stats().to_dict()
                graph["pending"] = [
                    {"index": f.index, "kernel": f.kernel, "wave": f.wave}
                    for f in task_graph.futures
                    if not f.done
                ]

        bundle = {
            "schema": FLIGHT_SCHEMA_VERSION,
            "created_unix": time.time(),
            "reason": reason,
            "exception": exception,
            "trap": trap,
            "events": events,
            "events_dropped": events_dropped,
            "counters": counters,
            "open_spans": open_spans,
            "constructs": constructs,
            "graph": graph,
            "context": dict(context or {}),
        }
        path = self._next_path()
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle, indent=1, default=str)
            handle.write("\n")
        os.replace(tmp, path)
        self.bundles.append(path)
        return path


@contextmanager
def flight_guard(
    recorder: Optional[FlightRecorder],
    runtime=None,
    context: Optional[dict] = None,
):
    """Run a block under the recorder: any escaping exception is captured
    as a bundle and re-raised (with ``flight_bundle`` stamped on it so
    callers can report the path).  A ``None`` recorder is a no-op guard."""
    if recorder is None:
        yield None
        return
    try:
        yield recorder
    except BaseException as exc:
        path = recorder.record(exc, runtime=runtime, context=context)
        exc.flight_bundle = path
        raise


# -- schema -----------------------------------------------------------------


def _fail(errors: list, path: str, message: str) -> None:
    errors.append(f"{path}: {message}")


def validate_flight_bundle(doc) -> None:
    """Structural validation of one bundle against
    ``repro.obs.flight/v1``; raises :class:`FlightSchemaError` listing
    every problem found."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        raise FlightSchemaError(f"bundle: expected object, got {type(doc).__name__}")
    if doc.get("schema") != FLIGHT_SCHEMA_VERSION:
        _fail(errors, "bundle.schema", f"expected {FLIGHT_SCHEMA_VERSION!r}")
    if not isinstance(doc.get("created_unix"), (int, float)):
        _fail(errors, "bundle.created_unix", "expected number")
    if doc.get("reason") not in REASONS:
        _fail(errors, "bundle.reason", f"expected one of {REASONS}")
    exception = doc.get("exception")
    if exception is not None:
        if not isinstance(exception, dict):
            _fail(errors, "bundle.exception", "expected object or null")
        else:
            for key in ("type", "message"):
                if not isinstance(exception.get(key), str):
                    _fail(errors, f"bundle.exception.{key}", "expected string")
    trap = doc.get("trap")
    if trap is not None:
        if not isinstance(trap, dict):
            _fail(errors, "bundle.trap", "expected object or null")
        else:
            for key in (
                "kernel",
                "device",
                "global_id",
                "function",
                "block_uids",
                "line",
                "col",
                "source_line",
            ):
                if key not in trap:
                    _fail(errors, f"bundle.trap.{key}", "missing")
            if not isinstance(trap.get("block_uids"), list):
                _fail(errors, "bundle.trap.block_uids", "expected list")
    if not isinstance(doc.get("events"), list):
        _fail(errors, "bundle.events", "expected list")
    else:
        from .telemetry import TelemetrySchemaError, validate_events

        try:
            validate_events(doc["events"], path="bundle.events")
        except TelemetrySchemaError as exc:
            _fail(errors, "bundle.events", str(exc))
    if not isinstance(doc.get("events_dropped"), int):
        _fail(errors, "bundle.events_dropped", "expected int")
    if not isinstance(doc.get("counters"), dict):
        _fail(errors, "bundle.counters", "expected object")
    if not isinstance(doc.get("open_spans"), list):
        _fail(errors, "bundle.open_spans", "expected list")
    if not isinstance(doc.get("constructs"), list):
        _fail(errors, "bundle.constructs", "expected list")
    graph = doc.get("graph")
    if graph is not None and not isinstance(graph, dict):
        _fail(errors, "bundle.graph", "expected object or null")
    if not isinstance(doc.get("context"), dict):
        _fail(errors, "bundle.context", "expected object")
    if errors:
        raise FlightSchemaError("; ".join(errors))
