"""Observability layer: phase spans, counter registry, per-kernel profiles.

Attach an :class:`Observer` to see where simulated time goes::

    from repro.obs import Observer
    obs = Observer()
    rt = ConcordRuntime(program, observer=obs)
    ... run constructs ...
    doc = build_profile(obs, meta={...})

or, one call for a whole workload::

    from repro.obs import profile_workload
    doc = profile_workload("bfs", scale=0.1)

``python -m repro profile <workload>`` renders the same document from the
command line.  The contract (span/counter names, JSON schema) is
documented in ``docs/OBSERVABILITY.md``; :func:`validate_profile` enforces
it.  Everything is opt-in: without an observer, the runtime and engines
run their original code paths untouched.

Built on top of the observer:

* :mod:`repro.obs.lines` — source-line attribution of modeled cost
  (``python -m repro annotate``);
* :mod:`repro.obs.trace` — Chrome ``trace_event`` export (``--trace``);
* :mod:`repro.obs.ledger` — persisted benchmark ledger and regression
  gate (``python -m repro bench``);
* :mod:`repro.obs.telemetry` — live streaming of span edges, counter
  deltas, launches and scheduler decisions through pluggable sinks and
  a bounded event ring (``obs.attach_telemetry``, ``--events``);
* :mod:`repro.obs.flight` — flight recorder: postmortem bundles on
  traps, fuzz divergences and uncaught exceptions, resolved down to the
  trapping kernel's source line (``--flight-record DIR``);
* :mod:`repro.obs.watch` — full-history benchmark trend analysis and
  the CI regression verdict (``python -m repro watch``).

See ``docs/PROFILING.md`` and ``docs/TELEMETRY.md``.
"""

from .core import CounterRegistry, Observer, Span
from .flight import (
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    FlightSchemaError,
    flight_guard,
    validate_flight_bundle,
)
from .ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerSchemaError,
    diff_ledgers,
    run_benchmarks,
    validate_ledger,
)
from .lines import (
    LINES_SCHEMA_VERSION,
    annotate_workload,
    build_line_report,
    render_line_report,
)
from .profile import (
    PHASES,
    PROFILE_SCHEMA_VERSION,
    ConstructProfile,
    KernelProfile,
    build_profile,
    profile_to_csv,
    profile_workload,
)
from .schema import PROFILE_SCHEMA, ProfileSchemaError, validate_profile
from .telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    AggregatorSink,
    EventRing,
    JsonLinesSink,
    MetricsTextSink,
    Telemetry,
    TelemetrySchemaError,
    validate_event,
    validate_events,
)
from .trace import (
    TRACE_SCHEMA_VERSION,
    TraceSchemaError,
    build_trace,
    validate_trace,
    write_trace,
)

from .watch import (
    WATCH_SCHEMA_VERSION,
    WatchSchemaError,
    build_watch_report,
    render_watch_report,
    validate_watch_report,
)

__all__ = [
    "AggregatorSink",
    "CounterRegistry",
    "ConstructProfile",
    "EventRing",
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
    "FlightSchemaError",
    "JsonLinesSink",
    "KernelProfile",
    "LEDGER_SCHEMA_VERSION",
    "LINES_SCHEMA_VERSION",
    "LedgerSchemaError",
    "MetricsTextSink",
    "Observer",
    "PHASES",
    "PROFILE_SCHEMA",
    "PROFILE_SCHEMA_VERSION",
    "ProfileSchemaError",
    "Span",
    "TELEMETRY_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "Telemetry",
    "TelemetrySchemaError",
    "TraceSchemaError",
    "WATCH_SCHEMA_VERSION",
    "WatchSchemaError",
    "annotate_workload",
    "build_line_report",
    "build_profile",
    "build_trace",
    "build_watch_report",
    "diff_ledgers",
    "flight_guard",
    "profile_to_csv",
    "profile_workload",
    "render_line_report",
    "render_watch_report",
    "run_benchmarks",
    "validate_event",
    "validate_events",
    "validate_flight_bundle",
    "validate_ledger",
    "validate_profile",
    "validate_trace",
    "validate_watch_report",
    "write_trace",
]
