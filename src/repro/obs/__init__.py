"""Observability layer: phase spans, counter registry, per-kernel profiles.

Attach an :class:`Observer` to see where simulated time goes::

    from repro.obs import Observer
    obs = Observer()
    rt = ConcordRuntime(program, observer=obs)
    ... run constructs ...
    doc = build_profile(obs, meta={...})

or, one call for a whole workload::

    from repro.obs import profile_workload
    doc = profile_workload("bfs", scale=0.1)

``python -m repro profile <workload>`` renders the same document from the
command line.  The contract (span/counter names, JSON schema) is
documented in ``docs/OBSERVABILITY.md``; :func:`validate_profile` enforces
it.  Everything is opt-in: without an observer, the runtime and engines
run their original code paths untouched.
"""

from .core import CounterRegistry, Observer, Span
from .profile import (
    PHASES,
    PROFILE_SCHEMA_VERSION,
    ConstructProfile,
    KernelProfile,
    build_profile,
    profile_to_csv,
    profile_workload,
)
from .schema import PROFILE_SCHEMA, ProfileSchemaError, validate_profile

__all__ = [
    "CounterRegistry",
    "ConstructProfile",
    "KernelProfile",
    "Observer",
    "PHASES",
    "PROFILE_SCHEMA",
    "PROFILE_SCHEMA_VERSION",
    "ProfileSchemaError",
    "Span",
    "build_profile",
    "profile_to_csv",
    "profile_workload",
    "validate_profile",
]
