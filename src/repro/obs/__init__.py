"""Observability layer: phase spans, counter registry, per-kernel profiles.

Attach an :class:`Observer` to see where simulated time goes::

    from repro.obs import Observer
    obs = Observer()
    rt = ConcordRuntime(program, observer=obs)
    ... run constructs ...
    doc = build_profile(obs, meta={...})

or, one call for a whole workload::

    from repro.obs import profile_workload
    doc = profile_workload("bfs", scale=0.1)

``python -m repro profile <workload>`` renders the same document from the
command line.  The contract (span/counter names, JSON schema) is
documented in ``docs/OBSERVABILITY.md``; :func:`validate_profile` enforces
it.  Everything is opt-in: without an observer, the runtime and engines
run their original code paths untouched.

Built on top of the observer:

* :mod:`repro.obs.lines` — source-line attribution of modeled cost
  (``python -m repro annotate``);
* :mod:`repro.obs.trace` — Chrome ``trace_event`` export (``--trace``);
* :mod:`repro.obs.ledger` — persisted benchmark ledger and regression
  gate (``python -m repro bench``).

See ``docs/PROFILING.md``.
"""

from .core import CounterRegistry, Observer, Span
from .ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerSchemaError,
    diff_ledgers,
    run_benchmarks,
    validate_ledger,
)
from .lines import (
    LINES_SCHEMA_VERSION,
    annotate_workload,
    build_line_report,
    render_line_report,
)
from .profile import (
    PHASES,
    PROFILE_SCHEMA_VERSION,
    ConstructProfile,
    KernelProfile,
    build_profile,
    profile_to_csv,
    profile_workload,
)
from .schema import PROFILE_SCHEMA, ProfileSchemaError, validate_profile
from .trace import (
    TRACE_SCHEMA_VERSION,
    TraceSchemaError,
    build_trace,
    validate_trace,
    write_trace,
)

__all__ = [
    "CounterRegistry",
    "ConstructProfile",
    "KernelProfile",
    "LEDGER_SCHEMA_VERSION",
    "LINES_SCHEMA_VERSION",
    "LedgerSchemaError",
    "Observer",
    "PHASES",
    "PROFILE_SCHEMA",
    "PROFILE_SCHEMA_VERSION",
    "ProfileSchemaError",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "TraceSchemaError",
    "annotate_workload",
    "build_line_report",
    "build_profile",
    "build_trace",
    "diff_ledgers",
    "profile_to_csv",
    "profile_workload",
    "render_line_report",
    "run_benchmarks",
    "validate_ledger",
    "validate_profile",
    "validate_trace",
    "write_trace",
]
