"""Synthetic many-client load for the compile service.

``python -m repro serve --selftest`` (and ``benchmarks/bench_service.py``)
drive this module: it starts from a pool of *distinct* generated MiniC++
sources, then hammers a running daemon with ``clients`` concurrent
threads, two phases —

* **cold** — every source is seen for the first time, so each request
  pays frontend + pipeline + closure;
* **warm** — the same sources again (every client touches every source),
  so each request must answer from the closure artifact alone.

The report carries client-observed p50/p99 latency per phase, the
cold/warm speedup, and the daemon's own ``/v1/stats`` snapshot (stage
hit/miss counters, store stats, server-side request percentiles) —
the evidence the service-smoke CI job archives.
"""

from __future__ import annotations

import threading
import time

__all__ = ["generate_sources", "run_load", "render_report", "validate_report"]

#: Realistically sized client programs: helper classes with methods to
#: inline, pointer chasing, loops — enough frontend + pipeline work
#: (~50ms cold) that the warm path's store read is the 5x+ win the
#: service exists for, not a wash against HTTP overhead.
_SOURCE_TEMPLATE = """
class Vec{tag} {{
public:
  float x; float y; float z;
  float dot(Vec{tag}* o) {{ return x * o->x + y * o->y + z * o->z; }}
  float norm2() {{ return x * x + y * y + z * z; }}
  void scale(float f) {{ x = x * f; y = y * f; z = z * f; }}
  void axpy(float a, Vec{tag}* o) {{
    x = x + a * o->x; y = y + a * o->y; z = z + a * o->z;
  }}
}};

class Node{tag} {{
public:
  int value;
  int weight;
  Node{tag}* next;
  int chase(int depth) {{
    int acc = value;
    Node{tag}* cur = next;
    int d = 0;
    while (cur != 0 && d < depth) {{
      acc = acc + cur->value * {mult} + cur->weight;
      cur = cur->next;
      d = d + 1;
    }}
    return acc;
  }}
}};

class LoadBody{tag} {{
public:
  Vec{tag}* vecs;
  Node{tag}* nodes;
  int* out;
  float factor;
  int rounds;
  void operator()(int i) {{
    Vec{tag}* v = &vecs[i];
    float acc = v->norm2();
    int r = 0;
    while (r < rounds) {{
      v->axpy(0.25f, v);
      acc = acc + v->dot(v) * factor;
      r = r + 1;
    }}
    int chased = nodes[i].chase({depth});
    out[i] = chased + (int)acc + {addend};
  }}
}};
"""


def generate_sources(count: int) -> list:
    """``count`` distinct-but-similar MiniC++ programs: same shape, unique
    constants, so every one hashes (and compiles) differently."""
    return [
        _SOURCE_TEMPLATE.format(
            tag=i, mult=(i % 7) + 2, addend=i * 13 + 1, depth=(i % 5) + 3
        )
        for i in range(count)
    ]


def _percentile(samples: list, q: int) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(len(ordered) * q / 100)))
    return ordered[rank]


def _phase(client_factory, clients: int, sources: list, config: str) -> dict:
    """Issue one compile request per (client, source) pair, all clients
    concurrent, and collect per-request wall latencies."""
    latencies: list = []
    errors: list = []
    lock = threading.Lock()

    def worker(worker_index: int) -> None:
        client = client_factory()
        # Stagger source order per worker so concurrent clients collide on
        # the same key — the interesting contention case for the store.
        order = sources[worker_index % len(sources):] + sources[: worker_index % len(sources)]
        for source in order:
            started = time.perf_counter()
            reply = client.compile(source=source, config=config)
            wall = time.perf_counter() - started
            with lock:
                if reply.get("ok"):
                    latencies.append(wall)
                else:
                    errors.append(reply.get("error", "unknown error"))

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - started
    return {
        "requests": len(latencies),
        "errors": errors,
        "wall_seconds": wall,
        "p50_seconds": _percentile(latencies, 50),
        "p99_seconds": _percentile(latencies, 99),
        "mean_seconds": sum(latencies) / len(latencies) if latencies else 0.0,
    }


def run_load(
    client_factory,
    clients: int = 4,
    sources: int = 8,
    config: str = "GPU+ALL",
) -> dict:
    """Run the two-phase load against a daemon reachable through
    ``client_factory()`` (→ a ``ServiceClient``-shaped object).

    The cold phase issues ``clients × sources`` requests over ``sources``
    distinct programs — only the first request per program is truly cold;
    concurrent duplicates may already hit, which is exactly the
    shared-store behavior the daemon exists for.  The warm phase repeats
    the same matrix and must answer every request from the store.
    """
    pool = generate_sources(sources)
    cold = _phase(client_factory, clients, pool, config)
    warm = _phase(client_factory, clients, pool, config)
    stats = client_factory().stats()
    counters = stats.get("counters", {})
    warm_hits = counters.get("service.closure_hits", 0)
    speedup = (
        cold["p50_seconds"] / warm["p50_seconds"]
        if warm["p50_seconds"] > 0
        else float("inf")
    )
    return {
        "schema": "repro.service.load/v1",
        "clients": clients,
        "sources": sources,
        "config": config,
        "cold": cold,
        "warm": warm,
        "warm_hits": warm_hits,
        "p50_speedup": speedup,
        "stats": stats,
    }


def validate_report(report: dict) -> list:
    """Structural + acceptance checks; returns a list of problems (empty
    when the load test proves what it is supposed to prove)."""
    problems = []
    for phase_name in ("cold", "warm"):
        phase = report.get(phase_name, {})
        if phase.get("errors"):
            problems.append(f"{phase_name} phase had errors: {phase['errors'][:3]}")
        if phase.get("requests", 0) <= 0:
            problems.append(f"{phase_name} phase issued no successful requests")
    if report.get("warm_hits", 0) <= 0:
        problems.append("no warm closure-stage hits recorded (service.closure_hits == 0)")
    expected = report.get("clients", 0) * report.get("sources", 0)
    warm = report.get("warm", {})
    if warm.get("requests", 0) != expected:
        problems.append(
            f"warm phase completed {warm.get('requests')} requests, expected {expected}"
        )
    return problems


def render_report(report: dict) -> str:
    cold, warm = report["cold"], report["warm"]
    lines = [
        f"service load: {report['clients']} clients x {report['sources']} sources "
        f"[{report['config']}]",
        f"  cold: {cold['requests']} requests  p50 {cold['p50_seconds'] * 1e3:.2f}ms  "
        f"p99 {cold['p99_seconds'] * 1e3:.2f}ms  wall {cold['wall_seconds']:.2f}s",
        f"  warm: {warm['requests']} requests  p50 {warm['p50_seconds'] * 1e3:.2f}ms  "
        f"p99 {warm['p99_seconds'] * 1e3:.2f}ms  wall {warm['wall_seconds']:.2f}s",
        f"  warm closure hits: {report['warm_hits']}   "
        f"p50 speedup: {report['p50_speedup']:.1f}x",
    ]
    store = report.get("stats", {}).get("store", {})
    if store:
        lines.append(
            f"  store: {store.get('artifacts', 0)} artifacts, "
            f"{store.get('bytes', 0)} bytes"
        )
    return "\n".join(lines)
