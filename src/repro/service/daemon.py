"""The persistent compile service: ``python -m repro serve``.

A long-lived daemon that accepts **concurrent** compile and run requests
over local HTTP (JSON bodies), answering compiles through the staged,
content-addressed pipeline (``repro.runtime.compiler.compile_cached``)
backed by a shared on-disk :class:`~repro.service.store.ArtifactStore` —
so the second request for an identical (source, options) pair skips the
frontend, the pipeline and the closure emission entirely, in this
process or any other pointed at the same store.

Protocol (all endpoints under ``/v1``; see ``docs/SERVICE.md``)::

    POST /v1/compile   {"source": str, "config": "GPU+ALL", ...}
    POST /v1/run       {"source": ..., "body": str, "n": int, ...}
                       or {"workload": "BFS", "scale": 0.1, ...}
    GET  /v1/stats     counters, store stats, request-latency p50/p99
    GET  /v1/health    {"ok": true}
    POST /v1/shutdown  graceful stop

Observability: every request runs under a private ``repro.obs`` span
(``service_request``) whose close event — with the measured wall time —
is folded into the daemon's shared :class:`AggregatorSink` under a
lock, so ``/v1/stats`` reports per-endpoint p50/p99 without the
lock-free observer ever being shared across threads.  ``service.*``
counters account stage hits/misses, corrupt artifacts, evictions,
requests and errors.

Isolation: compile requests are truly concurrent (each works on its own
artifacts; store writes are atomic).  Run requests are serialized under
one executor lock and bracketed by a snapshot/restore of the vector
engine's process-wide memos, so one tenant's classification outcomes
(sticky fallbacks, occupancy routing) can never leak into another
request's run — per-request isolation of process-wide state.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..passes import OptConfig
from .store import ArtifactStore

__all__ = ["CompileService", "ServiceClient", "serve"]

#: The CLI's four paper configurations, by label.
CONFIGS = {
    "GPU": OptConfig.gpu,
    "GPU+PTROPT": OptConfig.gpu_ptropt,
    "GPU+L3OPT": OptConfig.gpu_l3opt,
    "GPU+ALL": OptConfig.gpu_all,
}

#: Retained request-latency samples per span name (p50/p99 window).
LATENCY_SAMPLES = 2048


def _resolve_config(spec) -> OptConfig:
    if spec is None:
        return OptConfig.gpu_all()
    if isinstance(spec, str):
        if spec not in CONFIGS:
            raise ValueError(f"unknown config {spec!r} (expected one of {sorted(CONFIGS)})")
        return CONFIGS[spec]()
    if isinstance(spec, dict):
        disabled = frozenset(spec.get("disabled", ()))
        return OptConfig(
            ptropt=bool(spec.get("ptropt", False)),
            l3opt=bool(spec.get("l3opt", False)),
            classical=bool(spec.get("classical", True)),
            unroll=bool(spec.get("unroll", True)),
            verify=bool(spec.get("verify", True)),
            device_alloc=bool(spec.get("device_alloc", False)),
            disabled=disabled,
        )
    raise ValueError(f"config must be a label or object, got {type(spec).__name__}")


class _MemoGuard:
    """Snapshot/restore of the vector engine's process-wide memos around
    one run request (tenant isolation; see module docstring)."""

    def __enter__(self):
        from ..backend import vector as v

        self._saved = (
            dict(v._SHARED_CACHES),
            dict(v._SCALAR_KERNELS),
            dict(v._GNARLY_KERNELS),
        )
        return self

    def __exit__(self, exc_type, exc, tb):
        from ..backend import vector as v

        shared, scalar, gnarly = self._saved
        v._SHARED_CACHES.clear()
        v._SHARED_CACHES.update(shared)
        v._SCALAR_KERNELS.clear()
        v._SCALAR_KERNELS.update(scalar)
        v._GNARLY_KERNELS.clear()
        v._GNARLY_KERNELS.update(gnarly)
        return False


class CompileService:
    """The request handlers, independent of any transport (the HTTP layer
    below and the in-process tests both drive this object directly)."""

    #: hot deserialized programs kept in memory (bounded LRU): a warm
    #: request for a program this process already loaded skips even the
    #: store read + unpickle, not just the compile stages
    MEMORY_PROGRAMS = 64

    def __init__(self, store_dir, byte_budget=None, span_samples=LATENCY_SAMPLES):
        from collections import OrderedDict

        from ..obs import Observer, Telemetry
        from ..obs.telemetry import AggregatorSink

        self.observer = Observer()
        self.aggregator = AggregatorSink(span_samples=span_samples)
        self.observer.attach_telemetry(Telemetry(sinks=[self.aggregator]))
        self.store = ArtifactStore(
            store_dir, byte_budget=byte_budget, counters=self.observer.counters
        )
        #: guards the shared observer/telemetry/aggregator (they are not
        #: thread-safe; requests record into private observers and merge)
        self._obs_lock = threading.Lock()
        #: serializes run requests (runs mutate process-wide memos)
        self._exec_lock = threading.Lock()
        self._memory: OrderedDict = OrderedDict()  # closure key -> program
        self._mem_lock = threading.Lock()
        self.started = time.time()

    # -- request plumbing ----------------------------------------------------

    def _finish_request(self, endpoint: str, request_obs, started: float, ok: bool):
        """Merge one request's private observer into the shared metrics."""
        wall = time.perf_counter() - started
        with self._obs_lock:
            counters = self.observer.counters
            counters.add("service.requests")
            counters.add(f"service.requests.{endpoint}")
            if not ok:
                counters.add("service.errors")
            if request_obs is not None:
                for name, value in request_obs.counters.as_dict().items():
                    counters.add(name, value)
            telemetry = self.observer.telemetry
            if telemetry is not None:
                telemetry.emit(
                    "span_close",
                    "service_request",
                    category="service",
                    endpoint=endpoint,
                    wall_seconds=wall,
                )
                telemetry.emit(
                    "span_close",
                    f"service_request.{endpoint}",
                    category="service",
                    endpoint=endpoint,
                    wall_seconds=wall,
                )
        return wall

    def _request_observer(self):
        from ..obs import Observer

        return Observer()

    def _compile_through_caches(self, source, config, module_name, observer):
        """Memory cache → artifact store → staged compile.  A memory hit
        still counts as hitting all three stages (the request skipped
        them), plus ``service.memory_hits``."""
        from ..runtime.compiler import (
            _replay_restriction_warnings,
            compile_cached,
            frontend_key,
            pipeline_key,
            program_key,
        )

        ckey = program_key(pipeline_key(frontend_key(source, module_name), config))
        with self._mem_lock:
            program = self._memory.get(ckey)
            if program is not None:
                self._memory.move_to_end(ckey)
        if program is not None:
            counters = observer.counters
            counters.add("service.memory_hits")
            for stage in ("frontend", "pipeline", "closure"):
                counters.add(f"service.{stage}_hits")
            _replay_restriction_warnings(program)
            return program, {"frontend": "hit", "pipeline": "hit", "closure": "hit"}
        program, stages = compile_cached(
            source, config, module_name=module_name,
            store=self.store, observer=observer,
        )
        with self._mem_lock:
            self._memory[ckey] = program
            self._memory.move_to_end(ckey)
            while len(self._memory) > self.MEMORY_PROGRAMS:
                self._memory.popitem(last=False)
        return program, stages

    # -- endpoints -------------------------------------------------------------

    def compile(self, payload: dict) -> dict:
        """Compile (through the caches) and describe the program."""
        started = time.perf_counter()
        request_obs = self._request_observer()
        ok = False
        try:
            source = payload["source"]
            config = _resolve_config(payload.get("config"))
            module_name = payload.get("module_name", "concord")
            with request_obs.span("service_request", "service", endpoint="compile"):
                import warnings as _warnings

                with _warnings.catch_warnings(record=True) as caught:
                    _warnings.simplefilter("always")
                    program, stages = self._compile_through_caches(
                        source, config, module_name, request_obs
                    )
            result = {
                "ok": True,
                "program_id": program.program_id,
                "stages": stages,
                "config": config.label,
                "kernels": {
                    name: {
                        "construct": kinfo.construct,
                        "cpu_only": kinfo.cpu_only,
                        "opencl_bytes": len(kinfo.opencl_source),
                    }
                    for name, kinfo in program.kernels.items()
                },
                "warnings": [str(w.message) for w in caught],
            }
            if payload.get("emit") == "opencl":
                result["opencl"] = {
                    name: kinfo.opencl_source
                    for name, kinfo in program.kernels.items()
                    if not kinfo.cpu_only
                }
            ok = True
            return result
        finally:
            self._finish_request("compile", request_obs, started, ok)

    def run(self, payload: dict) -> dict:
        """Compile (through the store) and execute — one kernel over a
        zero-initialized body, or a whole registered workload."""
        started = time.perf_counter()
        request_obs = self._request_observer()
        ok = False
        try:
            with request_obs.span("service_request", "service", endpoint="run"):
                with self._exec_lock, _MemoGuard():
                    if "workload" in payload:
                        result = self._run_workload(payload, request_obs)
                    else:
                        result = self._run_kernel(payload, request_obs)
            ok = True
            return result
        finally:
            self._finish_request("run", request_obs, started, ok)

    def _run_workload(self, payload: dict, request_obs) -> dict:
        from ..workloads import all_workloads

        registry = all_workloads()
        name = payload["workload"]
        if name not in registry:
            raise ValueError(f"unknown workload {name!r} (expected one of {sorted(registry)})")
        cls = registry[name]
        config = _resolve_config(payload.get("config"))
        program = self._cached_program(cls.source, config, module_name=cls.name,
                                       observer=request_obs)
        from ..runtime import ConcordRuntime
        from ..runtime.system import desktop, ultrabook

        system = desktop() if payload.get("system") == "desktop" else ultrabook()
        rt = ConcordRuntime(
            program,
            system,
            region_size=cls.region_size,
            engine=payload.get("engine", "compiled"),
        )
        workload = cls()
        state = workload.build(rt, float(payload.get("scale", 0.1)))
        reports = workload.run(rt, state, on_cpu=bool(payload.get("on_cpu", False)))
        if payload.get("validate", True):
            workload.validate(rt, state)
        return {
            "ok": True,
            "workload": name,
            "program_id": program.program_id,
            "constructs": len(reports),
            "device": reports[0].device if reports else "gpu",
            "seconds": sum(r.seconds for r in reports),
            "energy_joules": sum(r.energy_joules for r in reports),
        }

    def _run_kernel(self, payload: dict, request_obs) -> dict:
        config = _resolve_config(payload.get("config"))
        program = self._cached_program(
            payload["source"], config,
            module_name=payload.get("module_name", "concord"),
            observer=request_obs,
        )
        from ..runtime import ConcordRuntime
        from ..runtime.system import desktop, ultrabook

        system = desktop() if payload.get("system") == "desktop" else ultrabook()
        rt = ConcordRuntime(program, system, engine=payload.get("engine", "compiled"))
        body_name = payload["body"]
        kinfo = program.kernel_for(body_name)
        body = rt.new(body_name)
        for field_name, value in (payload.get("fields") or {}).items():
            setattr(body, field_name, value)
        n = int(payload.get("n", 16))
        on_cpu = bool(payload.get("on_cpu", False))
        if kinfo.construct == "reduce":
            report = rt.parallel_reduce_hetero(n, body, on_cpu=on_cpu)
        else:
            report = rt.parallel_for_hetero(n, body, on_cpu=on_cpu)
        return {
            "ok": True,
            "program_id": program.program_id,
            "body": body_name,
            "n": n,
            "device": report.device,
            "seconds": report.seconds,
            "energy_joules": report.energy_joules,
        }

    def _cached_program(self, source, config, module_name, observer):
        program, _stages = self._compile_through_caches(
            source, config, module_name, observer
        )
        return program

    def stats(self) -> dict:
        started = time.perf_counter()
        ok = False
        try:
            with self._obs_lock:
                counters = dict(sorted(self.observer.counters.as_dict().items()))
                latency = {
                    name: self.aggregator.percentiles(name, (50, 90, 99))
                    for name in sorted(self.aggregator.spans)
                    if name.startswith("service_request")
                }
            result = {
                "ok": True,
                "uptime_seconds": time.time() - self.started,
                "counters": counters,
                "latency": latency,
                "store": self.store.stats(),
            }
            ok = True
            return result
        finally:
            self._finish_request("stats", None, started, ok)


# -- HTTP layer -----------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    service: CompileService = None  # set by serve()
    quiet = True

    def log_message(self, fmt, *args):  # pragma: no cover - log plumbing
        if not self.quiet:
            super().log_message(fmt, *args)

    def _reply(self, status: int, doc: dict) -> None:
        blob = json.dumps(doc).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _payload(self) -> dict:
        length = int(self.headers.get("Content-Length", "0") or "0")
        raw = self.rfile.read(length) if length else b"{}"
        doc = json.loads(raw.decode("utf-8")) if raw.strip() else {}
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    def do_GET(self):
        if self.path == "/v1/health":
            self._reply(200, {"ok": True})
        elif self.path == "/v1/stats":
            self._reply(200, self.service.stats())
        else:
            self._reply(404, {"ok": False, "error": f"no such endpoint {self.path}"})

    def do_POST(self):
        if self.path == "/v1/shutdown":
            self._reply(200, {"ok": True})
            threading.Thread(target=self.server.shutdown, daemon=True).start()
            return
        try:
            payload = self._payload()
            if self.path == "/v1/compile":
                self._reply(200, self.service.compile(payload))
            elif self.path == "/v1/run":
                self._reply(200, self.service.run(payload))
            else:
                self._reply(404, {"ok": False, "error": f"no such endpoint {self.path}"})
        except Exception as exc:  # one bad request must not kill the daemon
            self._reply(400, {"ok": False, "error": f"{type(exc).__name__}: {exc}"})


def serve(store_dir, host="127.0.0.1", port=0, byte_budget=None, quiet=True):
    """Build the service and a ready-to-run HTTP server bound to
    ``(host, port)`` (port 0 = ephemeral).  Returns ``(server, service)``;
    the caller runs ``server.serve_forever()`` (the CLI does) or drives it
    from a thread (tests and the selftest do)."""
    service = CompileService(store_dir, byte_budget=byte_budget)
    handler = type("_BoundHandler", (_Handler,), {"service": service, "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server, service


class ServiceClient:
    """Minimal stdlib HTTP client for the daemon (load generator, tests,
    and anything else that wants to talk to ``repro serve``)."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str, payload=None) -> dict:
        import http.client

        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            doc = json.loads(response.read().decode("utf-8"))
            doc.setdefault("ok", response.status == 200)
            return doc
        finally:
            conn.close()

    def compile(self, **payload) -> dict:
        return self._request("POST", "/v1/compile", payload)

    def run(self, **payload) -> dict:
        return self._request("POST", "/v1/run", payload)

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def shutdown(self) -> dict:
        return self._request("POST", "/v1/shutdown")
