"""The persistent compile service (``python -m repro serve``).

Three pieces (see ``docs/SERVICE.md``):

* :mod:`repro.service.store` — the content-addressed on-disk
  :class:`ArtifactStore` every compilation stage caches into;
* :mod:`repro.service.daemon` — the HTTP daemon (:class:`CompileService`
  handlers + :func:`serve`) and its :class:`ServiceClient`;
* :mod:`repro.service.loadgen` — the synthetic many-client load
  generator behind ``repro serve --selftest`` and the service-smoke CI
  job.
"""

from .daemon import CompileService, ServiceClient, serve
from .loadgen import generate_sources, render_report, run_load, validate_report
from .store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "CompileService",
    "ServiceClient",
    "generate_sources",
    "render_report",
    "run_load",
    "serve",
    "validate_report",
]
