"""The on-disk compile-artifact store: content-addressed, atomic, LRU.

Layout (one file per artifact, sharded by hash prefix to keep
directories small)::

    <root>/
      frontend/ab/abcdef....art
      pipeline/12/123456....art
      closure/9f/9fe421....art

Every file is ``MAGIC ++ sha256(payload) ++ payload`` where the payload
is the pickled stage artifact (``repro.runtime.compiler`` dataclasses
pickle cleanly — the IR graph is plain objects).  The 40-byte header
makes truncation and bit-rot *detectable*: a reader that finds a bad
magic, a short file or a digest mismatch deletes the file, bumps
``service.cache_corrupt`` and reports a miss — the caller recompiles,
never crashes, never trusts a damaged artifact.

Writes are atomic (tempfile in the destination directory +
``os.replace``) so concurrent writers — two processes compiling the same
source — race benignly: both produce byte-identical files (content
addressing), and whichever ``replace`` lands last wins with no torn
state in between.

Eviction is least-recently-*used* by file mtime under a byte budget:
every hit re-stamps the artifact's mtime, and ``put`` evicts
oldest-first until the store fits.  Eviction of a file another process
already removed is tolerated silently.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
import tempfile
import time

__all__ = ["ArtifactStore", "STORE_MAGIC"]

STORE_MAGIC = b"RPROART1"
_HEADER_LEN = len(STORE_MAGIC) + 32  # magic + sha256(payload)

#: Stage artifacts nest the whole IR graph; default pickle recursion
#: headroom is not always enough for deep block chains.
_PICKLE_RECURSION_LIMIT = 100_000


def _dumps(obj) -> bytes:
    limit = sys.getrecursionlimit()
    if limit < _PICKLE_RECURSION_LIMIT:
        sys.setrecursionlimit(_PICKLE_RECURSION_LIMIT)
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        if limit < _PICKLE_RECURSION_LIMIT:
            sys.setrecursionlimit(limit)


class ArtifactStore:
    """Content-addressed artifact files under ``root``.

    ``byte_budget`` (``None`` = unbounded) caps the total payload bytes on
    disk; ``counters`` is an optional ``repro.obs.CounterRegistry`` that
    mirrors the store's event counts into the observability substrate
    (``service.store_hits`` / ``_misses`` / ``cache_corrupt`` /
    ``store_evictions``).
    """

    def __init__(self, root, byte_budget=None, counters=None):
        self.root = os.fspath(root)
        self.byte_budget = byte_budget
        self.counters = counters
        # Local tallies so ``stats()`` works without an observer attached.
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.evictions = 0
        os.makedirs(self.root, exist_ok=True)

    # -- paths -------------------------------------------------------------

    def _path(self, kind: str, key: str) -> str:
        if not key or any(ch not in "0123456789abcdef" for ch in key):
            raise ValueError(f"artifact key must be a hex digest, got {key!r}")
        return os.path.join(self.root, kind, key[:2], f"{key}.art")

    def _bump(self, name: str, local: str) -> None:
        setattr(self, local, getattr(self, local) + 1)
        if self.counters is not None:
            self.counters.add(name)

    # -- read --------------------------------------------------------------

    def get(self, kind: str, key: str):
        """The stored artifact, or ``None`` on miss *or* on a corrupt /
        truncated file (which is deleted and counted)."""
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except (FileNotFoundError, NotADirectoryError):
            self._bump("service.store_misses", "misses")
            return None
        except OSError:
            self._bump("service.store_misses", "misses")
            return None
        payload = self._verify(blob)
        if payload is None:
            self._discard_corrupt(path)
            return None
        try:
            artifact = pickle.loads(payload)
        except Exception:
            # The digest matched, so this is a pickle written by an
            # incompatible code version rather than bit-rot — but the
            # remedy is the same: drop it and recompile.
            self._discard_corrupt(path)
            return None
        self._bump("service.store_hits", "hits")
        try:
            now = time.time()
            os.utime(path, (now, now))  # LRU touch
        except OSError:
            pass
        return artifact

    @staticmethod
    def _verify(blob: bytes):
        if len(blob) < _HEADER_LEN or not blob.startswith(STORE_MAGIC):
            return None
        digest = blob[len(STORE_MAGIC) : _HEADER_LEN]
        payload = blob[_HEADER_LEN:]
        if hashlib.sha256(payload).digest() != digest:
            return None
        return payload

    def _discard_corrupt(self, path: str) -> None:
        self._bump("service.cache_corrupt", "corrupt")
        self._bump("service.store_misses", "misses")
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- write -------------------------------------------------------------

    def put(self, kind: str, key: str, artifact) -> None:
        """Atomically persist ``artifact``; then evict LRU entries if the
        byte budget is exceeded.  Never raises on I/O trouble — the store
        is an accelerator, not a source of truth."""
        path = self._path(kind, key)
        payload = _dumps(artifact)
        blob = STORE_MAGIC + hashlib.sha256(payload).digest() + payload
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        if self.counters is not None:
            self.counters.add("service.store_puts")
        if self.byte_budget is not None:
            self._evict_to_budget()

    # -- maintenance ---------------------------------------------------------

    def _entries(self) -> list:
        """Every artifact on disk as ``(mtime, size, path)``."""
        found = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if not name.endswith(".art"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                found.append((st.st_mtime, st.st_size, path))
        return found

    def _evict_to_budget(self) -> None:
        entries = self._entries()
        total = sum(size for _mtime, size, _path in entries)
        if total <= self.byte_budget:
            return
        for _mtime, size, path in sorted(entries):
            try:
                os.unlink(path)
            except OSError:
                continue
            self._bump("service.store_evictions", "evictions")
            total -= size
            if total <= self.byte_budget:
                break

    def stats(self) -> dict:
        entries = self._entries()
        per_kind: dict = {}
        for _mtime, size, path in entries:
            kind = os.path.relpath(path, self.root).split(os.sep)[0]
            bucket = per_kind.setdefault(kind, {"artifacts": 0, "bytes": 0})
            bucket["artifacts"] += 1
            bucket["bytes"] += size
        return {
            "root": self.root,
            "artifacts": len(entries),
            "bytes": sum(size for _mtime, size, _path in entries),
            "byte_budget": self.byte_budget,
            "kinds": dict(sorted(per_kind.items())),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "evictions": self.evictions,
        }
