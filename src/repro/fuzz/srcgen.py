"""Seeded random MiniC++ program generator.

Emits valid MiniC++ translation units exercising the language surface the
Concord frontend supports: classes with pointer/scalar fields, helper
methods, virtual calls through a small hierarchy, bounded ``for`` loops,
``if``/``else``, guarded integer division, float arithmetic, shared-array
reads/writes (pointers into SVM), and reduction bodies with ``join``.

Programs are built from a JSON-serializable *spec tree* (plain dicts and
lists) wrapped in :class:`SourceProgram`, so the reducer
(:mod:`repro.fuzz.reduce`) can shrink a diverging program structurally and
the corpus (``tests/corpus/``) can check programs in verbatim.

Every random decision flows from one ``random.Random`` seeded by the
driver, so ``generate_source_program(random.Random(seed))`` is fully
deterministic.

Generation invariants (the oracle relies on these):

* all array indices are masked (``expr & (len-1)``) or the loop index
  ``i`` itself, so no access can leave its array;
* divisor operands are forced odd (``| 1``) — no division traps;
* shift amounts are masked to ``& 7``;
* loops have constant trip counts (1–6) — guaranteed termination;
* reduction bodies start from ``acc = 0`` and combine with a commutative,
  associative operator (``+`` or ``^`` with wrapping semantics), so the
  CPU's per-core copies and the GPU's hierarchical tree produce identical
  results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

INT_VARS = ("x", "y", "z")
READONLY_VARS = ("i", "s0", "s1")
BIN_OPS = ("+", "-", "*", "&", "|", "^")
REL_OPS = ("<", "<=", ">", ">=", "==", "!=")
FLOAT_OPS = ("+", "-", "*")


@dataclass
class SourceProgram:
    """One generated program plus the host-side inputs that drive it."""

    seed: int
    construct: str  # "for" | "reduce"
    uses_virtual: bool
    uses_floats: bool
    uses_helper: bool
    n: int
    aux_len: int  # power of two (indices are masked with aux_len - 1)
    data: list
    aux: list
    fdata: list
    s0: int
    s1: int
    salt: int
    virtual_class: str  # "VBase" | "VDerived" (ignored unless uses_virtual)
    reduce_op: str  # "+" | "^" (ignored unless construct == "reduce")
    helper_expr: Optional[dict]
    stmts: list = field(default_factory=list)
    class_name: str = "FuzzBody"

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "construct": self.construct,
            "uses_virtual": self.uses_virtual,
            "uses_floats": self.uses_floats,
            "uses_helper": self.uses_helper,
            "n": self.n,
            "aux_len": self.aux_len,
            "data": list(self.data),
            "aux": list(self.aux),
            "fdata": list(self.fdata),
            "s0": self.s0,
            "s1": self.s1,
            "salt": self.salt,
            "virtual_class": self.virtual_class,
            "reduce_op": self.reduce_op,
            "helper_expr": self.helper_expr,
            "stmts": self.stmts,
            "class_name": self.class_name,
        }

    @staticmethod
    def from_dict(doc: dict) -> "SourceProgram":
        return SourceProgram(**doc)

    # -- rendering --------------------------------------------------------

    @property
    def source(self) -> str:
        return render_source(self)


# -- expression / statement generation ----------------------------------------


def _gen_expr(rng, depth: int, vars_in_scope) -> dict:
    if depth >= 3 or rng.random() < 0.35:
        if rng.random() < 0.45:
            return {"k": "const", "v": rng.choice(
                [0, 1, 2, 3, 5, 7, 13, 100, -1, -7, 1 << 20, -(1 << 20)]
            )}
        return {"k": "var", "n": rng.choice(vars_in_scope)}
    roll = rng.random()
    if roll < 0.72:
        return {
            "k": "bin",
            "op": rng.choice(BIN_OPS),
            "a": _gen_expr(rng, depth + 1, vars_in_scope),
            "b": _gen_expr(rng, depth + 1, vars_in_scope),
        }
    if roll < 0.84:  # guarded division: divisor forced odd via `| 1`
        return {
            "k": "div",
            "op": rng.choice(["/", "%"]),
            "a": _gen_expr(rng, depth + 1, vars_in_scope),
            "b": _gen_expr(rng, depth + 1, vars_in_scope),
        }
    return {  # masked shift
        "k": "shift",
        "op": rng.choice(["<<", ">>"]),
        "a": _gen_expr(rng, depth + 1, vars_in_scope),
        "b": _gen_expr(rng, depth + 1, vars_in_scope),
    }


def _gen_cond(rng, vars_in_scope) -> dict:
    return {
        "k": "rel",
        "op": rng.choice(REL_OPS),
        "a": _gen_expr(rng, 1, vars_in_scope),
        "b": _gen_expr(rng, 1, vars_in_scope),
    }


def _gen_fexpr(rng, depth: int) -> dict:
    """Float expressions over fx and float literals (exact in f32)."""
    if depth >= 2 or rng.random() < 0.4:
        if rng.random() < 0.5:
            return {"k": "fvar"}
        return {"k": "fconst", "v": rng.choice(
            [0.5, 1.5, 2.0, 0.25, 3.0, -1.5, 0.125]
        )}
    return {
        "k": "fbin",
        "op": rng.choice(FLOAT_OPS),
        "a": _gen_fexpr(rng, depth + 1),
        "b": _gen_fexpr(rng, depth + 1),
    }


def _gen_stmts(rng, program_flags: dict, depth: int, budget: list,
               loop_vars: tuple) -> list:
    """A statement list; ``budget`` is a one-element mutable countdown
    shared across the whole tree."""
    stmts = []
    count = rng.randint(1, 4 if depth == 0 else 3)
    vars_in_scope = INT_VARS + READONLY_VARS + loop_vars
    for _ in range(count):
        if budget[0] <= 0:
            break
        budget[0] -= 1
        roll = rng.random()
        if depth < 2 and roll < 0.14:
            loop_var = f"j{len(loop_vars)}"
            stmts.append({
                "k": "loop",
                "var": loop_var,
                "bound": rng.randint(1, 6),
                "body": _gen_stmts(rng, program_flags, depth + 1, budget,
                                   loop_vars + (loop_var,)),
            })
        elif depth < 2 and roll < 0.30:
            stmt = {
                "k": "if",
                "cond": _gen_cond(rng, vars_in_scope),
                "then": _gen_stmts(rng, program_flags, depth + 1, budget,
                                   loop_vars),
                "else": (
                    _gen_stmts(rng, program_flags, depth + 1, budget, loop_vars)
                    if rng.random() < 0.5
                    else []
                ),
            }
            stmts.append(stmt)
        elif roll < 0.45:
            stmts.append({
                "k": "aux_read",
                "var": rng.choice(INT_VARS),
                "index": _gen_expr(rng, 1, vars_in_scope),
            })
        elif roll < 0.58:
            stmts.append({
                "k": "aux_write",
                "index": _gen_expr(rng, 1, vars_in_scope),
                "expr": _gen_expr(rng, 1, vars_in_scope),
            })
        elif program_flags["uses_helper"] and roll < 0.66:
            stmts.append({
                "k": "helper",
                "var": rng.choice(INT_VARS),
                "a": _gen_expr(rng, 2, vars_in_scope),
                "b": _gen_expr(rng, 2, vars_in_scope),
            })
        elif program_flags["uses_virtual"] and roll < 0.74:
            stmts.append({
                "k": "vcall",
                "var": rng.choice(INT_VARS),
                "arg": _gen_expr(rng, 2, vars_in_scope),
            })
        elif program_flags["uses_floats"] and roll < 0.82:
            stmts.append({"k": "fassign", "expr": _gen_fexpr(rng, 0)})
        else:
            stmts.append({
                "k": "assign",
                "var": rng.choice(INT_VARS),
                "expr": _gen_expr(rng, 0, vars_in_scope),
            })
    return stmts


def generate_source_program(rng, seed: int = 0,
                            force: Optional[dict] = None) -> SourceProgram:
    """Generate one program.  ``force`` optionally pins feature flags
    (e.g. ``{"uses_virtual": True}``) for targeted fuzzing."""
    force = force or {}
    flags = {
        "uses_virtual": rng.random() < 0.30,
        "uses_floats": rng.random() < 0.35,
        "uses_helper": rng.random() < 0.40,
    }
    construct = "reduce" if rng.random() < 0.25 else "for"
    flags.update({k: v for k, v in force.items() if k in flags})
    construct = force.get("construct", construct)

    n = rng.randint(4, 9)
    aux_len = rng.choice([8, 16])
    budget = [rng.randint(4, 12)]
    stmts = _gen_stmts(rng, flags, 0, budget, ())
    helper_expr = None
    if flags["uses_helper"]:
        helper_expr = _gen_expr(rng, 1, ("a", "b"))
    extremes = [-(1 << 31), (1 << 31) - 1, 0, 1]
    data = [
        rng.choice(extremes) if rng.random() < 0.1 else rng.randint(-10**6, 10**6)
        for _ in range(n)
    ]
    aux = [rng.randint(-1000, 1000) for _ in range(aux_len)]
    fdata = [round(rng.uniform(-64.0, 64.0), 3) for _ in range(n)]
    return SourceProgram(
        seed=seed,
        construct=construct,
        uses_virtual=flags["uses_virtual"],
        uses_floats=flags["uses_floats"],
        uses_helper=flags["uses_helper"],
        n=n,
        aux_len=aux_len,
        data=data,
        aux=aux,
        fdata=fdata,
        s0=rng.randint(-100, 100),
        s1=rng.randint(-100, 100),
        salt=rng.randint(-50, 50),
        virtual_class=rng.choice(["VBase", "VDerived"]),
        reduce_op=rng.choice(["+", "^"]),
        helper_expr=helper_expr,
        stmts=stmts,
    )


# -- rendering ----------------------------------------------------------------


def render_expr(expr: dict) -> str:
    kind = expr["k"]
    if kind == "const":
        return str(expr["v"])
    if kind == "var":
        return expr["n"]
    if kind == "bin":
        return f"({render_expr(expr['a'])} {expr['op']} {render_expr(expr['b'])})"
    if kind == "div":
        return (
            f"({render_expr(expr['a'])} {expr['op']} "
            f"(({render_expr(expr['b'])} & 7) | 1))"
        )
    if kind == "shift":
        return (
            f"({render_expr(expr['a'])} {expr['op']} "
            f"({render_expr(expr['b'])} & 7))"
        )
    if kind == "rel":
        return f"({render_expr(expr['a'])} {expr['op']} {render_expr(expr['b'])})"
    if kind == "fvar":
        return "fx"
    if kind == "fconst":
        value = expr["v"]
        return f"{value}f"
    if kind == "fbin":
        return f"({render_expr(expr['a'])} {expr['op']} {render_expr(expr['b'])})"
    raise ValueError(f"unknown expr kind {kind!r}")


def render_stmt(stmt: dict, mask: int, indent: int) -> list:
    pad = "  " * indent
    kind = stmt["k"]
    if kind == "assign":
        return [f"{pad}{stmt['var']} = {render_expr(stmt['expr'])};"]
    if kind == "aux_read":
        return [
            f"{pad}{stmt['var']} = aux[{render_expr(stmt['index'])} & {mask}];"
        ]
    if kind == "aux_write":
        return [
            f"{pad}aux[{render_expr(stmt['index'])} & {mask}] = "
            f"{render_expr(stmt['expr'])};"
        ]
    if kind == "helper":
        return [
            f"{pad}{stmt['var']} = helper({render_expr(stmt['a'])}, "
            f"{render_expr(stmt['b'])});"
        ]
    if kind == "vcall":
        return [f"{pad}{stmt['var']} = obj->vf({render_expr(stmt['arg'])});"]
    if kind == "fassign":
        return [f"{pad}fx = {render_expr(stmt['expr'])};"]
    if kind == "if":
        lines = [f"{pad}if {render_expr(stmt['cond'])} {{"]
        for inner in stmt["then"]:
            lines.extend(render_stmt(inner, mask, indent + 1))
        if stmt["else"]:
            lines.append(f"{pad}}} else {{")
            for inner in stmt["else"]:
                lines.extend(render_stmt(inner, mask, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if kind == "loop":
        var = stmt["var"]
        lines = [
            f"{pad}for (int {var} = 0; {var} < {stmt['bound']}; {var}++) {{"
        ]
        for inner in stmt["body"]:
            lines.extend(render_stmt(inner, mask, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    raise ValueError(f"unknown stmt kind {kind!r}")


VIRTUAL_CLASSES = """
class VBase {
public:
  int salt;
  virtual int vf(int a) { return a + salt; }
};

class VDerived : public VBase {
public:
  virtual int vf(int a) { return ((a ^ salt) * 3) - 7; }
};
"""


def render_source(program: SourceProgram) -> str:
    mask = program.aux_len - 1
    parts = []
    if program.uses_virtual:
        parts.append(VIRTUAL_CLASSES)
    fields = ["  int* data;", "  int* aux;"]
    if program.uses_floats:
        fields.append("  float* fdata;")
    fields.extend(["  int s0;", "  int s1;"])
    if program.construct == "reduce":
        fields.append("  int acc;")
    if program.uses_virtual:
        fields.append("  VBase* obj;")
    body_lines = ["    int x = data[i];", "    int y = s0;", "    int z = s1;"]
    if program.uses_floats:
        body_lines.append("    float fx = fdata[i];")
    for stmt in program.stmts:
        body_lines.extend(render_stmt(stmt, mask, 2))
    if program.uses_floats:
        body_lines.append("    fdata[i] = fx;")
    if program.construct == "reduce":
        body_lines.append(f"    acc = acc {program.reduce_op} ((x ^ y) + z);")
        body_lines.append("    data[i] = x;")
    else:
        body_lines.append("    data[i] = (x ^ y) + z;")
    methods = []
    if program.uses_helper and program.helper_expr is not None:
        methods.append(
            "  int helper(int a, int b) { return "
            f"{render_expr(program.helper_expr)}; }}"
        )
    methods.append("  void operator()(int i) {")
    methods.extend(body_lines)
    methods.append("  }")
    if program.construct == "reduce":
        methods.append(
            f"  void join({program.class_name}& other) "
            f"{{ acc = acc {program.reduce_op} other.acc; }}"
        )
    parts.append(
        f"class {program.class_name} {{\npublic:\n"
        + "\n".join(fields)
        + "\n\n"
        + "\n".join(methods)
        + "\n};\n"
    )
    return "\n".join(parts)
