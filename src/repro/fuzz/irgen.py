"""Seeded random IR generator: verifier-clean CFGs via ``repro.ir.builder``.

Where :mod:`repro.fuzz.srcgen` fuzzes the whole frontend, this module
constructs IR functions *directly* — structured control flow (nested
``if`` diamonds and counted loops with explicit phi nodes), integer and
float arithmetic, guarded division, ``alloca`` cells (so ``mem2reg`` has
promotion work), direct calls (so the inliner has work), and loads/stores
into a bounded scratch buffer.  Every generated function must pass
:func:`repro.ir.verify_function`; a generated function the verifier
accepts but an engine or pass mishandles is, by construction, a bug in
the verifier, the pass, or the engine.

Specs are plain dict/list trees inside :class:`IRProgram`, shrinkable by
:mod:`repro.fuzz.reduce` and serializable into ``tests/corpus/``.

Value references inside specs are *modular indices* into the pool of SSA
values available at that point (``pool[ref % len(pool)]``), which keeps
every spec renderable after arbitrary statement deletions during
reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ir import Function, FunctionType, IRBuilder, Module, verify_function
from ..ir.builder import add_phi_incoming
from ..ir.types import F32, I32, I64, ptr
from ..ir.values import ICMP_PREDS

#: Scratch-buffer length in i32 slots; dynamic indices are masked to it.
BUF_SLOTS = 16

_ARITH_OPS = ("add", "sub", "mul", "and", "or", "xor")
_SHIFT_OPS = ("shl", "lshr", "ashr")
_DIV_OPS = ("sdiv", "srem", "udiv", "urem")
_FARITH_OPS = ("fadd", "fsub", "fmul")
_SIGNED_PREDS = ("eq", "ne", "slt", "sle", "sgt", "sge")


@dataclass
class IRProgram:
    """A generated IR function spec plus its inputs."""

    seed: int
    a: int
    b: int
    buf: list
    use_alloca: bool
    use_call: bool
    use_floats: bool
    stmts: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "a": self.a,
            "b": self.b,
            "buf": list(self.buf),
            "use_alloca": self.use_alloca,
            "use_call": self.use_call,
            "use_floats": self.use_floats,
            "stmts": self.stmts,
        }

    @staticmethod
    def from_dict(doc: dict) -> "IRProgram":
        return IRProgram(**doc)


# -- spec generation ----------------------------------------------------------


def _gen_cond(rng) -> dict:
    return {
        "pred": rng.choice(_SIGNED_PREDS),
        "a": rng.randrange(1 << 16),
        "b": rng.randrange(1 << 16),
    }


def _gen_ir_stmts(rng, flags: dict, depth: int, budget: list) -> list:
    stmts = []
    count = rng.randint(1, 5 if depth == 0 else 3)
    for _ in range(count):
        if budget[0] <= 0:
            break
        budget[0] -= 1
        roll = rng.random()
        ref = lambda: rng.randrange(1 << 16)  # noqa: E731 — modular value ref
        if depth < 2 and roll < 0.13:
            stmts.append({
                "k": "loop",
                "trips": rng.randint(1, 6),
                "init": ref(),
                "body": _gen_ir_stmts(rng, flags, depth + 1, budget),
            })
        elif depth < 2 and roll < 0.28:
            stmts.append({
                "k": "if",
                "cond": _gen_cond(rng),
                "then": _gen_ir_stmts(rng, flags, depth + 1, budget),
                "else": _gen_ir_stmts(rng, flags, depth + 1, budget)
                if rng.random() < 0.6
                else [],
            })
        elif roll < 0.43:
            stmts.append({
                "k": "arith",
                "op": rng.choice(_ARITH_OPS),
                "a": ref(),
                "b": ref(),
            })
        elif roll < 0.50:
            stmts.append({
                "k": "shift",
                "op": rng.choice(_SHIFT_OPS),
                "a": ref(),
                "b": ref(),
            })
        elif roll < 0.56:
            stmts.append({
                "k": "div",
                "op": rng.choice(_DIV_OPS),
                "a": ref(),
                "b": ref(),
            })
        elif roll < 0.62:
            stmts.append({"k": "cmpzext", "cond": _gen_cond(rng)})
        elif roll < 0.68:
            stmts.append({
                "k": "select",
                "cond": _gen_cond(rng),
                "a": ref(),
                "b": ref(),
            })
        elif roll < 0.76:
            stmts.append({"k": "load", "idx": ref()})
        elif roll < 0.84:
            stmts.append({"k": "store", "idx": ref(), "val": ref()})
        elif flags["use_alloca"] and roll < 0.89:
            stmts.append(rng.choice(
                [{"k": "cell_load"}, {"k": "cell_store", "val": ref()}]
            ))
        elif flags["use_call"] and roll < 0.94:
            stmts.append({"k": "call", "a": ref(), "b": ref()})
        elif flags["use_floats"]:
            stmts.append(rng.choice([
                {"k": "farith", "op": rng.choice(_FARITH_OPS),
                 "a": ref(), "b": ref()},
                {"k": "f2i", "a": ref()},
                {"k": "i2f", "a": ref()},
            ]))
        else:
            stmts.append({
                "k": "arith",
                "op": rng.choice(_ARITH_OPS),
                "a": ref(),
                "b": ref(),
            })
    return stmts


def generate_ir_program(rng, seed: int = 0) -> IRProgram:
    flags = {
        "use_alloca": rng.random() < 0.5,
        "use_call": rng.random() < 0.4,
        "use_floats": rng.random() < 0.4,
    }
    budget = [rng.randint(4, 14)]
    stmts = _gen_ir_stmts(rng, flags, 0, budget)
    extremes = [-(1 << 31), (1 << 31) - 1, -1, 0]
    return IRProgram(
        seed=seed,
        a=rng.choice(extremes) if rng.random() < 0.15 else rng.randint(-10**6, 10**6),
        b=rng.choice(extremes) if rng.random() < 0.15 else rng.randint(-10**6, 10**6),
        buf=[rng.randint(-1000, 1000) for _ in range(BUF_SLOTS)],
        use_alloca=flags["use_alloca"],
        use_call=flags["use_call"],
        use_floats=flags["use_floats"],
        stmts=stmts,
    )


# -- rendering to IR ----------------------------------------------------------


class _Renderer:
    """Renders a spec tree into one IR function.

    ``pool``/``fpool`` hold the SSA values in scope at the current
    insertion point; branch- and loop-local values never leak out (only
    the merge phis do), so dominance holds by construction.
    """

    def __init__(self, program: IRProgram, module: Module):
        self.program = program
        self.module = module
        self.fn = Function(
            "fuzz.fn", FunctionType(I64, (I32, I32, ptr(I32))), ["a", "b", "buf"]
        )
        module.add_function(self.fn)
        self.callee: Optional[Function] = None
        if program.use_call:
            self.callee = _make_callee(module)
        self.builder = IRBuilder()
        self.cell = None
        self._name_counter = 0

    def render(self) -> Function:
        entry = self.fn.new_block("entry")
        self.builder.position_at_end(entry)
        a, b, buf = self.fn.args
        pool = [a, b, self.builder.i32(3)]
        fpool = []
        if self.program.use_floats:
            fpool.append(self.builder.cast("sitofp", a, F32))
            fpool.append(self.builder.const(1.5, F32))
        if self.program.use_alloca:
            self.cell = self.builder.alloca(I32)
            self.builder.store(a, self.cell)
        pool, fpool = self._render_stmts(self.program.stmts, pool, fpool)
        # Fold the live tail of the pool into one i64 result.
        result = self.builder.cast("sext", pool[-1], I64)
        for value in pool[-3:-1]:
            widened = self.builder.cast("sext", value, I64)
            result = self.builder.binop("xor", result, widened)
        if fpool:
            as_int = self.builder.cast("fptosi", fpool[-1], I32)
            widened = self.builder.cast("sext", as_int, I64)
            result = self.builder.binop("xor", result, widened)
        self.builder.ret(result)
        verify_function(self.fn)
        return self.fn

    # -- helpers ----------------------------------------------------------

    def _pick(self, pool, ref):
        return pool[ref % len(pool)]

    def _cond(self, pool, cond: dict):
        lhs = self._pick(pool, cond["a"])
        rhs = self._pick(pool, cond["b"])
        return self.builder.icmp(cond["pred"], lhs, rhs)

    def _buf_address(self, idx_value):
        """Mask a pool value into [0, BUF_SLOTS) and gep into the buffer."""
        masked = self.builder.binop(
            "and", idx_value, self.builder.i32(BUF_SLOTS - 1)
        )
        return self.builder.gep(
            self.fn.args[2], ptr(I32), indices=[(masked, 4)]
        )

    def _block(self, base: str):
        self._name_counter += 1
        return self.fn.new_block(f"{base}{self._name_counter}")

    # -- statement rendering ----------------------------------------------

    def _render_stmts(self, stmts, pool, fpool):
        pool = list(pool)
        fpool = list(fpool)
        for stmt in stmts:
            kind = stmt["k"]
            if kind == "arith":
                pool.append(self.builder.binop(
                    stmt["op"],
                    self._pick(pool, stmt["a"]),
                    self._pick(pool, stmt["b"]),
                ))
            elif kind == "shift":
                amount = self.builder.binop(
                    "and", self._pick(pool, stmt["b"]), self.builder.i32(7)
                )
                pool.append(self.builder.binop(
                    stmt["op"], self._pick(pool, stmt["a"]), amount
                ))
            elif kind == "div":
                divisor = self.builder.binop(
                    "or", self._pick(pool, stmt["b"]), self.builder.i32(1)
                )
                pool.append(self.builder.binop(
                    stmt["op"], self._pick(pool, stmt["a"]), divisor
                ))
            elif kind == "cmpzext":
                flag = self._cond(pool, stmt["cond"])
                pool.append(self.builder.cast("zext", flag, I32))
            elif kind == "select":
                flag = self._cond(pool, stmt["cond"])
                pool.append(self.builder.select(
                    flag, self._pick(pool, stmt["a"]), self._pick(pool, stmt["b"])
                ))
            elif kind == "load":
                address = self._buf_address(self._pick(pool, stmt["idx"]))
                pool.append(self.builder.load(address))
            elif kind == "store":
                address = self._buf_address(self._pick(pool, stmt["idx"]))
                self.builder.store(self._pick(pool, stmt["val"]), address)
            elif kind == "cell_load" and self.cell is not None:
                pool.append(self.builder.load(self.cell))
            elif kind == "cell_store" and self.cell is not None:
                self.builder.store(self._pick(pool, stmt["val"]), self.cell)
            elif kind == "call" and self.callee is not None:
                pool.append(self.builder.call(
                    self.callee,
                    [self._pick(pool, stmt["a"]), self._pick(pool, stmt["b"])],
                ))
            elif kind == "farith" and fpool:
                fpool.append(self.builder.binop(
                    stmt["op"],
                    self._pick(fpool, stmt["a"]),
                    self._pick(fpool, stmt["b"]),
                ))
            elif kind == "f2i" and fpool:
                pool.append(self.builder.cast(
                    "fptosi", self._pick(fpool, stmt["a"]), I32
                ))
            elif kind == "i2f":
                fpool.append(self.builder.cast(
                    "sitofp", self._pick(pool, stmt["a"]), F32
                ))
            elif kind == "if":
                pool = self._render_if(stmt, pool, fpool)
            elif kind == "loop":
                pool = self._render_loop(stmt, pool, fpool)
        return pool, fpool

    def _render_if(self, stmt, pool, fpool):
        flag = self._cond(pool, stmt["cond"])
        then_bb = self._block("then")
        else_bb = self._block("else")
        merge_bb = self._block("merge")
        self.builder.condbr(flag, then_bb, else_bb)

        self.builder.position_at_end(then_bb)
        then_pool, _ = self._render_stmts(stmt["then"], pool, fpool)
        then_val = then_pool[-1]
        then_end = self.builder.block
        self.builder.br(merge_bb)

        self.builder.position_at_end(else_bb)
        else_pool, _ = self._render_stmts(stmt["else"], pool, fpool)
        else_val = else_pool[-1]
        else_end = self.builder.block
        self.builder.br(merge_bb)

        self.builder.position_at_end(merge_bb)
        merged = self.builder.phi(I32)
        add_phi_incoming(merged, then_val, then_end)
        add_phi_incoming(merged, else_val, else_end)
        # Branch-local values stay local; only the merge phi escapes.
        return list(pool) + [merged]

    def _render_loop(self, stmt, pool, fpool):
        pre = self.builder.block
        header = self._block("header")
        body_bb = self._block("body")
        exit_bb = self._block("exit")
        init = self._pick(pool, stmt["init"])
        self.builder.br(header)

        self.builder.position_at_end(header)
        counter = self.builder.phi(I32)
        acc = self.builder.phi(I32)
        in_bounds = self.builder.icmp(
            "slt", counter, self.builder.i32(stmt["trips"])
        )
        self.builder.condbr(in_bounds, body_bb, exit_bb)

        self.builder.position_at_end(body_bb)
        body_pool, _ = self._render_stmts(
            stmt["body"], list(pool) + [counter, acc], fpool
        )
        carried = self.builder.binop("add", body_pool[-1], acc)
        next_counter = self.builder.add(counter, self.builder.i32(1))
        latch = self.builder.block
        self.builder.br(header)

        add_phi_incoming(counter, self.builder.i32(0), pre)
        add_phi_incoming(counter, next_counter, latch)
        add_phi_incoming(acc, init, pre)
        add_phi_incoming(acc, carried, latch)

        self.builder.position_at_end(exit_bb)
        # The header phis dominate the exit block; the accumulator escapes.
        return list(pool) + [acc]


def _make_callee(module: Module) -> Function:
    callee = Function(
        "fuzz.callee", FunctionType(I32, (I32, I32)), ["p", "q"]
    )
    callee.attributes["device"] = True
    module.add_function(callee)
    builder = IRBuilder(callee.new_block("entry"))
    mixed = builder.binop("xor", callee.args[0], callee.args[1])
    scaled = builder.mul(mixed, builder.i32(3))
    builder.ret(builder.add(scaled, builder.i32(7)))
    return callee


def build_ir(program: IRProgram, module_name: str = "fuzzmod"):
    """Render ``program`` into a fresh module.  Returns ``(module, fn)``;
    the function is verifier-clean by the generator contract."""
    module = Module(module_name)
    fn = _Renderer(program, module).render()
    return module, fn
