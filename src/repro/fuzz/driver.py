"""Fuzzing driver: generation → oracles → reduction → corpus.

``FuzzDriver`` owns one deterministic campaign: iteration ``i`` of a
campaign seeded ``S`` derives its own ``random.Random(S * 1_000_003 + i)``,
so any iteration can be replayed in isolation and campaigns are
reproducible regardless of ``--iterations``.

Targets select what each iteration exercises:

* ``engines`` — a source program through reference vs compiled engine on
  both devices (plus the cross-device output check);
* ``passes`` — a source program through the full pipeline vs one
  per-pass-disabled configuration (rotating through
  ``DISABLEABLE_PASSES``), with the paper's four measured configurations
  cross-checked on rotation as well;
* ``ir`` — a generated IR function through both engines and through every
  single pass in :data:`repro.fuzz.oracle.IR_PASS_NAMES`, re-verifying
  after each;
* ``frontend`` — source programs with feature flags force-rotated
  (virtual calls, floats, helper methods, reductions) through the
  cross-engine oracle, stressing the frontend grammar corners;
* ``sched`` — a source program through the ``gpu``, ``hybrid`` and
  ``auto`` scheduler policies (hybrid must match gpu bit-for-bit; auto
  must match on outputs);
* ``vector`` — a source program through the compiled engine vs the
  columnar vector engine on the GPU device: outputs, full region bytes,
  traces, traps and trace-derived counters must all match bit-for-bit
  whichever path (vectorized, rolled-back, or scalar-routed) ran;
* ``graph`` — a DAG of ``for`` constructs with overlapping declared
  read/write sets through the task-graph runtime: synchronous submission
  order, ``wait()``-forced, and a random topological forcing order must
  all agree bit-for-bit (the inferred RAW/WAR/WAW edges must serialize
  every true conflict);
* ``compile-cache`` — a source program compiled monolithically, cold
  through a fresh artifact store, warm through the same store, and cold
  through a separate store dir: all four must agree on content-hash
  program ids, stage hit/miss patterns, outputs, region bytes and
  traces (warm-vs-cold bit-exact; independent compiles via the
  canonical uid-remapped trace signature);
* ``all`` — round-robin over the eight targets.

Divergences are shrunk by :mod:`repro.fuzz.reduce` with the same oracle
as predicate and written to the corpus directory (default
``tests/corpus/``) as self-contained JSON reproducers.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from .irgen import IRProgram, generate_ir_program
from .oracle import (
    ir_divergences,
    source_cache_divergences,
    source_config_divergences,
    source_engine_divergences,
    source_graph_divergences,
    source_pass_divergences,
    source_sched_divergences,
    source_vector_divergences,
)
from .reduce import reduce_ir_program, reduce_source_program
from .srcgen import SourceProgram, generate_source_program

TARGETS = (
    "engines",
    "passes",
    "ir",
    "frontend",
    "sched",
    "vector",
    "graph",
    "compile-cache",
)

#: Forced feature-flag rotations for the ``frontend`` target.
_FRONTEND_FORCES = (
    {"uses_virtual": True},
    {"uses_floats": True},
    {"uses_helper": True},
    {"construct": "reduce"},
    {"uses_virtual": True, "uses_floats": True},
    {"construct": "reduce", "uses_helper": True},
)

#: Seed-mixing constant: distinct primes keep per-iteration streams
#: independent of the campaign length.
_SEED_STRIDE = 1_000_003


@dataclass
class Divergence:
    """One confirmed divergence, before and after reduction."""

    target: str
    kind: str  # "source" | "ir"
    seed: int
    iteration: int
    diffs: list
    program_doc: dict
    reduced_doc: Optional[dict] = None
    reduction_attempts: int = 0

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "kind": self.kind,
            "seed": self.seed,
            "iteration": self.iteration,
            "diffs": self.diffs,
            "program": self.reduced_doc or self.program_doc,
            "unreduced_program": self.program_doc,
            "reduction_attempts": self.reduction_attempts,
        }


@dataclass
class FuzzReport:
    seed: int
    iterations: int
    target: str
    divergences: list = field(default_factory=list)
    corpus_files: list = field(default_factory=list)
    flight_bundles: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        state = "OK" if self.ok else f"{len(self.divergences)} DIVERGENCE(S)"
        return (
            f"fuzz target={self.target} seed={self.seed} "
            f"iterations={self.iterations}: {state}"
        )


class FuzzDriver:
    def __init__(
        self,
        seed: int = 0,
        iterations: int = 100,
        target: str = "all",
        corpus_dir: Optional[Path] = None,
        observer=None,
        reduce: bool = True,
        max_divergences: int = 5,
        flight_recorder=None,
    ):
        if target != "all" and target not in TARGETS:
            raise ValueError(
                f"unknown fuzz target {target!r}; choose from "
                f"{('all',) + TARGETS}"
            )
        self.seed = seed
        self.iterations = iterations
        self.target = target
        self.corpus_dir = Path(corpus_dir) if corpus_dir else None
        self.observer = observer
        self.reduce = reduce
        self.max_divergences = max_divergences
        #: Optional :class:`repro.obs.FlightRecorder`; every confirmed
        #: divergence dumps a postmortem bundle next to its reproducer.
        self.flight_recorder = flight_recorder

    # -- per-iteration oracles --------------------------------------------

    def _iteration_rng(self, i: int) -> random.Random:
        return random.Random(self.seed * _SEED_STRIDE + i)

    def run_iteration(self, i: int):
        """One iteration: ``(diffs, kind, program)``."""
        target = self.target
        if target == "all":
            target = TARGETS[i % len(TARGETS)]
        rng = self._iteration_rng(i)
        if target == "ir":
            program = generate_ir_program(rng, seed=i)
            return ir_divergences(program), "ir", program, target, None
        if target == "frontend":
            force = _FRONTEND_FORCES[i % len(_FRONTEND_FORCES)]
            program = generate_source_program(rng, seed=i, force=force)
            return (
                source_engine_divergences(program),
                "source",
                program,
                target,
                None,
            )
        if target == "graph":
            # Reductions allocate order-dependent scratch; the DAG oracle
            # only reorders pure-heap `for` constructs.
            program = generate_source_program(
                rng, seed=i, force={"construct": "for"}
            )
            return (
                source_graph_divergences(program),
                "source",
                program,
                target,
                None,
            )
        program = generate_source_program(rng, seed=i)
        if target == "engines":
            return (
                source_engine_divergences(program),
                "source",
                program,
                target,
                None,
            )
        if target == "sched":
            return (
                source_sched_divergences(program),
                "source",
                program,
                target,
                None,
            )
        if target == "vector":
            return (
                source_vector_divergences(program),
                "source",
                program,
                target,
                None,
            )
        if target == "compile-cache":
            return (
                source_cache_divergences(program),
                "source",
                program,
                target,
                None,
            )
        # passes: rotate one disabled pass per iteration; every full
        # rotation also cross-checks the paper's four configurations.
        from ..passes.pipeline import DISABLEABLE_PASSES

        slot = i % (len(DISABLEABLE_PASSES) + 1)
        if slot == len(DISABLEABLE_PASSES):
            return (
                source_config_divergences(program),
                "source",
                program,
                target,
                "configs",
            )
        name = DISABLEABLE_PASSES[slot]
        return (
            source_pass_divergences(program, [name]),
            "source",
            program,
            target,
            name,
        )

    def _predicate(self, kind: str, target: str, detail):
        """The oracle that found a divergence, as a reduction predicate."""
        if kind == "ir":
            return lambda p: bool(ir_divergences(p))
        if target == "sched":
            return lambda p: bool(source_sched_divergences(p))
        if target == "vector":
            return lambda p: bool(source_vector_divergences(p))
        if target == "graph":
            return lambda p: bool(source_graph_divergences(p))
        if target == "compile-cache":
            return lambda p: bool(source_cache_divergences(p))
        if target == "passes":
            if detail == "configs":
                return lambda p: bool(source_config_divergences(p))
            return lambda p: bool(source_pass_divergences(p, [detail]))
        return lambda p: bool(source_engine_divergences(p))

    # -- campaign ---------------------------------------------------------

    def run(self, progress=None) -> FuzzReport:
        report = FuzzReport(self.seed, self.iterations, self.target)
        # NB: CounterRegistry is falsy while empty — compare to None.
        counters = self.observer.counters if self.observer else None
        found = 0
        for i in range(self.iterations):
            if counters is not None:
                counters.add("fuzz.iterations")
            diffs, kind, program, target, detail = self.run_iteration(i)
            if counters is not None:
                counters.add(f"fuzz.target.{target}")
            if not diffs:
                if progress and (i + 1) % 50 == 0:
                    progress(
                        f"  ... {i + 1}/{self.iterations} iterations, "
                        f"{found} divergence(s)"
                    )
                continue
            found += 1
            if counters is not None:
                counters.add("fuzz.divergences")
            divergence = Divergence(
                target=target,
                kind=kind,
                seed=self.seed,
                iteration=i,
                diffs=[str(d) for d in diffs],
                program_doc=program.to_dict(),
            )
            if progress:
                progress(
                    f"  DIVERGENCE at iteration {i} (target={target}): "
                    f"{diffs[0]}"
                )
            if self.reduce:
                result = self._reduce(kind, target, detail, program, progress)
                if result is not None:
                    divergence.reduced_doc = result.doc
                    divergence.reduction_attempts = result.attempts
            report.divergences.append(divergence)
            if self.corpus_dir is not None:
                report.corpus_files.append(
                    write_reproducer(self.corpus_dir, divergence)
                )
            if self.flight_recorder is not None:
                bundle = self.flight_recorder.record(
                    reason="fuzz_divergence",
                    context={
                        "command": "fuzz",
                        "target": target,
                        "seed": self.seed,
                        "iteration": i,
                        "diffs": divergence.diffs[:8],
                        "reproducer": (
                            str(report.corpus_files[-1])
                            if report.corpus_files
                            else None
                        ),
                    },
                )
                report.flight_bundles.append(bundle)
                if progress:
                    progress(f"  flight bundle: {bundle}")
            if len(report.divergences) >= self.max_divergences:
                if progress:
                    progress(
                        f"  stopping after {self.max_divergences} divergences"
                    )
                break
        return report

    def _reduce(self, kind, target, detail, program, progress):
        predicate = self._predicate(kind, target, detail)
        span = (
            self.observer.span("fuzz_reduce", "fuzz", kind=kind, target=target)
            if self.observer
            else None
        )
        try:
            if span:
                span.__enter__()
            if kind == "ir":
                result = reduce_ir_program(program, predicate)
            else:
                result = reduce_source_program(program, predicate)
        finally:
            if span:
                span.__exit__(None, None, None)
        if self.observer:
            self.observer.counters.add("fuzz.reduction_attempts", result.attempts)
        if progress:
            progress(
                f"  reduced in {result.attempts} attempts "
                f"({result.kept} shrink steps kept)"
            )
        return result


# -- corpus -------------------------------------------------------------------


def write_reproducer(corpus_dir: Path, divergence: Divergence) -> Path:
    """Write one reproducer JSON; name encodes target/seed/iteration so
    reruns overwrite rather than accumulate."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    name = (
        f"div-{divergence.target}-s{divergence.seed}-i{divergence.iteration}.json"
    )
    path = corpus_dir / name
    path.write_text(json.dumps(divergence.to_dict(), indent=2) + "\n")
    return path


def load_corpus_entry(path: Path):
    """Load a corpus JSON back into ``(kind, program, doc)``."""
    doc = json.loads(Path(path).read_text())
    kind = doc.get("kind", "source")
    program_doc = doc["program"]
    if kind == "ir":
        program = IRProgram.from_dict(program_doc)
    else:
        program = SourceProgram.from_dict(program_doc)
    return kind, program, doc
