"""Automatic reducer: shrink a diverging program to a minimal reproducer.

Both generators keep their programs as JSON spec trees (plain dicts and
lists), so reduction is structural, generator-agnostic, and never produces
a spec the renderer cannot handle (value references are modular, loop
bounds stay positive).  The algorithm is greedy ddmin-style hill climbing
to a fixed point:

1. **prune** — delete statements one at a time (innermost lists first),
   and hoist ``if``/``loop`` bodies over their parent;
2. **shrink** — drive numeric leaves toward zero (loop bounds toward 1)
   and zero out input-array elements;
3. **defeature** — drop whole feature dimensions (floats, virtual calls,
   helper methods, the reduce construct, alloca/call/float IR flags).

A candidate is kept only while ``predicate(rebuild(doc))`` still reports
the divergence; predicates that raise count as "divergence gone", so the
reducer can never wander into specs the frontend rejects.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

#: Keys that hold nested statement lists inside a statement dict.
STMT_LIST_KEYS = ("body", "then", "else")

#: Numeric keys the shrinker must not touch: identity, structural
#: invariants (power-of-two mask; element count tied to array lengths).
PROTECTED_KEYS = frozenset({"seed", "aux_len", "n"})

#: Keys shrunk toward 1 instead of 0 (zero-trip loops still reproduce
#: less often than single-trip ones, and the renderer allows any >= 0).
ONE_FLOOR_KEYS = frozenset({"bound", "trips"})


@dataclass
class ReductionResult:
    doc: dict
    attempts: int  # predicate evaluations
    kept: int  # accepted shrink steps


def _holds(candidate: dict, rebuild, predicate) -> bool:
    try:
        return bool(predicate(rebuild(copy.deepcopy(candidate))))
    except Exception:
        return False


def _stmt_lists(doc: dict):
    """Every statement list in the spec, innermost first."""
    collected = []
    stack = [doc.get("stmts", [])]
    while stack:
        stmts = stack.pop()
        collected.append(stmts)
        for stmt in stmts:
            if not isinstance(stmt, dict):
                continue
            for key in STMT_LIST_KEYS:
                child = stmt.get(key)
                if isinstance(child, list):
                    stack.append(child)
    return reversed(collected)


def _numeric_slots(node, out, inside_stmt=False):
    """Collect (container, key_or_index) slots holding shrinkable numbers."""
    if isinstance(node, dict):
        for key, value in node.items():
            if isinstance(value, bool) or key in PROTECTED_KEYS:
                continue
            if isinstance(value, (int, float)):
                out.append((node, key))
            else:
                _numeric_slots(value, out, inside_stmt)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                out.append((node, index))
            else:
                _numeric_slots(value, out, inside_stmt)


class _Reducer:
    def __init__(self, doc, rebuild, predicate, max_attempts):
        self.doc = copy.deepcopy(doc)
        self.rebuild = rebuild
        self.predicate = predicate
        self.max_attempts = max_attempts
        self.attempts = 0
        self.kept = 0

    def _accept(self, candidate: dict) -> bool:
        if self.attempts >= self.max_attempts:
            return False
        self.attempts += 1
        if _holds(candidate, self.rebuild, self.predicate):
            self.doc = candidate
            self.kept += 1
            return True
        return False

    # -- passes -----------------------------------------------------------

    def prune_stmts(self) -> bool:
        """Delete statements; hoist compound-statement bodies."""
        changed = False
        progress = True
        while progress and self.attempts < self.max_attempts:
            progress = False
            # Work over a snapshot of list identities; after an accepted
            # candidate the doc is replaced, so re-walk from scratch.
            for stmts in list(_stmt_lists(self.doc)):
                for index in reversed(range(len(stmts))):
                    stmt = stmts[index]
                    candidates = [None]  # plain deletion
                    if isinstance(stmt, dict):
                        if stmt.get("k") == "loop":
                            candidates.append(list(stmt["body"]))
                        elif stmt.get("k") == "if":
                            candidates.append(
                                list(stmt["then"]) + list(stmt["else"])
                            )
                    for replacement in candidates:
                        candidate = copy.deepcopy(self.doc)
                        # Find the same list in the copy by walking in
                        # parallel: positions of statement lists are
                        # stable under deepcopy.
                        target = self._twin(candidate, stmts)
                        if target is None or index >= len(target):
                            continue
                        if replacement is None:
                            del target[index]
                        else:
                            target[index : index + 1] = copy.deepcopy(
                                replacement
                            )
                        if self._accept(candidate):
                            changed = True
                            progress = True
                            break
                    if progress:
                        break
                if progress:
                    break
        return changed

    def _twin(self, candidate: dict, stmts: list):
        """The list in ``candidate`` at the same structural position as
        ``stmts`` is in ``self.doc``."""
        pairs = list(zip(_stmt_lists(self.doc), _stmt_lists(candidate)))
        for original, copied in pairs:
            if original is stmts:
                return copied
        return None

    def shrink_numbers(self) -> bool:
        changed = False
        slots = []
        _numeric_slots(self.doc, slots)
        for position in range(len(slots)):
            if self.attempts >= self.max_attempts:
                break
            # Re-collect against the current doc: accepted candidates
            # replaced it wholesale.
            slots_now = []
            _numeric_slots(self.doc, slots_now)
            if position >= len(slots_now):
                break
            container, key = slots_now[position]
            value = container[key]
            floor = 1 if key in ONE_FLOOR_KEYS else 0
            if value == floor:
                continue
            candidate = copy.deepcopy(self.doc)
            slots_copy = []
            _numeric_slots(candidate, slots_copy)
            c_container, c_key = slots_copy[position]
            c_container[c_key] = float(floor) if isinstance(value, float) else floor
            if self._accept(candidate):
                changed = True
        return changed

    def drop_features(self) -> bool:
        changed = False
        flips = [
            ("uses_floats", False),
            ("uses_virtual", False),
            ("uses_helper", False),
            ("construct", "for"),
            ("use_alloca", False),
            ("use_call", False),
            ("use_floats", False),
        ]
        for key, value in flips:
            if self.attempts >= self.max_attempts:
                break
            if key not in self.doc or self.doc[key] == value:
                continue
            candidate = copy.deepcopy(self.doc)
            candidate[key] = value
            if self._accept(candidate):
                changed = True
        return changed

    def run(self, max_rounds: int) -> ReductionResult:
        for _ in range(max_rounds):
            round_changed = False
            round_changed |= self.prune_stmts()
            round_changed |= self.drop_features()
            round_changed |= self.shrink_numbers()
            if not round_changed or self.attempts >= self.max_attempts:
                break
        return ReductionResult(self.doc, self.attempts, self.kept)


def reduce_spec(
    doc: dict,
    rebuild,
    predicate,
    max_rounds: int = 6,
    max_attempts: int = 400,
) -> ReductionResult:
    """Shrink ``doc`` while ``predicate(rebuild(doc))`` stays truthy.

    ``rebuild`` maps a spec dict back to a program object (e.g.
    ``SourceProgram.from_dict``); ``predicate`` re-runs the oracle that
    found the divergence.  The original doc is never mutated.
    """
    if not _holds(doc, rebuild, predicate):
        # Not reproducible — return the input untouched (flaky or
        # environment-dependent divergence; the driver records it as-is).
        return ReductionResult(copy.deepcopy(doc), 1, 0)
    return _Reducer(doc, rebuild, predicate, max_attempts).run(max_rounds)


def reduce_source_program(program, predicate, **kwargs) -> ReductionResult:
    from .srcgen import SourceProgram

    return reduce_spec(program.to_dict(), SourceProgram.from_dict, predicate, **kwargs)


def reduce_ir_program(program, predicate, **kwargs) -> ReductionResult:
    from .irgen import IRProgram

    return reduce_spec(program.to_dict(), IRProgram.from_dict, predicate, **kwargs)
