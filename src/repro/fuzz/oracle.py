"""Differential oracles: cross-engine, cross-device and cross-pass.

Three comparisons back the fuzzer's claim of semantic preservation:

* **engines** — the reference tree-walking :class:`~repro.exec.Interpreter`
  and the threaded-code :class:`~repro.exec.CompiledEngine` must produce
  bit-identical results, shared-region bytes, execution traces, and trap
  behaviour for the same compiled program on the same device;
* **devices** — the CPU form of a kernel (pre device lowering) and the
  GPU form (devirt + inline + SVM lowering + PTROPT/L3OPT) must compute
  the same outputs (region bytes are compared only where layouts match:
  the reduce construct allocates per-device scratch copies);
* **passes** — the full pipeline and every per-pass-disabled pipeline
  (``OptConfig.without_pass``; one configuration per entry in
  :data:`repro.passes.pipeline.DISABLEABLE_PASSES`) must agree on outputs
  and region bytes.  Passes in ``GPU_SAFE_DISABLE`` are compared on the
  GPU path; ``inline``/``devirt`` are structurally required for device
  lowering, so their disabled configurations are compared on the CPU path.

Outcomes carry everything comparable; :func:`compare_outcomes` returns a
human-readable list of differences (empty = equivalent).
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass, field
from typing import Optional

from ..exec import ExecutionError
from ..passes import OptConfig
from ..passes.pipeline import DISABLEABLE_PASSES, GPU_SAFE_DISABLE
from ..svm import MemoryFault
from .srcgen import SourceProgram

#: Region size for fuzz runtimes — small, so full-region digests are cheap.
FUZZ_REGION_SIZE = 1 << 16


@dataclass
class Outcome:
    """Everything observable from one program execution.

    ``region_digest`` hashes the shared region verbatim; ``heap_digest``
    hashes it with vtable globals masked out.  Vtable slots hold symbol
    ids assigned per compiled module, so they legitimately differ between
    two *configurations* of the same source while all kernel-visible heap
    state must still match; two *engines* running the same compiled
    program must agree on every byte.
    """

    ok: bool
    trap: str = ""  # exception class name when not ok
    outputs: dict = field(default_factory=dict)
    region_digest: str = ""
    heap_digest: str = ""
    trace_sig: Optional[tuple] = None
    #: uid-remapped signature (see :func:`canonical_trace_signature`),
    #: filled only when ``canonical_traces`` was requested — comparable
    #: across *independent* compiles of the same source.
    canon_trace_sig: Optional[tuple] = None

    def brief(self) -> str:
        if not self.ok:
            return f"trap:{self.trap}"
        return f"ok region={self.region_digest[:12]}"


def _digest(raw) -> str:
    return hashlib.sha256(bytes(raw)).hexdigest()


def _heap_digest(region, module) -> str:
    """Region digest with vtable-global bytes zeroed (their symbol-id
    contents are per-module metadata, not kernel heap state)."""
    raw = bytearray(region.physical.data)
    for gvar in module.globals.values():
        init = gvar.initializer
        if not (isinstance(init, tuple) and init and init[0] == "vtable"):
            continue
        if gvar.address is None:
            continue
        offset = gvar.address - region.cpu_base
        size = max(1, gvar.value_type.size())
        raw[offset : offset + size] = b"\x00" * size
    return _digest(raw)


def _trace_signature(traces) -> tuple:
    """A hashable, engine-representation-independent trace summary."""
    sig = []
    for trace in traces:
        events = tuple(
            (e.instr_uid, e.seq, e.address, e.size, e.is_store)
            for e in trace.mem_events
        )
        sig.append((
            trace.instructions,
            tuple(sorted(trace.block_counts.items())),
            tuple(sorted((k, tuple(v)) for k, v in trace.branch_stats.items())),
            trace.flops,
            trace.int_ops,
            trace.translations,
            trace.calls,
            trace.mem_events_dropped,
            events,
        ))
    return tuple(sig)


def _canonical_uid_maps(module):
    """Deterministic remaps of the global block/instruction uid counters.

    Blocks and instructions draw their uids from process-wide counters,
    so two *independent* compiles of the same source assign different
    uids to structurally identical IR — and traces key block counts,
    branch stats and mem events by those uids.  Traversing the module in
    function-name order (names are source-derived, hence identical
    across compiles) gives every block and instruction a canonical
    position independent of the counters' state."""
    blocks: dict = {}
    instrs: dict = {}
    for name in sorted(module.functions):
        fn = module.functions[name]
        for b_index, block in enumerate(fn.blocks):
            blocks[block.uid] = (name, b_index)
            for i_index, instr in enumerate(block.instructions):
                instrs[instr.uid] = (name, b_index, i_index)
    return blocks, instrs


def canonical_trace_signature(traces, module) -> tuple:
    """:func:`_trace_signature` with raw uids remapped to canonical
    module positions — comparable across independent compiles of one
    source (the raw signature is only comparable between executions of
    the *same* IR objects)."""
    blocks, instrs = _canonical_uid_maps(module)

    def _block(uid):
        return blocks.get(uid, ("?", uid))

    def _instr(uid):
        return instrs.get(uid, ("?", uid, -1))

    sig = []
    for trace in traces:
        events = tuple(
            (_instr(e.instr_uid), e.seq, e.address, e.size, e.is_store)
            for e in trace.mem_events
        )
        sig.append((
            trace.instructions,
            tuple(sorted((_block(k), v) for k, v in trace.block_counts.items())),
            tuple(sorted(
                (_instr(k), tuple(v)) for k, v in trace.branch_stats.items()
            )),
            trace.flops,
            trace.int_ops,
            trace.translations,
            trace.calls,
            trace.mem_events_dropped,
            events,
        ))
    return tuple(sig)


# -- source-program execution -------------------------------------------------


def run_source_program(
    program: SourceProgram,
    engine: str = "compiled",
    config: Optional[OptConfig] = None,
    device: str = "gpu",
    keep_traces: bool = False,
    compiled=None,
    observer=None,
    policy: Optional[str] = None,
    canonical_traces: bool = False,
) -> Outcome:
    """Compile (unless ``compiled`` is passed) and execute one generated
    program, returning the full observable outcome.  ``observer`` (a
    ``repro.obs.Observer``) opts the run into span/counter collection;
    ``policy`` routes the constructs through a scheduler placement policy
    instead of the ``device`` flag; ``canonical_traces`` additionally
    fills ``canon_trace_sig`` (requires ``keep_traces``)."""
    from ..ir.types import F32, I32
    from ..runtime import ConcordRuntime, compile_source, ultrabook

    config = config or OptConfig.gpu_all()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        if compiled is None:
            try:
                compiled = compile_source(program.source, config)
            except Exception as exc:  # frontend rejecting generator output
                return Outcome(ok=False, trap=f"frontend:{type(exc).__name__}")
        rt = ConcordRuntime(
            compiled,
            ultrabook(),
            region_size=FUZZ_REGION_SIZE,
            engine=engine,
            keep_traces=keep_traces,
            observer=observer,
            policy=policy or "gpu",
        )
        data = rt.new_array(I32, program.n)
        data.fill_from(program.data)
        aux = rt.new_array(I32, program.aux_len)
        aux.fill_from(program.aux)
        body = rt.new(program.class_name)
        body.data = data
        body.aux = aux
        body.s0 = program.s0
        body.s1 = program.s1
        fdata = None
        if program.uses_floats:
            fdata = rt.new_array(F32, program.n)
            fdata.fill_from(program.fdata)
            body.fdata = fdata
        if program.uses_virtual:
            obj = rt.new(program.virtual_class)
            obj.salt = program.salt
            body.obj = obj
        if program.construct == "reduce":
            body.acc = 0
        on_cpu = device == "cpu" and policy is None
        try:
            if program.construct == "reduce":
                rt.parallel_reduce_hetero(program.n, body, on_cpu=on_cpu)
            else:
                rt.parallel_for_hetero(program.n, body, on_cpu=on_cpu)
        except (ExecutionError, MemoryFault) as exc:
            return Outcome(ok=False, trap=type(exc).__name__)
        outputs = {
            "data": data.to_list(),
            "aux": aux.to_list(),
        }
        if fdata is not None:
            outputs["fdata"] = fdata.to_list()
        if program.construct == "reduce":
            outputs["acc"] = body.acc
        return Outcome(
            ok=True,
            outputs=outputs,
            region_digest=_digest(rt.region.physical.data),
            heap_digest=_heap_digest(rt.region, compiled.module),
            trace_sig=_trace_signature(rt.trace_log) if keep_traces else None,
            canon_trace_sig=(
                canonical_trace_signature(rt.trace_log, compiled.module)
                if keep_traces and canonical_traces
                else None
            ),
        )


def compare_outcomes(
    a: Outcome,
    b: Outcome,
    label_a: str,
    label_b: str,
    region: str = "full",
    traces: bool = False,
) -> list:
    """Differences between two outcomes (empty list = equivalent).

    ``region`` picks the heap-state comparison: ``"full"`` (every byte —
    right when both ran the same compiled program), ``"heap"`` (vtable
    metadata masked — right across configurations of the same source) or
    ``"none"`` (layouts incomparable, e.g. across devices for reduce).
    """
    diffs = []
    if a.ok != b.ok or a.trap != b.trap:
        diffs.append(
            f"behaviour: {label_a}={a.brief()} vs {label_b}={b.brief()}"
        )
        return diffs
    if not a.ok:
        return diffs  # both trapped identically
    for key in sorted(set(a.outputs) | set(b.outputs)):
        if a.outputs.get(key) != b.outputs.get(key):
            diffs.append(
                f"output {key!r}: {label_a}={a.outputs.get(key)} vs "
                f"{label_b}={b.outputs.get(key)}"
            )
    if region == "full" and a.region_digest != b.region_digest:
        diffs.append(
            f"region bytes: {label_a}={a.region_digest[:16]} vs "
            f"{label_b}={b.region_digest[:16]}"
        )
    elif region == "heap" and a.heap_digest != b.heap_digest:
        diffs.append(
            f"heap bytes: {label_a}={a.heap_digest[:16]} vs "
            f"{label_b}={b.heap_digest[:16]}"
        )
    if traces and a.trace_sig is not None and b.trace_sig is not None:
        if a.trace_sig != b.trace_sig:
            diffs.append(f"execution traces differ ({label_a} vs {label_b})")
    return diffs


# -- oracles over source programs ---------------------------------------------


def source_engine_divergences(program: SourceProgram) -> list:
    """Reference interpreter vs compiled engine, per device, bit-for-bit
    (outputs, region bytes, traces, traps); plus the cross-device
    output check.

    Compiles once and shares the program across all runs — block/instr
    uids are global counters, so traces are only comparable between
    executions of the *same* IR objects."""
    from ..runtime import compile_source

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        try:
            compiled = compile_source(program.source, OptConfig.gpu_all())
        except Exception:
            # Frontend rejection is engine-independent: nothing to compare.
            return []
    diffs = []
    per_device = {}
    for device in ("gpu", "cpu"):
        ref = run_source_program(
            program, engine="reference", device=device, keep_traces=True,
            compiled=compiled,
        )
        com = run_source_program(
            program, engine="compiled", device=device, keep_traces=True,
            compiled=compiled,
        )
        diffs.extend(compare_outcomes(
            ref, com, f"reference/{device}", f"compiled/{device}",
            region="full", traces=True,
        ))
        per_device[device] = com
    # Device independence: same outputs from the CPU and GPU kernel forms.
    # Region layout differs for reduce (per-device scratch copies), so
    # compare outputs only.
    diffs.extend(compare_outcomes(
        per_device["gpu"], per_device["cpu"], "compiled/gpu", "compiled/cpu",
        region="none",
    ))
    return diffs


def source_vector_divergences(program: SourceProgram) -> list:
    """Columnar vector engine vs threaded-code engine, bit-for-bit.

    The vector backend promises trace/region identity whichever path a
    kernel takes (vectorized, rolled back + rerun scalar, or routed
    scalar outright), so the oracle holds it to the full bar: outputs,
    every region byte, execution traces, traps — plus the trace-derived
    ``engine.*`` / ``mem_events.*`` counters, compared via the observer.
    """
    from ..backend.vector import reset_process_caches
    from ..obs import Observer
    from ..runtime import compile_source

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        try:
            compiled = compile_source(program.source, OptConfig.gpu_all())
        except Exception:
            return []
    # The backend memoizes per-kernel classification process-wide (a perf
    # heuristic) and keeps compiled columnar kernels keyed by svm_const;
    # reset all of it so every iteration genuinely exercises the
    # optimistic vector path from a cold state instead of a remembered
    # fallback (or a kernel compiled under an earlier iteration's layout).
    reset_process_caches()
    obs_com = Observer()
    com = run_source_program(
        program, engine="compiled", device="gpu", keep_traces=True,
        compiled=compiled, observer=obs_com,
    )
    obs_vec = Observer()
    vec = run_source_program(
        program, engine="vector", device="gpu", keep_traces=True,
        compiled=compiled, observer=obs_vec,
    )
    diffs = compare_outcomes(
        com, vec, "compiled/gpu", "vector/gpu", region="full", traces=True,
    )
    counters_a = obs_com.counters.as_dict()
    counters_b = obs_vec.counters.as_dict()
    prefixes = ("engine.", "mem_events.", "gpu.")
    names = sorted(
        name
        for name in set(counters_a) | set(counters_b)
        if name.startswith(prefixes)
    )
    for name in names:
        a, b = counters_a.get(name, 0), counters_b.get(name, 0)
        if a != b:
            diffs.append(
                f"counter {name}: compiled/gpu={a} vs vector/gpu={b}"
            )
    return diffs


def source_pass_divergences(
    program: SourceProgram, pass_names=None
) -> list:
    """Full pipeline vs per-pass-disabled pipelines.

    ``pass_names`` defaults to every disableable pass; the driver rotates
    through them one per iteration to bound per-program cost.
    """
    names = list(pass_names) if pass_names is not None else list(DISABLEABLE_PASSES)
    diffs = []
    baseline = {}
    for name in names:
        device = "gpu" if name in GPU_SAFE_DISABLE else "cpu"
        if device not in baseline:
            baseline[device] = run_source_program(
                program, config=OptConfig.gpu_all(), device=device
            )
        disabled = run_source_program(
            program,
            config=OptConfig.gpu_all().without_pass(name),
            device=device,
        )
        diffs.extend(compare_outcomes(
            baseline[device],
            disabled,
            f"full/{device}",
            f"no-{name}/{device}",
            region="heap",
        ))
    return diffs


def source_config_divergences(program: SourceProgram) -> list:
    """The paper's four measured configurations (GPU, +PTROPT, +L3OPT,
    +ALL) must agree bit-for-bit on the GPU path."""
    outcomes = [
        (config.label, run_source_program(program, config=config))
        for config in OptConfig.all_configs()
    ]
    label0, base = outcomes[0]
    diffs = []
    for label, outcome in outcomes[1:]:
        diffs.extend(compare_outcomes(base, outcome, label0, label, region="heap"))
    return diffs


def source_sched_divergences(program: SourceProgram) -> list:
    """Scheduler placement policies must preserve results.

    ``hybrid`` executes the same compiled program chunk-by-chunk in
    global index order, so it must match the paper-faithful ``gpu``
    policy bit-for-bit (outputs *and* region bytes).  ``auto`` may place
    whole constructs on either device — the CPU reduce path lays scratch
    copies out differently — so it is held to output equality only.
    """
    from ..runtime import compile_source

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        try:
            compiled = compile_source(program.source, OptConfig.gpu_all())
        except Exception:
            # Frontend rejection is policy-independent: nothing to compare.
            return []
    base = run_source_program(program, compiled=compiled, policy="gpu")
    hybrid = run_source_program(program, compiled=compiled, policy="hybrid")
    auto = run_source_program(program, compiled=compiled, policy="auto")
    diffs = []
    diffs.extend(compare_outcomes(
        base, hybrid, "policy/gpu", "policy/hybrid", region="full"
    ))
    diffs.extend(compare_outcomes(
        base, auto, "policy/gpu", "policy/auto", region="none"
    ))
    return diffs


def _graph_dag_plan(program: SourceProgram, constructs: int = 5):
    """A deterministic DAG plan for one generated program: ``constructs``
    instances of its kernel over a small pool of shared arrays, so
    read/write sets overlap and dependency edges form.  The plan depends
    only on the program (same structure for every execution mode)."""
    import random

    rng = random.Random(program.seed * 48271 + 7)
    return [
        (rng.randrange(3), rng.randrange(2)) for _ in range(constructs)
    ]


def _run_graph_dag(
    program: SourceProgram, compiled, plan, mode: str, order=None
) -> Outcome:
    """Execute the DAG plan in one mode: ``"sync"`` runs each construct
    synchronously in submission order, ``"graph"`` submits everything and
    forces via ``wait()`` (submission order), ``"shuffled"`` submits
    everything and forces the futures in a seed-derived permutation — a
    random topological order once inferred dependencies are honored.
    ``order`` overrides the shuffled permutation (property tests force
    arbitrary caller-chosen orders)."""
    import random

    from ..ir.types import F32, I32
    from ..runtime import ConcordRuntime, ultrabook

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        rt = ConcordRuntime(
            compiled, ultrabook(), region_size=FUZZ_REGION_SIZE
        )
        n, aux_len = program.n, program.aux_len
        # Shared pools: three data (+float) arrays, two aux arrays.
        # Constructs picking the same pool slot must serialize; disjoint
        # picks may reorder freely.
        datas = [rt.new_array(I32, n) for _ in range(3)]
        auxes = [rt.new_array(I32, aux_len) for _ in range(2)]
        for k, arr in enumerate(datas):
            arr.fill_from(
                [program.data[(i + k) % n] for i in range(n)]
            )
        for k, arr in enumerate(auxes):
            arr.fill_from(
                [program.aux[(i + k) % aux_len] for i in range(aux_len)]
            )
        fdatas = []
        if program.uses_floats:
            fdatas = [rt.new_array(F32, n) for _ in range(3)]
            for arr in fdatas:
                arr.fill_from(program.fdata)
        submissions = []
        for data_idx, aux_idx in plan:
            body = rt.new(program.class_name)
            body.data = datas[data_idx]
            body.aux = auxes[aux_idx]
            body.s0 = program.s0
            body.s1 = program.s1
            if program.uses_floats:
                body.fdata = fdatas[data_idx]
            obj = None
            if program.uses_virtual:
                obj = rt.new(program.virtual_class)
                obj.salt = program.salt
                body.obj = obj
            accessed = [datas[data_idx], auxes[aux_idx]]
            if program.uses_floats:
                accessed.append(fdatas[data_idx])
            reads = list(accessed)
            if obj is not None:
                reads.append(obj)
            writes = accessed + [body]  # kernels may mutate body fields
            submissions.append((body, reads, writes))
        try:
            if mode == "sync":
                for body, _, _ in submissions:
                    rt.parallel_for_hetero(n, body)
            else:
                futures = [
                    rt.submit(n, body, reads=reads, writes=writes)
                    for body, reads, writes in submissions
                ]
                if mode == "shuffled":
                    if order is None:
                        order = list(range(len(futures)))
                        random.Random(program.seed ^ 0xA5A5A5).shuffle(order)
                    for index in order:
                        futures[index].result()
                rt.wait()
        except (ExecutionError, MemoryFault) as exc:
            return Outcome(ok=False, trap=type(exc).__name__)
        outputs = {
            f"data{k}": arr.to_list() for k, arr in enumerate(datas)
        }
        outputs.update(
            {f"aux{k}": arr.to_list() for k, arr in enumerate(auxes)}
        )
        for k, arr in enumerate(fdatas):
            outputs[f"fdata{k}"] = arr.to_list()
        return Outcome(
            ok=True,
            outputs=outputs,
            region_digest=_digest(rt.region.physical.data),
            heap_digest=_heap_digest(rt.region, compiled.module),
        )


def source_graph_divergences(program: SourceProgram) -> list:
    """Task-graph runtime vs sequential submission order.

    A DAG of ``for`` constructs with overlapping declared read/write
    sets must produce bit-identical results whether it runs (a)
    synchronously in submission order, (b) deferred through the graph
    and forced by ``wait()``, or (c) deferred and forced in a random
    topological order — (c) holds only if the inferred RAW/WAR/WAW edges
    actually serialize every true conflict.  Restricted to ``for``
    bodies: reductions allocate per-device scratch, so their region
    layout is execution-order-dependent by design.
    """
    from ..backend.vector import reset_process_caches
    from ..runtime import compile_source

    if program.construct != "for":
        return []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        try:
            compiled = compile_source(program.source, OptConfig.gpu_all())
        except Exception:
            # Frontend rejection is mode-independent: nothing to compare.
            return []
    reset_process_caches()
    plan = _graph_dag_plan(program)
    sync = _run_graph_dag(program, compiled, plan, "sync")
    graph = _run_graph_dag(program, compiled, plan, "graph")
    diffs = compare_outcomes(
        sync, graph, "graph/sync", "graph/wait", region="full"
    )
    # A trapping program aborts mid-DAG; which constructs ran before the
    # trap is order-dependent, so the reordered comparison only applies
    # to trap-free programs.
    if sync.ok:
        shuffled = _run_graph_dag(program, compiled, plan, "shuffled")
        diffs.extend(compare_outcomes(
            sync, shuffled, "graph/sync", "graph/shuffled", region="full"
        ))
    return diffs


def source_cache_divergences(program: SourceProgram) -> list:
    """Staged compile-through-store differential (the compile service's
    identity bar; see ``docs/SERVICE.md``).

    Four compilations of one source under ``OptConfig.gpu_all()``:

    * ``mono``  — :func:`repro.runtime.compile_source`, no store (the
      in-memory three-stage chain, the baseline);
    * ``cold``  — :func:`~repro.runtime.compiler.compile_cached` against
      a fresh store (every stage must miss and write its artifact);
    * ``warm``  — the *same* store again (every stage must hit): the
      unpickled artifacts preserve the cold compile's instruction uids
      and OpenCL text, so warm is held to bit-identical OpenCL, region
      bytes and *raw* traces;
    * ``other`` — a separate fresh store dir: an independent compile
      whose global uids legitimately differ, compared through
      :func:`canonical_trace_signature` instead.

    All four must carry the same content-hash ``program_id``, show the
    expected per-stage hit/miss pattern, and execute identically on the
    GPU path: outputs, every region byte, and traces.
    """
    import tempfile

    from ..backend.vector import reset_process_caches
    from ..runtime import compile_source
    from ..runtime.compiler import compile_cached
    from ..service import ArtifactStore

    config = OptConfig.gpu_all()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        try:
            mono = compile_source(program.source, config)
        except Exception:
            # Frontend rejection is store-independent: nothing to compare.
            return []
        with tempfile.TemporaryDirectory() as shared_dir, \
                tempfile.TemporaryDirectory() as separate_dir:
            shared = ArtifactStore(shared_dir)
            cold, cold_stages = compile_cached(
                program.source, config, store=shared
            )
            warm, warm_stages = compile_cached(
                program.source, config, store=shared
            )
            other, other_stages = compile_cached(
                program.source, config, store=ArtifactStore(separate_dir)
            )
    diffs = []
    for label, stages, expected in (
        ("cold", cold_stages, "miss"),
        ("warm", warm_stages, "hit"),
        ("separate-store", other_stages, "miss"),
    ):
        if set(stages.values()) != {expected}:
            diffs.append(
                f"{label} compile stages not all {expected}: {stages}"
            )
    ids = {
        "mono": mono.program_id,
        "cold": cold.program_id,
        "warm": warm.program_id,
        "other": other.program_id,
    }
    if len(set(ids.values())) != 1:
        diffs.append(
            "program hashes disagree: "
            + ", ".join(f"{k}={v[:16]}" for k, v in sorted(ids.items()))
        )
    # Warm artifacts are pickled snapshots of the cold compile, so the
    # embedded device code must round-trip byte for byte.
    for name, kinfo in cold.kernels.items():
        warm_kinfo = warm.kernels.get(name)
        if warm_kinfo is None:
            diffs.append(f"warm compile lost kernel {name!r}")
        elif (
            kinfo.opencl_source != warm_kinfo.opencl_source
            or kinfo.reduce_wrapper_source != warm_kinfo.reduce_wrapper_source
        ):
            diffs.append(f"warm OpenCL for {name!r} differs from cold")
    if diffs:
        # The compile-level identity is already broken; executing the
        # programs would only restate it less precisely.
        return diffs
    outcomes = {}
    for label, compiled in (
        ("mono", mono), ("cold", cold), ("warm", warm), ("other", other)
    ):
        # All four share one content-hash program_id, so the process-wide
        # JIT/vector memos would happily serve one compile's kernels to
        # another's run; reset between runs so each program honestly
        # exercises its own artifacts.
        reset_process_caches()
        outcomes[label] = run_source_program(
            program, engine="compiled", device="gpu", keep_traces=True,
            compiled=compiled, canonical_traces=True,
        )
    # cold vs warm ran the very same pickled IR snapshot: full bar
    # including raw (uid-exact) traces.
    diffs.extend(compare_outcomes(
        outcomes["cold"], outcomes["warm"], "store/cold", "store/warm",
        region="full", traces=True,
    ))
    # mono and other are independent compiles of the same source: region
    # bytes must still match in full (symbol ids and layout are
    # name-derived), but traces are compared canonically below.
    diffs.extend(compare_outcomes(
        outcomes["mono"], outcomes["cold"], "compile/mono", "store/cold",
        region="full",
    ))
    diffs.extend(compare_outcomes(
        outcomes["cold"], outcomes["other"], "store/shared", "store/separate",
        region="full",
    ))
    base = outcomes["cold"]
    for label in ("mono", "other"):
        outcome = outcomes[label]
        if not (base.ok and outcome.ok):
            continue
        if base.canon_trace_sig != outcome.canon_trace_sig:
            diffs.append(
                f"canonical execution traces differ (store/cold vs {label})"
            )
    return diffs


# -- oracles over IR programs -------------------------------------------------

#: Function passes exercised by the IR-level differential (name → applied
#: to a clone of the generated function; must preserve results).
IR_PASS_NAMES = (
    "mem2reg",
    "constfold",
    "cse",
    "dce",
    "simplifycfg",
    "licm",
    "tailrec",
    "unroll",
    "inline",
)


def run_ir_function(fn, program, engine: str = "interpreter") -> Outcome:
    """Execute one rendered IR function over a fresh region + scratch
    buffer; returns ret value + buffer contents."""
    from ..exec import CompiledEngine, Interpreter
    from ..svm import SharedAllocator, SharedRegion
    from .irgen import BUF_SLOTS

    region = SharedRegion(FUZZ_REGION_SIZE)
    allocator = SharedAllocator(region)
    buf = allocator.calloc(BUF_SLOTS * 4)
    for slot, value in enumerate(program.buf):
        region.write_int(buf + slot * 4, 4, value & 0xFFFFFFFF, signed=False)
    if engine == "interpreter":
        executor = Interpreter(region, "cpu")
    else:
        executor = CompiledEngine(region, "cpu")
    try:
        ret = executor.call_function(fn, [program.a, program.b, buf])
    except (ExecutionError, MemoryFault) as exc:
        return Outcome(ok=False, trap=type(exc).__name__)
    return Outcome(
        ok=True,
        outputs={"ret": ret, "buf": list(region.read_bytes(buf, BUF_SLOTS * 4))},
        region_digest=_digest(region.physical.data),
    )


def ir_divergences(program) -> list:
    """Cross-engine and per-pass differentials for one IR program."""
    from ..ir import VerificationError, verify_function
    from ..passes import PassManager
    from ..passes.pipeline import PASS_REGISTRY
    from ..runtime.clone import clone_function
    from .irgen import build_ir

    diffs = []
    module, fn = build_ir(program)
    reference = run_ir_function(fn, program, engine="interpreter")
    compiled = run_ir_function(fn, program, engine="compiled")
    diffs.extend(compare_outcomes(
        reference, compiled, "interpreter", "compiled-engine", region="full"
    ))

    manager = PassManager(verify=False)
    for index, name in enumerate(IR_PASS_NAMES):
        clone = clone_function(module, fn, f"{fn.name}.{name}.{index}")
        pass_fn = PASS_REGISTRY[name]
        if name == "inline":
            pass_fn = pass_fn(module)
        try:
            manager.run(clone, [pass_fn])
            verify_function(clone)
        except VerificationError as exc:
            diffs.append(f"pass {name} broke the verifier: {exc}")
            continue
        after = run_ir_function(clone, program, engine="interpreter")
        diffs.extend(compare_outcomes(
            reference, after, "unoptimized", f"after-{name}", region="full"
        ))
        # The compiled engine must agree on the transformed IR too.
        after_compiled = run_ir_function(clone, program, engine="compiled")
        diffs.extend(compare_outcomes(
            after, after_compiled, f"after-{name}/interp",
            f"after-{name}/compiled", region="full"
        ))
    return diffs
