"""Differential fuzzing for the Concord reproduction.

Two seeded generators (:mod:`repro.fuzz.srcgen` for MiniC++ sources,
:mod:`repro.fuzz.irgen` for verifier-clean IR), a set of differential
oracles (:mod:`repro.fuzz.oracle`: reference interpreter vs compiled
engine, CPU vs GPU kernel forms, full pass pipeline vs per-pass-disabled
pipelines, scheduler policies vs the paper-faithful gpu policy), a
spec-tree reducer (:mod:`repro.fuzz.reduce`), and a deterministic
campaign driver (:mod:`repro.fuzz.driver`) that writes reduced
reproducers into ``tests/corpus/``.

Entry point: ``python -m repro fuzz --seed N --iterations K
--target {all,frontend,ir,passes,engines,sched,vector,graph}``.
"""

from .driver import (
    TARGETS,
    Divergence,
    FuzzDriver,
    FuzzReport,
    load_corpus_entry,
    write_reproducer,
)
from .irgen import BUF_SLOTS, IRProgram, build_ir, generate_ir_program
from .oracle import (
    IR_PASS_NAMES,
    Outcome,
    compare_outcomes,
    ir_divergences,
    run_ir_function,
    run_source_program,
    source_config_divergences,
    source_engine_divergences,
    source_graph_divergences,
    source_pass_divergences,
    source_sched_divergences,
    source_vector_divergences,
)
from .reduce import (
    ReductionResult,
    reduce_ir_program,
    reduce_source_program,
    reduce_spec,
)
from .srcgen import SourceProgram, generate_source_program, render_source

__all__ = [
    "BUF_SLOTS",
    "Divergence",
    "FuzzDriver",
    "FuzzReport",
    "IRProgram",
    "IR_PASS_NAMES",
    "Outcome",
    "ReductionResult",
    "SourceProgram",
    "TARGETS",
    "build_ir",
    "compare_outcomes",
    "generate_ir_program",
    "generate_source_program",
    "ir_divergences",
    "load_corpus_entry",
    "reduce_ir_program",
    "reduce_source_program",
    "reduce_spec",
    "render_source",
    "run_ir_function",
    "run_source_program",
    "source_config_divergences",
    "source_engine_divergences",
    "source_graph_divergences",
    "source_pass_divergences",
    "source_sched_divergences",
    "source_vector_divergences",
    "write_reproducer",
]
