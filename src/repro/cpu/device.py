"""Multicore CPU device models (the paper's baselines, section 5.1).

* **i7-4650U** — dual-core mobile Haswell, 1.7 GHz base / 3.3 GHz turbo,
  15 W package TDP (shared with the GPU slice).
* **i7-4770** — quad-core desktop Haswell, 3.4 GHz base / 3.9 GHz turbo,
  84 W package TDP.

The CPU wins the paper's desktop comparison on raw performance because of
(1) much higher per-core memory bandwidth and (2) accurate branch
prediction on divergent control flow; both appear explicitly in the model.

Cache capacities are scaled down ~32x from silicon, matching the GPU-side
scaling (see :mod:`repro.gpu.device`): simulation inputs are ~3 orders of
magnitude smaller than the paper's, so scaled caches preserve the
working-set-to-cache ratios that drive the measured behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuDevice:
    name: str
    cores: int
    threads_per_core: int
    base_freq_hz: float
    turbo_freq_hz: float
    l1_size_bytes: int
    l1_assoc: int
    l1_hit_cycles: float
    llc_size_bytes: int
    llc_line_bytes: int
    llc_assoc: int
    llc_hit_cycles: float
    dram_latency_cycles: float
    dram_bandwidth_bytes_per_cycle: float
    #: sustained instructions per cycle for the scalar/OoO pipeline
    ipc: float
    branch_mispredict_cycles: float
    #: fraction of memory latency hidden by out-of-order execution
    latency_hiding: float
    #: parallel-efficiency exponent for multicore scaling
    parallel_efficiency: float
    energy_per_instruction: float
    energy_per_llc_access: float
    energy_per_dram_access: float
    idle_power_watts: float  # CPU-slice share of package idle power

    #: clock sustained with all cores active (between base and turbo)
    sustained_freq_hz: float = 0.0

    @property
    def frequency_hz(self) -> float:
        return self.sustained_freq_hz or self.base_freq_hz


def i7_4650u() -> CpuDevice:
    """Dual-core mobile Haswell in the paper's Ultrabook."""
    return CpuDevice(
        name="Intel Core i7-4650U",
        cores=2,
        threads_per_core=2,
        base_freq_hz=1.7e9,
        turbo_freq_hz=3.3e9,
        l1_size_bytes=4 * 1024,
        l1_assoc=8,
        l1_hit_cycles=0.5,
        llc_size_bytes=128 * 1024,
        llc_line_bytes=64,
        llc_assoc=16,
        llc_hit_cycles=30.0,
        dram_latency_cycles=180.0,
        dram_bandwidth_bytes_per_cycle=8.0,
        ipc=1.6,
        branch_mispredict_cycles=14.0,
        latency_hiding=0.60,
        parallel_efficiency=0.92,
        energy_per_instruction=620e-12,
        energy_per_llc_access=300e-12,
        energy_per_dram_access=3.0e-9,
        idle_power_watts=3.0,
        sustained_freq_hz=2.8e9,
    )


def i7_4770() -> CpuDevice:
    """Quad-core desktop Haswell in the paper's desktop system."""
    return CpuDevice(
        name="Intel Core i7-4770",
        cores=4,
        threads_per_core=2,
        base_freq_hz=3.4e9,
        turbo_freq_hz=3.9e9,
        l1_size_bytes=4 * 1024,
        l1_assoc=8,
        l1_hit_cycles=0.5,
        llc_size_bytes=256 * 1024,
        llc_line_bytes=64,
        llc_assoc=16,
        llc_hit_cycles=34.0,
        dram_latency_cycles=190.0,
        dram_bandwidth_bytes_per_cycle=7.0,
        ipc=1.8,
        branch_mispredict_cycles=14.0,
        latency_hiding=0.65,
        parallel_efficiency=0.90,
        energy_per_instruction=1600e-12,
        energy_per_llc_access=500e-12,
        energy_per_dram_access=4.0e-9,
        idle_power_watts=14.0,
        sustained_freq_hz=3.7e9,
    )
