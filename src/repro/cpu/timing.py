"""CPU performance and energy model from execution traces.

Iterations execute one at a time on the scalar interpreter; this module
converts the accumulated traces into multicore wall-clock time and package
energy on a :class:`~repro.cpu.device.CpuDevice`:

* base pipeline cost = dynamic instructions / sustained IPC;
* branch costs from per-branch outcome statistics with a bimodal-predictor
  bound: a branch that goes the same way ``p`` of the time mispredicts
  roughly ``(1 - p)`` of executions — highly biased branches are nearly
  free (this is why the paper's desktop CPU handles divergent workloads
  like FaceDetect so well), genuinely data-dependent ones pay the full
  penalty;
* memory stalls through an LLC model, partially hidden by the out-of-order
  window;
* multicore scaling by ``cores × parallel_efficiency`` (TBB-style
  work-stealing over independent iterations scales nearly linearly).
"""

from __future__ import annotations

from ..exec.buffers import iter_mem_events
from ..exec.interp import ExecTrace
from ..gpu.cache import CacheModel
from ..gpu.timing import DeviceReport
from .device import CpuDevice


def time_cpu_execution(
    device: CpuDevice,
    traces: list[ExecTrace],
    llc: CacheModel | None = None,
    counters=None,
) -> DeviceReport:
    llc = llc or CacheModel(
        device.llc_size_bytes, device.llc_line_bytes, device.llc_assoc
    )
    l1 = CacheModel(device.l1_size_bytes, device.llc_line_bytes, device.l1_assoc)

    instructions = 0
    l1_hits = 0
    mispredicts = 0.0
    branches = 0
    llc_hits = 0
    llc_misses = 0
    mem_latency = 0.0
    dram_bytes = 0
    translations = 0

    merged_branches: dict[int, list[int]] = {}
    for trace in traces:
        instructions += trace.instructions
        translations += trace.translations
        for uid, (taken, total) in trace.branch_stats.items():
            slot = merged_branches.setdefault(uid, [0, 0])
            slot[0] += taken
            slot[1] += total
        for _uid, _seq, address, size in iter_mem_events(trace):
            first = address // device.llc_line_bytes
            last = (address + size - 1) // device.llc_line_bytes
            for line in range(first, last + 1):
                if l1.access(line):
                    # L1 hits are effectively free: their latency is
                    # covered by the out-of-order window (this is the CPU's
                    # big advantage on small pointer-chasing working sets)
                    l1_hits += 1
                    mem_latency += device.l1_hit_cycles
                elif llc.access(line):
                    llc_hits += 1
                    mem_latency += device.llc_hit_cycles
                else:
                    llc_misses += 1
                    mem_latency += device.dram_latency_cycles
                    dram_bytes += device.llc_line_bytes

    # Canonical order — float accumulation must not depend on which engine's
    # trace-dict insertion order we got.
    for uid in sorted(merged_branches):
        taken, total = merged_branches[uid]
        branches += total
        bias = max(taken, total - taken) / total if total else 1.0
        mispredicts += total * (1.0 - bias)

    pipeline_cycles = instructions / device.ipc
    branch_cycles = mispredicts * device.branch_mispredict_cycles
    exposed_mem = mem_latency * (1.0 - device.latency_hiding)
    bandwidth_cycles = dram_bytes / device.dram_bandwidth_bytes_per_cycle
    serial_cycles = pipeline_cycles + branch_cycles + max(exposed_mem, bandwidth_cycles)

    scaling = device.cores * device.parallel_efficiency
    wall_cycles = serial_cycles / scaling
    seconds = wall_cycles / device.frequency_hz

    energy = (
        instructions * device.energy_per_instruction
        + (llc_hits + llc_misses) * device.energy_per_llc_access
        + llc_misses * device.energy_per_dram_access
        + device.idle_power_watts * seconds
    )

    if counters is not None:
        # repro.obs.CounterRegistry; publish the model's event totals so
        # profiles carry the cache/branch breakdown.
        counters.add("cpu.l1.hits", l1_hits)
        counters.add("cpu.llc.hits", llc_hits)
        counters.add("cpu.llc.misses", llc_misses)
        counters.add("cpu.branches", branches)
        counters.add("cpu.mispredicts", mispredicts)

    return DeviceReport(
        device=device.name,
        seconds=seconds,
        energy_joules=energy,
        cycles=wall_cycles,
        instructions=instructions,
        mem_transactions=l1_hits + llc_hits + llc_misses,
        l3_hits=llc_hits,
        l3_misses=llc_misses,
        translations=translations,
        extra={
            "mispredicts": mispredicts,
            "branches": branches,
            "l1_hits": l1_hits,
        },
    )
