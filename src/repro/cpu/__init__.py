"""Multicore CPU simulator: device models and timing/energy."""

from .device import CpuDevice, i7_4650u, i7_4770
from .timing import time_cpu_execution

__all__ = ["CpuDevice", "i7_4650u", "i7_4770", "time_cpu_execution"]
