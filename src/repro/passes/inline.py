"""Function inlining.

Device code cannot make real calls on the simulated GPU (and the paper's
compiler flattens everything except the devirtualized targets it expands
inline), so the inliner is aggressive: every direct call to a function with
a body whose size is under the budget is inlined, iterating to a fixed
point.  Recursive cycles are left alone — the restriction checker will
reject them for device code (after tail-recursion elimination has had its
chance).
"""

from __future__ import annotations

from typing import Callable

from ..ir import (
    Argument,
    BasicBlock,
    Constant,
    Function,
    GlobalVariable,
    Instruction,
    Module,
    add_phi_incoming,
)
from ..ir.types import VoidType

INLINE_BUDGET = 4000  # max instructions of the callee
MAX_INLINE_ROUNDS = 12


def make_inliner(module: Module) -> Callable[[Function], bool]:
    def inline_calls(function: Function) -> bool:
        return inline_all_calls(module, function)

    inline_calls.__name__ = "inline_calls"
    return inline_calls


def inline_all_calls(module: Module, function: Function) -> bool:
    changed = False
    for _ in range(MAX_INLINE_ROUNDS):
        site = _find_inlinable_call(function)
        if site is None:
            break
        _inline_call_site(function, site)
        changed = True
    return changed


def _find_inlinable_call(function: Function):
    for block in function.blocks:
        for instr in block.instructions:
            if instr.op != "call":
                continue
            callee = instr.callee
            if not isinstance(callee, Function) or not callee.blocks:
                continue
            if callee is function:
                continue  # direct recursion: handled by tailrec/restrictions
            size = sum(len(b.instructions) for b in callee.blocks)
            if size > INLINE_BUDGET:
                continue
            if callee.attributes.get("noinline"):
                continue
            return instr
    return None


def _inline_call_site(function: Function, call: Instruction) -> None:
    callee: Function = call.callee
    call_block = call.block
    call_index = call_block.instructions.index(call)

    # Split the call block: instructions after the call move to a new block.
    after = function.new_block(f"{call_block.name}.after")
    tail = call_block.instructions[call_index + 1 :]
    del call_block.instructions[call_index + 1 :]
    for instr in tail:
        instr.block = after
        after.instructions.append(instr)
    # phi edges pointing at successors must see "after" as the predecessor.
    for succ in _successors_of_instrs(tail):
        for phi in succ.phis():
            phi.phi_blocks = [after if b is call_block else b for b in phi.phi_blocks]

    # Clone callee blocks/instructions with a value map.
    vmap: dict[object, object] = {}
    for arg, actual in zip(callee.args, call.operands):
        vmap[arg] = actual
    block_map: dict[BasicBlock, BasicBlock] = {}
    for cblock in callee.blocks:
        block_map[cblock] = function.new_block(f"inl.{callee.name}.{cblock.name}")

    returns: list[tuple[BasicBlock, object]] = []
    for cblock in callee.blocks:
        nblock = block_map[cblock]
        for cinstr in cblock.instructions:
            if cinstr.op == "ret":
                value = (
                    _mapped(vmap, cinstr.operands[0]) if cinstr.operands else None
                )
                returns.append((nblock, value))
                br = Instruction("br", cinstr.type, [])
                br.targets = [after]
                br.loc = _chained_loc(cinstr.loc, call.loc)
                nblock.append(br)
                continue
            clone = _clone_instruction(cinstr, vmap, block_map)
            clone.loc = _chained_loc(cinstr.loc, call.loc)
            nblock.append(clone)
            vmap[cinstr] = clone
    # Second pass fixes forward references (operands defined later).
    for cblock in callee.blocks:
        for cinstr, ninstr in (
            (ci, vmap.get(ci)) for ci in cblock.instructions if ci.op != "ret"
        ):
            if not isinstance(ninstr, Instruction):
                continue
            ninstr.operands = [_mapped(vmap, o) for o in cinstr.operands]
            ninstr.phi_blocks = [block_map[b] for b in cinstr.phi_blocks]
            ninstr.targets = [block_map[t] for t in cinstr.targets]

    # Wire the call block into the inlined entry.
    entry_clone = block_map[callee.entry]
    call_block.remove(call)
    br = Instruction("br", call.type, [])
    br.targets = [entry_clone]
    br.loc = call.loc
    call_block.append(br)

    # Merge return value(s) at the join block.
    if not isinstance(call.type, VoidType):
        if len(returns) == 1:
            result = returns[0][1]
        else:
            phi = Instruction("phi", call.type, [], name=f"{callee.name}.ret")
            phi.loc = call.loc
            after.insert(0, phi)
            for rblock, rvalue in returns:
                add_phi_incoming(phi, rvalue, rblock)
            result = phi
        for instr in function.instructions():
            instr.replace_uses_of(call, result)


def _clone_instruction(instr: Instruction, vmap, block_map) -> Instruction:
    clone = Instruction(instr.op, instr.type, [], name=instr.name)
    clone.pred = instr.pred
    clone.alloc_type = instr.alloc_type
    clone.callee = instr.callee
    clone.gep_offset = instr.gep_offset
    clone.gep_scales = list(instr.gep_scales)
    clone.vslot = instr.vslot
    clone.vclass = instr.vclass
    clone.annotations = dict(instr.annotations)
    # operands/targets/phi_blocks are fixed up in the second pass
    clone.operands = list(instr.operands)
    clone.phi_blocks = list(instr.phi_blocks)
    clone.targets = list(instr.targets)
    return clone


def _chained_loc(callee_loc, call_loc):
    """Debug-info chain for an inlined instruction: the callee's own
    frames followed by the call site's (LLVM's ``inlinedAt``)."""
    if callee_loc is None:
        return call_loc
    if call_loc is None:
        return callee_loc
    return tuple(callee_loc) + tuple(call_loc)


def _mapped(vmap, value):
    if value is None:
        return None
    if isinstance(value, (Constant, GlobalVariable)):
        return value
    seen = 0
    while value in vmap and seen < 64:
        value = vmap[value]
        seen += 1
    return value


def _successors_of_instrs(instrs) -> set:
    result = set()
    for instr in instrs:
        result.update(instr.targets)
    return result
