"""Promote alloca'd scalars to SSA registers (the classic mem2reg pass).

This is the paper's "aggressive register promotion": GPU register files are
large, so every promotable local — including the pointer-typed temporaries
the SVM lowering will later care about — is lifted out of memory.  Standard
algorithm: phi insertion at iterated dominance frontiers, then renaming via
a depth-first walk of the dominator tree.

An alloca is promotable when every use is a direct ``load`` or a ``store``
of a *value* into it (not of its address) and the allocated type is scalar.
Taking the address of a local (which the paper's model forbids on the GPU;
the restriction checker flags it) blocks promotion.
"""

from __future__ import annotations

from collections import defaultdict

from ..ir import (
    Constant,
    DominatorTree,
    Function,
    Instruction,
    add_phi_incoming,
)
from ..ir.types import FloatType, IntType, PointerType


def promote_memory_to_registers(function: Function) -> bool:
    if not function.blocks:
        return False
    allocas = _promotable_allocas(function)
    if not allocas:
        return False

    domtree = DominatorTree(function)
    reachable = domtree.reachable()
    preds = function.compute_preds()

    # 1. Phi placement at iterated dominance frontiers of defining blocks.
    phis: dict[Instruction, dict] = {}  # alloca -> {block: phi}
    for alloca in allocas:
        def_blocks = {
            use.block
            for use in _uses_of(function, alloca)
            if use.op == "store" and use.block in reachable
        }
        placed: dict = {}
        worklist = list(def_blocks)
        seen = set(def_blocks)
        while worklist:
            block = worklist.pop()
            for frontier_block in domtree.frontier.get(block, ()):
                if frontier_block in placed:
                    continue
                phi = Instruction("phi", alloca.alloc_type, [], name=f"{alloca.name}.phi")
                phi.loc = alloca.loc
                frontier_block.insert(0, phi)
                placed[frontier_block] = phi
                if frontier_block not in seen:
                    seen.add(frontier_block)
                    worklist.append(frontier_block)
        phis[alloca] = placed

    # 2. Renaming along the dominator tree.
    undef = {a: _undef_value(a.alloc_type) for a in allocas}
    alloca_set = set(allocas)
    stacks: dict[Instruction, list] = {a: [] for a in allocas}

    def current(alloca: Instruction):
        return stacks[alloca][-1] if stacks[alloca] else undef[alloca]

    def rename(block) -> None:
        pushed: list[Instruction] = []
        for alloca, placed in phis.items():
            phi = placed.get(block)
            if phi is not None:
                stacks[alloca].append(phi)
                pushed.append(alloca)
        for instr in list(block.instructions):
            if instr in alloca_set:
                block.remove(instr)
                continue
            if instr.op == "load" and instr.operands[0] in alloca_set:
                alloca = instr.operands[0]
                _replace_all_uses(function, instr, current(alloca))
                block.remove(instr)
                continue
            if instr.op == "store" and instr.operands[1] in alloca_set:
                alloca = instr.operands[1]
                stacks[alloca].append(instr.operands[0])
                pushed.append(alloca)
                block.remove(instr)
                continue
        for succ in block.successors():
            for alloca, placed in phis.items():
                phi = placed.get(succ)
                if phi is not None:
                    add_phi_incoming(phi, current(alloca), block)
        for child in domtree.children.get(block, ()):
            rename(child)
        for alloca in pushed:
            stacks[alloca].pop()

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 2 * len(function.blocks) + 200))
    try:
        rename(function.entry)
    finally:
        sys.setrecursionlimit(old_limit)

    # Prune phis whose block became unreachable mentions or that merge a
    # single distinct value; keep it simple, later DCE/simplifycfg finish up.
    return True


def _promotable_allocas(function: Function) -> list[Instruction]:
    uses: dict[Instruction, list[Instruction]] = defaultdict(list)
    allocas: list[Instruction] = []
    for instr in function.instructions():
        if instr.op == "alloca":
            alloc_type = instr.alloc_type
            if isinstance(alloc_type, (IntType, FloatType, PointerType)):
                allocas.append(instr)
        for operand in instr.operands:
            if isinstance(operand, Instruction):
                uses[operand].append(instr)
    result = []
    for alloca in allocas:
        ok = True
        for use in uses.get(alloca, ()):
            if use.op == "load" and use.operands[0] is alloca:
                continue
            if use.op == "store" and use.operands[1] is alloca and use.operands[0] is not alloca:
                continue
            ok = False
            break
        if ok:
            result.append(alloca)
    return result


def _uses_of(function: Function, value: Instruction) -> list[Instruction]:
    return [
        instr
        for instr in function.instructions()
        if value in instr.operands
    ]


def _replace_all_uses(function: Function, old, new) -> None:
    for instr in function.instructions():
        instr.replace_uses_of(old, new)


def _undef_value(type_):
    """A benign default for paths that read before writing (UB in C++)."""
    if isinstance(type_, FloatType):
        return Constant(type_, 0.0)
    return Constant(type_, 0)
