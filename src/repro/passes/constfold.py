"""Constant folding and algebraic simplification (instcombine-lite)."""

from __future__ import annotations

import math

from ..ir import Constant, Function, Instruction
from ..ir.types import BOOL, FloatType, IntType, PointerType
from ..ir.values import COMMUTATIVE_OPS


def constant_fold(function: Function) -> bool:
    """Fold to a fixpoint (folding one instruction can enable folding its
    users, e.g. icmp -> select -> condbr chains)."""
    changed = False
    for _ in range(64):
        if not _fold_once(function):
            break
        changed = True
    return changed


def _fold_once(function: Function) -> bool:
    changed = False
    replacements: dict[Instruction, object] = {}
    for block in function.blocks:
        for instr in list(block.instructions):
            folded = _fold(instr)
            if folded is not None:
                replacements[instr] = folded
    if replacements:
        # Resolve chains: y -> x and x -> n must rewrite y's users to n.
        def resolve(value):
            seen = 0
            while isinstance(value, Instruction) and value in replacements and seen < 64:
                value = replacements[value]
                seen += 1
            return value

        resolved = {old: resolve(new) for old, new in replacements.items()}
        for instr in function.instructions():
            for old, new in resolved.items():
                instr.replace_uses_of(old, new)
        for old in resolved:
            if old.block is not None:
                old.block.remove(old)
        changed = True

    # Fold condbr on constant condition into unconditional branch.
    folded = False
    for block in function.blocks:
        term = block.terminator
        if term is not None and term.op == "condbr" and isinstance(term.operands[0], Constant):
            taken = term.targets[0] if term.operands[0].value else term.targets[1]
            not_taken = term.targets[1] if term.operands[0].value else term.targets[0]
            _remove_phi_edges(not_taken, block)
            term.op = "br"
            term.operands = []
            term.targets = [taken]
            changed = True
            folded = True
    if folded:
        # Folding can orphan whole subgraphs whose blocks still feed phi
        # edges elsewhere; drop them so the IR stays verifier-clean.
        from .simplifycfg import remove_unreachable_blocks

        remove_unreachable_blocks(function)
    return changed


def _remove_phi_edges(target, pred) -> None:
    for phi in target.phis():
        while pred in phi.phi_blocks:
            idx = phi.phi_blocks.index(pred)
            del phi.phi_blocks[idx]
            del phi.operands[idx]


_ICMP_FNS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
    "ult": lambda a, b: a < b,
    "ule": lambda a, b: a <= b,
    "ugt": lambda a, b: a > b,
    "uge": lambda a, b: a >= b,
}

_FCMP_FNS = {
    "oeq": lambda a, b: a == b,
    "one": lambda a, b: a != b,
    "olt": lambda a, b: a < b,
    "ole": lambda a, b: a <= b,
    "ogt": lambda a, b: a > b,
    "oge": lambda a, b: a >= b,
}


def _as_unsigned(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


def _fold(instr: Instruction):
    op = instr.op
    ops = instr.operands
    consts = [o.value for o in ops if isinstance(o, Constant)]
    all_const = len(consts) == len(ops) and ops

    if op in ("icmp", "fcmp") and all_const:
        a, b = consts
        if op == "icmp":
            if instr.pred.startswith("u"):
                bits = ops[0].type.bits if isinstance(ops[0].type, IntType) else 64
                a, b = _as_unsigned(a, bits), _as_unsigned(b, bits)
            result = _ICMP_FNS[instr.pred](a, b)
        else:
            result = _FCMP_FNS[instr.pred](a, b)
        return Constant(BOOL, 1 if result else 0)

    if op == "select" and isinstance(ops[0], Constant):
        return ops[1] if ops[0].value else ops[2]

    if op in ("zext", "sext", "trunc") and all_const:
        return Constant(instr.type, instr.type.wrap(consts[0]))
    if op in ("sitofp", "uitofp", "fpext", "fptrunc") and all_const:
        value = float(consts[0])
        if isinstance(instr.type, FloatType) and instr.type.bits == 32:
            value = _to_f32(value)
        return Constant(instr.type, value)
    if op == "fptosi" and all_const:
        return Constant(instr.type, instr.type.wrap(int(consts[0])))
    if op in ("ptrtoint", "inttoptr", "bitcast") and all_const:
        return Constant(instr.type, consts[0])

    if op == "phi":
        distinct = {id(o) for o in ops}
        if len(distinct) == 1 and ops:
            return ops[0]
        non_self = [o for o in ops if o is not instr]
        if non_self and all(o is non_self[0] for o in non_self):
            return non_self[0]
        return None

    from ..ir.values import BINARY_OPS

    if op not in BINARY_OPS:
        return None

    if all_const and len(ops) == 2:
        return _fold_binary(instr, consts[0], consts[1])

    # Algebraic identities with one constant operand.
    if len(ops) == 2:
        lhs, rhs = ops
        if isinstance(rhs, Constant):
            if op in ("add", "sub", "or", "xor", "shl", "lshr", "ashr") and rhs.value == 0:
                return lhs
            if op == "fadd" and rhs.value == 0.0:
                return lhs
            if op in ("mul",) and rhs.value == 1:
                return lhs
            if op in ("mul", "and") and rhs.value == 0:
                return Constant(instr.type, 0)
            if op in ("sdiv", "udiv") and rhs.value == 1:
                return lhs
            if op == "fmul" and rhs.value == 1.0:
                return lhs
        if isinstance(lhs, Constant):
            if op in ("add", "or", "xor") and lhs.value == 0:
                return rhs
            if op == "mul" and lhs.value == 1:
                return rhs
            if op in ("mul", "and") and lhs.value == 0:
                return Constant(instr.type, 0)
    return None


def _fold_binary(instr: Instruction, a, b):
    op = instr.op
    type_ = instr.type
    try:
        if op == "add":
            return Constant(type_, type_.wrap(a + b))
        if op == "sub":
            return Constant(type_, type_.wrap(a - b))
        if op == "mul":
            return Constant(type_, type_.wrap(a * b))
        if op == "sdiv":
            if b == 0:
                return None
            return Constant(type_, type_.wrap(int(a / b) if (a < 0) != (b < 0) else a // b))
        if op == "udiv":
            if b == 0:
                return None
            bits = type_.bits
            return Constant(type_, type_.wrap(_as_unsigned(a, bits) // _as_unsigned(b, bits)))
        if op == "srem":
            if b == 0:
                return None
            return Constant(type_, type_.wrap(int(math.fmod(a, b))))
        if op == "urem":
            if b == 0:
                return None
            bits = type_.bits
            return Constant(type_, type_.wrap(_as_unsigned(a, bits) % _as_unsigned(b, bits)))
        if op == "fadd":
            return Constant(type_, _maybe_f32(type_, a + b))
        if op == "fsub":
            return Constant(type_, _maybe_f32(type_, a - b))
        if op == "fmul":
            return Constant(type_, _maybe_f32(type_, a * b))
        if op == "fdiv":
            if b == 0:
                return None
            return Constant(type_, _maybe_f32(type_, a / b))
        if op == "shl":
            return Constant(type_, type_.wrap(a << (b % type_.bits)))
        if op == "lshr":
            bits = type_.bits
            return Constant(type_, type_.wrap(_as_unsigned(a, bits) >> (b % bits)))
        if op == "ashr":
            return Constant(type_, type_.wrap(a >> (b % type_.bits)))
        if op == "and":
            return Constant(type_, type_.wrap(a & b))
        if op == "or":
            return Constant(type_, type_.wrap(a | b))
        if op == "xor":
            return Constant(type_, type_.wrap(a ^ b))
    except (OverflowError, ValueError):
        return None
    return None


def _to_f32(value: float) -> float:
    import struct

    return struct.unpack("f", struct.pack("f", value))[0]


def _maybe_f32(type_, value: float) -> float:
    if isinstance(type_, FloatType) and type_.bits == 32:
        return _to_f32(value)
    return value
