"""Dominator-scoped common subexpression elimination.

Walks the dominator tree with a scoped hash table of available pure
expressions (the paper leans on classical sub-expression elimination to
keep SVM translation arithmetic from being recomputed; PTROPT then removes
the remaining translations).  Loads are *not* CSE'd — we have no alias
analysis for arbitrary pointer programs, so only arithmetic, casts, geps,
comparisons, selects and pure intrinsic calls participate.
"""

from __future__ import annotations

from typing import Optional

from ..ir import Constant, DominatorTree, Function, Instruction
from ..ir.values import COMMUTATIVE_OPS, BINARY_OPS, CAST_OPS


def common_subexpression_elimination(function: Function) -> bool:
    if not function.blocks:
        return False
    domtree = DominatorTree(function)
    changed = [False]

    def key_of(instr: Instruction) -> Optional[tuple]:
        op = instr.op
        if op in BINARY_OPS or op in ("icmp", "fcmp", "select"):
            ids = [_value_key(v) for v in instr.operands]
            if None in ids:
                return None
            if op in COMMUTATIVE_OPS or (
                op == "icmp" and instr.pred in ("eq", "ne")
            ):
                ids = sorted(ids)
            return (op, instr.pred, instr.type, tuple(ids))
        if op in CAST_OPS:
            k = _value_key(instr.operands[0])
            return None if k is None else (op, instr.type, k)
        if op == "gep":
            ids = [_value_key(v) for v in instr.operands]
            if None in ids:
                return None
            return (
                "gep",
                instr.type,
                instr.gep_offset,
                tuple(instr.gep_scales),
                tuple(ids),
            )
        if op == "call" and instr.callee is not None and not instr.has_side_effects:
            ids = [_value_key(v) for v in instr.operands]
            if None in ids:
                return None
            return ("call", instr.callee.name, tuple(ids))
        return None

    def walk(block, scope: dict) -> None:
        local = dict(scope)
        for instr in list(block.instructions):
            key = key_of(instr)
            if key is None:
                continue
            existing = local.get(key)
            if existing is not None:
                _replace_all_uses(function, instr, existing)
                block.remove(instr)
                changed[0] = True
            else:
                local[key] = instr
        for child in domtree.children.get(block, ()):
            walk(child, local)

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 2 * len(function.blocks) + 200))
    try:
        walk(function.entry, {})
    finally:
        sys.setrecursionlimit(old_limit)
    return changed[0]


def _value_key(value):
    if isinstance(value, Constant):
        return ("const", value.type, value.value)
    if isinstance(value, Instruction):
        return ("instr", value.uid)
    name = getattr(value, "name", None)
    if name is not None:
        return ("named", type(value).__name__, name)
    return None


def _replace_all_uses(function: Function, old, new) -> None:
    for instr in function.instructions():
        instr.replace_uses_of(old, new)
