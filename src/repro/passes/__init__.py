"""Optimization passes of the Concord reproduction compiler."""

from .constfold import constant_fold
from .cse import common_subexpression_elimination
from .dce import dead_code_elimination
from .devirt import expand_virtual_calls
from .inline import inline_all_calls, make_inliner
from .l3opt import reduce_cacheline_contention
from .mem2reg import promote_memory_to_registers
from .pipeline import OptConfig, PassManager, kernel_pipeline, standard_pipeline
from .ptropt import optimize_pointer_translations
from .simplifycfg import simplify_cfg
from .svmlower import lower_svm_pointers
from .tailrec import eliminate_tail_recursion, has_nontail_recursion
from .unroll import unroll_loops

__all__ = [
    "OptConfig",
    "PassManager",
    "common_subexpression_elimination",
    "constant_fold",
    "dead_code_elimination",
    "eliminate_tail_recursion",
    "expand_virtual_calls",
    "has_nontail_recursion",
    "inline_all_calls",
    "kernel_pipeline",
    "lower_svm_pointers",
    "make_inliner",
    "optimize_pointer_translations",
    "promote_memory_to_registers",
    "reduce_cacheline_contention",
    "simplify_cfg",
    "standard_pipeline",
    "unroll_loops",
]
