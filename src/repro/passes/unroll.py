"""Loop unrolling bounded by register pressure (max-live).

The paper (section 4) unrolls loops to exploit the GPU's large register
file, "controlling the unroll-factor by restricting max live to the
available physical registers".  We implement the same policy:

* only innermost natural loops with a single latch and a body under the
  size budget are candidates;
* the unroll factor starts at ``DEFAULT_FACTOR`` and is halved until the
  estimated max-live value count times the factor fits the register file;
* unrolling replicates the loop body ``factor - 1`` extra times along the
  backedge (no trip-count knowledge is needed: every copy keeps the exit
  test, i.e. this is "unrolling with exits", which preserves semantics for
  any trip count).
"""

from __future__ import annotations

from ..ir import (
    BasicBlock,
    Constant,
    DominatorTree,
    Function,
    GlobalVariable,
    Instruction,
    find_loops,
)

DEFAULT_FACTOR = 4
MAX_BODY_INSTRUCTIONS = 40
PHYSICAL_REGISTERS = 128  # per-thread GRF budget on Gen7.5 (4KB / 32B)


def unroll_loops(function: Function) -> bool:
    if not function.blocks:
        return False
    changed = False
    loops = [l for l in find_loops(function) if l.is_innermost()]
    for loop in loops:
        if len(loop.latches) != 1:
            continue
        body_size = sum(len(b.instructions) for b in loop.blocks)
        if body_size > MAX_BODY_INSTRUCTIONS:
            continue
        factor = DEFAULT_FACTOR
        max_live = _estimate_max_live(function, loop)
        while factor > 1 and max_live * factor > PHYSICAL_REGISTERS:
            factor //= 2
        if factor <= 1:
            continue
        if _unroll_one(function, loop, factor):
            changed = True
    return changed


def _estimate_max_live(function: Function, loop) -> int:
    """Crude max-live estimate: values defined in the loop that are used
    after their defining instruction, plus loop-invariant inputs."""
    defined = set()
    used = set()
    for block in loop.blocks:
        for instr in block.instructions:
            defined.add(instr)
            for operand in instr.operands:
                if isinstance(operand, Instruction):
                    used.add(operand)
    live_through = len(used - defined)  # invariants kept in registers
    produced = len([i for i in defined if i in used])
    return max(1, live_through + produced)


def _unroll_one(function: Function, loop, factor: int) -> bool:
    """Replicate the loop body ``factor - 1`` times.

    The latch's backedge is redirected to a clone of the whole loop body;
    each clone's backedge goes to the next clone, the last clone jumps to
    the original header.  Header phis are rewritten so the value flowing in
    from each clone's latch is the clone's version of the original latch
    value.  Exits from clones go to the original exit blocks; any phi in
    exit blocks gains matching incoming edges.
    """
    header = loop.header
    latch = loop.latches[0]
    blocks = loop.ordered()
    exit_edges = loop.exits()

    # Require a single exit block whose predecessors are all in the loop,
    # and put the function into LCSSA form for this loop so values computed
    # inside and used outside flow through exit phis the clone step can
    # extend.
    exit_blocks = {outside for _, outside in exit_edges}
    if len(exit_blocks) != 1:
        return False
    exit_block = next(iter(exit_blocks))
    preds = function.compute_preds()
    if any(p not in loop.blocks for p in preds[exit_block]):
        return False
    if not _make_lcssa(function, loop, exit_block, exit_edges):
        return False

    prev_blocks = {b: b for b in blocks}  # maps original -> previous copy
    prev_values: dict[Instruction, object] = {}
    for block in blocks:
        for instr in block.instructions:
            prev_values[instr] = instr
    # The latch's successor list before any redirection: clones rebuild
    # their backedge from this, pointing at the ORIGINAL header.
    latch_term = latch.terminator
    original_latch_targets = list(latch_term.targets)

    for copy_index in range(1, factor):
        block_map: dict[BasicBlock, BasicBlock] = {}
        value_map: dict[object, object] = {}
        for block in blocks:
            block_map[block] = function.new_block(f"{block.name}.u{copy_index}")
        for block in blocks:
            nblock = block_map[block]
            for instr in block.instructions:
                clone = _clone(instr)
                nblock.append(clone)
                value_map[instr] = clone
        # Header phis in the clone become copies of the value that flowed
        # around the backedge of the *previous* copy.
        for phi in header.phis():
            clone_phi = value_map[phi]
            latch_index = phi.phi_blocks.index(latch)
            incoming = phi.operands[latch_index]
            prev_incoming = prev_values.get(incoming, incoming)
            # Replace the cloned phi with the previous copy's latch value.
            for block in blocks:
                for instr in block.instructions:
                    pass  # originals untouched
            for nblock in block_map.values():
                for instr in nblock.instructions:
                    instr.replace_uses_of(clone_phi, prev_incoming)
            value_map[phi] = prev_incoming
            nheader = block_map[header]
            if clone_phi.block is nheader:
                nheader.remove(clone_phi)
        # Fix up operands/targets in clones.  The clone latch's backedge
        # initially points at the ORIGINAL header: when the next copy is
        # created it is redirected there, and the final copy's backedge is
        # exactly the loop-closing edge we want.
        for block in blocks:
            for instr in block.instructions:
                if instr.op == "phi" and block is header:
                    continue  # mapped to a value above, not a clone
                clone = value_map.get(instr)
                if not isinstance(clone, Instruction):
                    continue
                clone.operands = [
                    _map_value(value_map, prev_values, o) for o in clone.operands
                ]
                if instr is latch_term:
                    clone.targets = [
                        header if t is header else block_map.get(t, t)
                        for t in original_latch_targets
                    ]
                else:
                    clone.targets = [block_map.get(t, t) for t in instr.targets]
                clone.phi_blocks = [
                    block_map.get(b, b) for b in clone.phi_blocks
                ]
        # Previous copy's backedge now enters this clone's header.
        prev_latch = prev_blocks[latch]
        pterm = prev_latch.terminator
        pterm.targets = [
            block_map[header] if t is header else t for t in pterm.targets
        ]
        # Exit-block phis: clone edges.
        for inside, outside in exit_edges:
            for phi in outside.phis():
                if prev_blocks[inside] in phi.phi_blocks or inside in phi.phi_blocks:
                    src = inside
                    idx = (
                        phi.phi_blocks.index(src)
                        if src in phi.phi_blocks
                        else None
                    )
                    if idx is None:
                        continue
                    value = phi.operands[idx]
                    mapped = _map_value(value_map, prev_values, value)
                    phi.phi_blocks.append(block_map[inside])
                    phi.operands.append(mapped)
        prev_blocks = block_map
        prev_values = {
            orig: value_map.get(orig, prev_values.get(orig, orig))
            for orig in prev_values
        }

    # Final copy's backedge returns to the original header; header phis must
    # take their latch value from the final copy.
    final_latch = prev_blocks[latch]
    for phi in header.phis():
        latch_index = phi.phi_blocks.index(latch)
        incoming = phi.operands[latch_index]
        phi.phi_blocks[latch_index] = final_latch
        phi.operands[latch_index] = prev_values.get(incoming, incoming)
    return True


def _make_lcssa(function: Function, loop, exit_block, exit_edges) -> bool:
    """Rewrite uses outside the loop to go through phis in the exit block.

    Returns False when LCSSA cannot be established cheaply (a definition
    that does not dominate every exiting block), in which case the caller
    skips unrolling this loop.
    """
    from ..ir import DominatorTree, add_phi_incoming

    domtree = DominatorTree(function)
    exiting = [inside for inside, _ in exit_edges]
    loop_instrs = [i for b in loop.ordered() for i in b.instructions]
    new_phis: set[int] = set()
    for instr in loop_instrs:
        if instr.op in ("store", "br", "condbr", "ret", "unreachable"):
            continue
        outside_users = [
            user
            for user in function.instructions()
            if user.block not in loop.blocks
            and instr in user.operands
            and user.uid not in new_phis
        ]
        if not outside_users:
            continue
        if not all(domtree.dominates(instr.block, ex) for ex in exiting):
            return False
        phi = Instruction("phi", instr.type, [], name=f"{instr.name or 'v'}.lcssa")
        phi.loc = instr.loc
        exit_block.insert(0, phi)
        new_phis.add(phi.uid)
        for inside in exiting:
            add_phi_incoming(phi, instr, inside)
        for user in outside_users:
            user.replace_uses_of(instr, phi)
    return True


def _clone(instr: Instruction) -> Instruction:
    clone = Instruction(instr.op, instr.type, list(instr.operands), name=instr.name)
    clone.pred = instr.pred
    clone.alloc_type = instr.alloc_type
    clone.callee = instr.callee
    clone.gep_offset = instr.gep_offset
    clone.gep_scales = list(instr.gep_scales)
    clone.vslot = instr.vslot
    clone.vclass = instr.vclass
    clone.targets = list(instr.targets)
    clone.phi_blocks = list(instr.phi_blocks)
    clone.annotations = dict(instr.annotations)
    clone.loc = instr.loc
    return clone


def _map_value(value_map, prev_values, value):
    if isinstance(value, (Constant, GlobalVariable)) or value is None:
        return value
    if value in value_map:
        return value_map[value]
    return value
