"""SVM pointer-translation lowering (paper section 3.1).

Shared pointers are CPU virtual addresses.  Before the GPU dereferences
one, it must be rebased into the GPU address space:

    gpu_ptr = cpu_ptr + svm_const        (svm_const = gpu_base - cpu_base)

This pass makes that explicit in kernel IR by inserting ``svm.to_gpu``
intrinsic calls.  Two modes:

* **Baseline ("GPU" configuration)** — *lazy at every dereference*: each
  ``load``/``store``/atomic address operand is translated immediately
  before the access.  This is what the paper's unoptimized code generator
  produces: translation arithmetic executes at every access, including on
  every iteration of loops (the Figure 4 discussion).

* With **PTROPT** (:mod:`repro.passes.ptropt`) the later pass rewrites the
  result: pointers get a single eager translation at their definition, uses
  choose the CPU or GPU representation, redundant translations are CSE'd,
  unused ones DCE'd, and remaining ones sunk toward their use.

Values considered *shared pointers* are pointer-typed values that originate
from kernel arguments, memory loads, or pointer arithmetic over those —
i.e. everything except ``alloca`` results (private memory needs no
translation) and values already produced by ``svm.to_gpu``.
"""

from __future__ import annotations

from ..ir import Function, Instruction, IRBuilder
from ..ir.intrinsics import SVM_TO_GPU
from ..ir.types import PointerType


#: attribute set on kernels once lowering ran (idempotence guard)
_LOWERED_FLAG = "svm_lowered"

#: ops whose pointer operand is a device memory access: op -> operand index
MEMORY_ADDRESS_OPERANDS = {
    "load": 0,
    "store": 1,
}

ATOMIC_PREFIX = "atomic."


def lower_svm_pointers(function: Function) -> bool:
    if function.attributes.get(_LOWERED_FLAG):
        return False
    changed = False
    for block in function.blocks:
        index = 0
        while index < len(block.instructions):
            instr = block.instructions[index]
            address_positions = _address_positions(instr)
            for pos in address_positions:
                address = instr.operands[pos]
                if not _needs_translation(address):
                    continue
                translate = Instruction(
                    "call", address.type, [address], name="gpu_ptr"
                )
                translate.callee = SVM_TO_GPU
                # Translation arithmetic is charged to the access it guards.
                translate.loc = instr.loc
                block.insert(index, translate)
                index += 1
                instr.operands[pos] = translate
                changed = True
            index += 1
    function.attributes[_LOWERED_FLAG] = True
    return changed


def _address_positions(instr: Instruction) -> list[int]:
    if instr.op in MEMORY_ADDRESS_OPERANDS:
        return [MEMORY_ADDRESS_OPERANDS[instr.op]]
    if (
        instr.op == "call"
        and instr.callee is not None
        and instr.callee.name.startswith(ATOMIC_PREFIX)
    ):
        return [0]
    return []


def _needs_translation(value) -> bool:
    if not isinstance(value.type, PointerType):
        return False
    if isinstance(value, Instruction):
        if value.op == "alloca":
            return False  # private (thread-local) memory
        if value.op == "call" and value.callee is SVM_TO_GPU:
            return False  # already translated
        if value.op == "gep":
            # A gep over an already-translated or private base is fine.
            return _needs_translation_base(value)
    return True


def _needs_translation_base(gep: Instruction) -> bool:
    base = gep.operands[0]
    if isinstance(base, Instruction):
        if base.op == "alloca":
            return False
        if base.op == "call" and base.callee is SVM_TO_GPU:
            return False
        if base.op == "gep":
            return _needs_translation_base(base)
    return True
