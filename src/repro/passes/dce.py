"""Dead code elimination: remove side-effect-free instructions with no uses
and basic blocks unreachable from the entry.

The SVM lowering pass relies on this: it emits eager ``svm.to_gpu``
translations for every loaded pointer, and pointers that are never
dereferenced on the GPU have their (pure) translation deleted here —
exactly the division of labour the paper describes in section 4.1.
"""

from __future__ import annotations

from ..ir import Function, Instruction


def dead_code_elimination(function: Function) -> bool:
    """Runs to fixpoint: removing a dead alloca's stores can orphan the
    stored values, which the next sweep then collects — one call leaves
    nothing for a second call to find (idempotence)."""
    changed = False
    while _dce_round(function):
        changed = True
    return changed


def _dce_round(function: Function) -> bool:
    if not function.blocks:
        return False
    changed = _remove_unreachable_blocks(function)

    use_counts: dict[int, int] = {}
    for instr in function.instructions():
        for operand in instr.operands:
            if isinstance(operand, Instruction):
                use_counts[operand.uid] = use_counts.get(operand.uid, 0) + 1

    worklist = [
        instr
        for instr in function.instructions()
        if not instr.has_side_effects
        and instr.op not in ("alloca",)
        and use_counts.get(instr.uid, 0) == 0
    ]
    dead: set[int] = set()
    while worklist:
        instr = worklist.pop()
        if instr.uid in dead or instr.block is None:
            continue
        dead.add(instr.uid)
        block = instr.block
        block.remove(instr)
        changed = True
        for operand in instr.operands:
            if isinstance(operand, Instruction) and not operand.has_side_effects:
                count = use_counts.get(operand.uid, 0) - 1
                use_counts[operand.uid] = count
                if count <= 0 and operand.op != "alloca" and operand.block is not None:
                    worklist.append(operand)

    # Allocas with only stores into them (dead locals) can also go.
    changed = _remove_dead_allocas(function) or changed
    return changed


def _remove_unreachable_blocks(function: Function) -> bool:
    reachable = set()
    stack = [function.entry]
    while stack:
        block = stack.pop()
        if block in reachable:
            continue
        reachable.add(block)
        stack.extend(block.successors())
    removed = [b for b in function.blocks if b not in reachable]
    if not removed:
        return False
    removed_set = set(removed)
    for block in reachable:
        for phi in block.phis():
            for idx in reversed(range(len(phi.phi_blocks))):
                if phi.phi_blocks[idx] in removed_set:
                    del phi.phi_blocks[idx]
                    del phi.operands[idx]
    for block in removed:
        function.remove_block(block)
    return True


def _remove_dead_allocas(function: Function) -> bool:
    loads_from: set[int] = set()
    stores_to: dict[int, list[Instruction]] = {}
    allocas: dict[int, Instruction] = {}
    escaped: set[int] = set()
    for instr in function.instructions():
        if instr.op == "alloca":
            allocas[instr.uid] = instr
    for instr in function.instructions():
        for pos, operand in enumerate(instr.operands):
            if not isinstance(operand, Instruction) or operand.uid not in allocas:
                continue
            if instr.op == "load" and pos == 0:
                loads_from.add(operand.uid)
            elif instr.op == "store" and pos == 1:
                stores_to.setdefault(operand.uid, []).append(instr)
            else:
                escaped.add(operand.uid)
    changed = False
    for uid, alloca in allocas.items():
        if uid in loads_from or uid in escaped:
            continue
        for store in stores_to.get(uid, ()):
            if store.block is not None:
                store.block.remove(store)
        if alloca.block is not None:
            alloca.block.remove(alloca)
            changed = True
    return changed
