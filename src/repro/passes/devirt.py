"""Virtual-call expansion for GPU code (paper section 3.2).

GPU hardware has no function pointers, so a virtual call cannot simply load
a function address from the vtable and jump.  Concord's compiler instead:

a) places vtables (and RTTI) in the SVM shared region,
b) shares the global symbols of the candidate virtual functions, and
c) translates each virtual call into an inline sequence of tests of the
   loaded vtable-slot value against the possible targets, found by class
   hierarchy analysis (CHA).

We reproduce exactly that: ``vcall`` pseudo-instructions carry the static
class and vtable slot; this pass loads the object's vtable pointer, loads
the slot entry (a function *symbol id* materialized in the shared region by
the program loader), and expands an if/else-if chain comparing the id
against each CHA candidate, calling the corresponding function directly.
When CHA finds a single candidate the call is devirtualized with no test at
all (the alias-analysis fast path the paper mentions).
"""

from __future__ import annotations

from ..ir import (
    BasicBlock,
    Function,
    Instruction,
    IRBuilder,
    Module,
    add_phi_incoming,
    const_int,
)
from ..ir.types import I64, PointerType, VoidType, ptr


def expand_virtual_calls(module: Module, function: Function) -> bool:
    changed = False
    while True:
        site = _find_vcall(function)
        if site is None:
            break
        _expand_site(module, function, site)
        changed = True
    return changed


def _find_vcall(function: Function):
    for block in function.blocks:
        for instr in block.instructions:
            if instr.op == "vcall":
                return instr
    return None


def _expand_site(module: Module, function: Function, vcall: Instruction) -> None:
    block = vcall.block
    index = block.instructions.index(vcall)
    vclass = vcall.vclass
    slot = vcall.vslot
    candidates = _cha_candidates(module, vclass, slot)
    if not candidates:
        raise RuntimeError(
            f"no CHA candidates for virtual slot {slot} of {vclass.name}"
        )

    obj = vcall.operands[0]
    args = vcall.operands[1:]

    # Split block at the vcall.
    after = function.new_block(f"{block.name}.vret")
    tail = block.instructions[index + 1 :]
    del block.instructions[index + 1 :]
    for instr in tail:
        instr.block = after
        after.instructions.append(instr)
    for succ_block in set(t for i in tail for t in i.targets):
        for phi in succ_block.phis():
            phi.phi_blocks = [after if b is block else b for b in phi.phi_blocks]
    block.remove(vcall)

    builder = IRBuilder(block)
    # The whole expansion is charged to the virtual call's source location.
    builder.loc = vcall.loc
    # Load the vtable pointer (stored at offset 0 of every polymorphic
    # object) and then the slot's function-symbol id.
    vptr_addr = builder.gep(obj, ptr(ptr(I64)), offset=0, name="vptr.addr")
    vptr = builder.load(vptr_addr, name="vptr")
    slot_addr = builder.gep(vptr, ptr(I64), offset=8 * slot, name="vslot.addr")
    target_id = builder.load(slot_addr, name="vtarget")

    result_incoming: list[tuple] = []
    current = block
    for pos, (class_name, target_fn) in enumerate(candidates):
        is_last = pos == len(candidates) - 1
        builder.position_at_end(current)
        call_block = function.new_block(f"vcall.{target_fn.name}.{vcall.uid}")
        if is_last:
            # Last candidate needs no test (exactly the paper's chain shape).
            builder.br(call_block)
            next_block = None
        else:
            next_block = function.new_block(f"vtest.{vcall.uid}.{pos + 1}")
            symbol = const_int(_symbol_id(module, target_fn), I64)
            cond = builder.icmp("eq", target_id, symbol, name="is_target")
            # Tag the chain's compares so the source-line profiler can count
            # devirtualization tests separately from ordinary arithmetic.
            cond.annotations["devirt_chain"] = True
            builder.condbr(cond, call_block, next_block)
        builder.position_at_end(call_block)
        this_arg = obj
        call = builder.call(target_fn, [this_arg, *args], name=f"v.{target_fn.name}")
        builder.br(after)
        result_incoming.append((call_block, call))
        if next_block is None:
            break
        current = next_block

    if not isinstance(vcall.type, VoidType):
        if len(result_incoming) == 1:
            result = result_incoming[0][1]
        else:
            phi = Instruction("phi", vcall.type, [], name=f"vres.{vcall.uid}")
            phi.loc = vcall.loc
            after.insert(0, phi)
            for src_block, value in result_incoming:
                add_phi_incoming(phi, value, src_block)
            result = phi
        for instr in function.instructions():
            instr.replace_uses_of(vcall, result)


def _cha_candidates(module: Module, vclass, slot: int) -> list[tuple[str, Function]]:
    """All (class, function) overrides of ``slot`` in the hierarchy rooted at
    ``vclass``, from class-hierarchy analysis recorded in module vtables.

    Candidates are ordered leaf-classes-first: concrete subclasses are what
    objects actually are at runtime, so testing them first lets the inline
    compare chain short-circuit on the common case (the base class's own
    implementation, often never instantiated, goes last and absorbs the
    untested fall-through)."""
    names = list(reversed(_subclasses_of(module, vclass)))
    seen: dict[str, Function] = {}
    result = []
    for name in names:
        vtable = module.vtables.get(name)
        if vtable is None or slot >= len(vtable):
            continue
        target = vtable[slot]
        if target.name not in seen:
            seen[target.name] = target
            result.append((name, target))
    return result


def _subclasses_of(module: Module, vclass) -> list[str]:
    """The class itself plus all transitive subclasses (by vtable metadata).

    Class hierarchy facts are stashed on the module by the frontend as
    ``module.class_hierarchy``: mapping class name -> list of direct
    subclass names.
    """
    hierarchy = getattr(module, "class_hierarchy", {})
    root = vclass.name if hasattr(vclass, "name") else str(vclass)
    order = [root]
    seen = {root}
    queue = [root]
    while queue:
        current = queue.pop()
        for child in hierarchy.get(current, ()):
            if child not in seen:
                seen.add(child)
                order.append(child)
                queue.append(child)
    return order


def _symbol_id(module: Module, function: Function) -> int:
    """Stable symbol id for a device function, shared with the loader that
    materializes vtables in the SVM region (paper: 'share the global
    symbols of relevant virtual functions ... using shared memory')."""
    table = getattr(module, "symbol_ids", None)
    if table is None:
        table = {}
        module.symbol_ids = table
    if function.name not in table:
        table[function.name] = 0x1000 + len(table)
    return table[function.name]
